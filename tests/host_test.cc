// Tests for RcbHost (src/host): session registry lifecycle, cross-session
// isolation, shared-cache accounting, host-level admission control, the
// front-door router, the generate-once broadcast proof metrics, and the
// crash-recovery machinery (DESIGN.md §13): checkpoint/WAL durability,
// supervised recovery-on-start, signed-resume reconnection, per-session
// degradation of corrupt files, and restart-storm admission staggering.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "src/core/ajax_snippet.h"
#include "src/crypto/hmac.h"
#include "src/delta/tree_diff.h"
#include "src/host/rcb_host.h"
#include "src/html/parser.h"
#include "src/net/fault_injector.h"
#include "src/sites/site_server.h"
#include "src/util/rand.h"

namespace rcb {
namespace {

constexpr uint16_t kBasePort = 3000;

class HostTest : public ::testing::Test {
 protected:
  HostTest() : network_(&loop_) {
    network_.AddHost("host-pc", {});
    for (int i = 1; i <= 8; ++i) {
      std::string machine = "p-pc-" + std::to_string(i);
      network_.AddHost(machine, {});
      network_.SetLatency("host-pc", machine, Duration::Millis(1));
    }
  }

  std::unique_ptr<RcbHost> MakeHost(HostConfig config = {}) {
    config.base_port = kBasePort;
    // Fast polls keep the tests snappy in simulated time.
    if (config.agent_defaults.poll_interval == Duration::Seconds(1.0)) {
      config.agent_defaults.poll_interval = Duration::Millis(100);
    }
    auto host = std::make_unique<RcbHost>(&loop_, &network_, std::move(config));
    EXPECT_TRUE(host->Start().ok());
    return host;
  }

  // Stamps a new document version in a hosted session — no network involved,
  // exactly like a host-side scripted mutation.
  void SetSessionDoc(HostSession* session, const std::string& title,
                     const std::string& body = "<p>content</p>") {
    session->browser->ReplaceDocument(
        ParseDocument("<html><head><title>" + title + "</title></head><body>" +
                      body + "</body></html>"),
        Url::Make("http", "host-pc", session->port, "/doc"));
  }

  struct Participant {
    std::unique_ptr<Browser> browser;
    std::unique_ptr<AjaxSnippet> snippet;
  };

  // Joins a fresh participant (on machine p-pc-<machine_index>) to `session`.
  std::unique_ptr<Participant> JoinSession(HostSession* session,
                                           int machine_index,
                                           SnippetConfig config = {},
                                           bool expect_ok = true) {
    auto participant = std::make_unique<Participant>();
    participant->browser = std::make_unique<Browser>(
        &loop_, &network_, "p-pc-" + std::to_string(machine_index));
    config.fetch_objects = false;
    participant->snippet =
        std::make_unique<AjaxSnippet>(participant->browser.get(), config);
    Status join_status;
    bool done = false;
    participant->snippet->Join(session->agent->AgentUrl(), [&](Status status) {
      join_status = status;
      done = true;
    });
    loop_.RunUntilCondition([&] { return done; });
    EXPECT_EQ(join_status.ok(), expect_ok) << join_status;
    return participant;
  }

  void WaitForContent(Participant* participant, uint64_t min_updates = 1) {
    ASSERT_TRUE(loop_.RunUntilCondition([&] {
      return participant->snippet->metrics().content_updates >= min_updates;
    }));
  }

  EventLoop loop_;
  Network network_;
};

// ------------------------------------------------- registry lifecycle ------

TEST_F(HostTest, SessionRegistryCreateLookupClose) {
  auto host = MakeHost();

  auto alpha = host->CreateSession("alpha");
  ASSERT_TRUE(alpha.ok()) << alpha.status();
  EXPECT_EQ((*alpha)->id, "alpha");
  EXPECT_EQ((*alpha)->port, kBasePort + 1);
  EXPECT_EQ(host->FindSession("alpha"), *alpha);
  EXPECT_EQ(host->session_count(), 1u);

  auto beta = host->CreateSession("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ((*beta)->port, kBasePort + 2);
  EXPECT_NE((*alpha)->port, (*beta)->port);

  // Live-id collision: 409-class failure, existing session untouched.
  auto collision = host->CreateSession("alpha");
  EXPECT_FALSE(collision.ok());
  EXPECT_EQ(collision.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(host->metrics().session_id_collisions, 1u);
  EXPECT_EQ(host->session_count(), 2u);

  // Malformed ids never enter the registry.
  for (const char* bad : {"", "has space", "semi;colon", "sl/ash",
                          "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"
                          "xxxxxxxxxxxxxxxx"}) {
    auto invalid = host->CreateSession(bad);
    EXPECT_FALSE(invalid.ok()) << bad;
    EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  EXPECT_FALSE(RcbHost::IsValidSessionId("no!"));
  EXPECT_TRUE(RcbHost::IsValidSessionId("ok_id-7"));

  EXPECT_TRUE(host->CloseSession("alpha").ok());
  EXPECT_EQ(host->FindSession("alpha"), nullptr);
  EXPECT_EQ(host->session_count(), 1u);
  EXPECT_EQ(host->metrics().sessions_closed, 1u);
  EXPECT_FALSE(host->CloseSession("alpha").ok());  // already gone

  // A closed id answers 410 until re-created; re-creating reuses its port.
  HttpRequest gone;
  gone.method = HttpMethod::kGet;
  gone.target = "/s/alpha/status";
  EXPECT_EQ(host->Route(gone).status_code, 410);
  EXPECT_EQ(host->metrics().expired_session_requests, 1u);
  auto again = host->CreateSession("alpha");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->port, kBasePort + 1);
  EXPECT_EQ(host->Route(gone).status_code, 200);
}

TEST_F(HostTest, IdleSessionsAreReapedAndActiveOnesKept) {
  HostConfig config;
  config.limits.session_idle_timeout = Duration::Seconds(5.0);
  auto host = MakeHost(std::move(config));

  auto active = host->CreateSession("active");
  ASSERT_TRUE(active.ok());
  auto idle = host->CreateSession("idle");
  ASSERT_TRUE(idle.ok());
  uint16_t idle_port = (*idle)->port;

  // The joined participant keeps polling "active"; "idle" sees no requests.
  SetSessionDoc(*active, "Active");
  auto participant = JoinSession(*active, 1);
  WaitForContent(participant.get());

  loop_.RunFor(Duration::Seconds(6.0));
  EXPECT_EQ(host->ReapIdleSessions(), 1u);
  EXPECT_EQ(host->FindSession("idle"), nullptr);
  EXPECT_NE(host->FindSession("active"), nullptr);
  EXPECT_EQ(host->metrics().sessions_reaped, 1u);

  // A reaped id answers 410 (routing also reaps lazily), and its port is the
  // lowest free one, so the next session takes it over.
  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.target = "/s/idle/status";
  EXPECT_EQ(host->Route(request).status_code, 410);
  auto next = host->CreateSession("next");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ((*next)->port, idle_port);

  // Reaping is lazy — no recurring timer may keep the loop's queue busy
  // forever (drain-based RunUntilCondition waits depend on this).
  participant->snippet->Leave();
  loop_.RunFor(Duration::Seconds(1.0));
}

// --------------------------------------------- cross-session isolation -----

TEST_F(HostTest, SessionsNeverShareDocumentsActionsOrVersions) {
  auto host = MakeHost();
  AgentConfig config_a;
  config_a.session_key = "key-alpha";
  AgentConfig config_b;
  config_b.session_key = "key-beta";
  auto session_a = host->CreateSession("a", config_a);
  auto session_b = host->CreateSession("b", config_b);
  ASSERT_TRUE(session_a.ok());
  ASSERT_TRUE(session_b.ok());

  SetSessionDoc(*session_a, "DocA");
  SetSessionDoc(*session_b, "DocB");
  SnippetConfig snippet_a;
  snippet_a.session_key = "key-alpha";
  SnippetConfig snippet_b;
  snippet_b.session_key = "key-beta";
  auto participant_a = JoinSession(*session_a, 1, snippet_a);
  auto participant_b = JoinSession(*session_b, 2, snippet_b);
  WaitForContent(participant_a.get());
  WaitForContent(participant_b.get());
  EXPECT_EQ(participant_a->browser->document()->Title(), "DocA");
  EXPECT_EQ(participant_b->browser->document()->Title(), "DocB");

  // Mutating A's document must reach only A's participant.
  int64_t b_doc_time = participant_b->snippet->doc_time_ms();
  SetSessionDoc(*session_a, "DocA2");
  WaitForContent(participant_a.get(), 2);
  loop_.RunFor(Duration::Millis(500));
  EXPECT_EQ(participant_a->browser->document()->Title(), "DocA2");
  EXPECT_EQ(participant_b->browser->document()->Title(), "DocB");
  EXPECT_EQ(participant_b->snippet->doc_time_ms(), b_doc_time);
  EXPECT_EQ((*session_b)->agent->metrics().doc_updates, 1u);
  EXPECT_EQ((*session_b)->agent->metrics().generations, 1u);

  // Actions stay inside their session: A's pointer mirroring never shows up
  // in B's broadcasts.
  uint64_t b_broadcasts = participant_b->snippet->metrics().broadcasts_received;
  participant_a->snippet->SendMouseMove(5, 7);
  loop_.RunFor(Duration::Millis(500));
  EXPECT_EQ(participant_b->snippet->metrics().broadcasts_received,
            b_broadcasts);
  EXPECT_EQ((*session_b)->agent->participant_count(), 1u);

  // A's HMAC key is rejected by B's agent — per-session keys never leak.
  // The initial GET is open by design (the key is entered on the join page);
  // every poll signed with the wrong key gets 403 and no content.
  SnippetConfig wrong_key;
  wrong_key.session_key = "key-alpha";
  auto intruder = JoinSession(*session_b, 3, wrong_key);
  loop_.RunFor(Duration::Seconds(1.0));
  EXPECT_GE((*session_b)->agent->metrics().auth_failures, 1u);
  EXPECT_GE(intruder->snippet->metrics().auth_rejections, 1u);
  EXPECT_EQ(intruder->snippet->metrics().content_updates, 0u);
  EXPECT_NE(intruder->browser->document()->Title(), "DocB");
  EXPECT_EQ((*session_a)->agent->metrics().auth_failures, 0u);
}

// ------------------------------------------------ shared-cache accounting --

TEST_F(HostTest, SessionsShareOneObjectCache) {
  network_.AddHost("www.origin.test", {});
  network_.SetLatency("host-pc", "www.origin.test", Duration::Millis(5));
  SiteServer origin(&loop_, &network_, "www.origin.test");
  origin.ServeStatic("/a.png", "image/png", "PNGBYTES");

  auto host = MakeHost();
  auto session_a = host->CreateSession("a");
  auto session_b = host->CreateSession("b");
  ASSERT_TRUE(session_a.ok());
  ASSERT_TRUE(session_b.ok());

  Url object = Url::Make("http", "www.origin.test", 80, "/a.png");
  bool first_done = false;
  (*session_a)->browser->FetchCached(object, [&](FetchResult result) {
    EXPECT_TRUE(result.status.ok());
    EXPECT_FALSE(result.from_cache);
    first_done = true;
  });
  ASSERT_TRUE(loop_.RunUntilCondition([&] { return first_done; }));
  EXPECT_EQ(host->shared_cache().size(), 1u);
  EXPECT_EQ(host->shared_cache().misses(), 1u);

  // The second session's fetch is a pure cache hit: one stored copy, no new
  // origin traffic.
  uint64_t bytes_before = network_.total_bytes_transferred();
  bool second_done = false;
  (*session_b)->browser->FetchCached(object, [&](FetchResult result) {
    EXPECT_TRUE(result.status.ok());
    EXPECT_TRUE(result.from_cache);
    second_done = true;
  });
  ASSERT_TRUE(loop_.RunUntilCondition([&] { return second_done; }));
  EXPECT_EQ(host->shared_cache().size(), 1u);
  EXPECT_EQ(host->shared_cache().hits(), 1u);
  EXPECT_EQ(network_.total_bytes_transferred(), bytes_before);
}

TEST_F(HostTest, SharedCacheBudgetSurvivesSessionCreation) {
  HostConfig config;
  config.limits.shared_cache_byte_budget = 16;
  // Per-agent budgets must not clobber the host-wide one on session start.
  config.agent_defaults.limits.cache_byte_budget = 1 << 20;
  auto host = MakeHost(std::move(config));
  auto session = host->CreateSession("a");
  ASSERT_TRUE(session.ok());

  host->shared_cache().Put(Url::Make("http", "x.test", 80, "/1"), "image/png",
                           std::string(12, 'a'));
  host->shared_cache().Put(Url::Make("http", "x.test", 80, "/2"), "image/png",
                           std::string(12, 'b'));
  EXPECT_GT(host->shared_cache().evictions(), 0u)
      << "host byte budget was not in effect after CreateSession";
}

// ---------------------------------------------------- admission limits -----

TEST_F(HostTest, SessionCapShedsWith503AndRetryAfter) {
  HostConfig config;
  config.limits.max_sessions = 2;
  config.limits.retry_after = Duration::Seconds(3.0);
  // This test pins the exact hint; the jitter spread has its own test below.
  config.limits.retry_after_jitter = Duration::Zero();
  auto host = MakeHost(std::move(config));

  ASSERT_TRUE(host->CreateSession("s1").ok());
  ASSERT_TRUE(host->CreateSession("s2").ok());
  auto rejected = host->CreateSession("s3");
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(host->metrics().sessions_rejected, 1u);

  HttpRequest create;
  create.method = HttpMethod::kPost;
  create.target = "/host/sessions?id=s3";
  HttpResponse response = host->Route(create);
  EXPECT_EQ(response.status_code, 503);
  ASSERT_TRUE(response.RetryAfter().has_value());
  EXPECT_EQ(*response.RetryAfter(), Duration::Seconds(3.0));
  EXPECT_EQ(host->metrics().sessions_rejected, 2u);

  // Freeing a slot reopens admission.
  ASSERT_TRUE(host->CloseSession("s1").ok());
  EXPECT_EQ(host->Route(create).status_code, 200);
  EXPECT_NE(host->FindSession("s3"), nullptr);
}

TEST_F(HostTest, SessionCapReapsIdleSessionsBeforeShedding) {
  HostConfig config;
  config.limits.max_sessions = 1;
  config.limits.session_idle_timeout = Duration::Seconds(2.0);
  auto host = MakeHost(std::move(config));
  ASSERT_TRUE(host->CreateSession("old").ok());
  loop_.RunFor(Duration::Seconds(3.0));
  // "old" is idle past the timeout: the cap check reaps it instead of
  // rejecting the new session.
  auto fresh = host->CreateSession("fresh");
  EXPECT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_EQ(host->metrics().sessions_reaped, 1u);
  EXPECT_EQ(host->metrics().sessions_rejected, 0u);
}

// ----------------------------------------------------- front-door router ---

TEST_F(HostTest, FrontDoorRoutesAndRejects) {
  auto host = MakeHost();
  auto session = host->CreateSession("s1");
  ASSERT_TRUE(session.ok());
  SetSessionDoc(*session, "Doc");

  auto get = [&](const std::string& target) {
    HttpRequest request;
    request.method = HttpMethod::kGet;
    request.target = target;
    return host->Route(request);
  };

  // Forwarded new-connection request reaches the session agent.
  HttpResponse initial = get("/s/s1/");
  EXPECT_EQ(initial.status_code, 200);
  EXPECT_NE(initial.body.find("RCB"), std::string::npos);
  EXPECT_EQ((*session)->agent->metrics().new_connections, 1u);

  EXPECT_EQ(get("/host/status").status_code, 200);
  EXPECT_NE(get("/host/status").body.find("s1"), std::string::npos);
  HttpResponse metrics = get("/host/metrics");
  EXPECT_EQ(metrics.status_code, 200);
  EXPECT_NE(metrics.body.find("rcb_host_sessions"), std::string::npos);

  EXPECT_EQ(get("/s/unknown/").status_code, 404);
  EXPECT_EQ(get("/s/bad id/").status_code, 400);
  EXPECT_EQ(get("/s/s1/stream").status_code, 400);  // held streams can't proxy
  EXPECT_EQ(get("/nonsense").status_code, 404);
  EXPECT_EQ(host->metrics().unknown_session_requests, 1u);
  EXPECT_EQ(host->metrics().invalid_session_ids, 1u);
  EXPECT_GE(host->metrics().front_door_requests, 7u);
}

// ----------------------------------------- generate-once broadcast proof ---

TEST_F(HostTest, PipelineRunsOncePerUpdateNotPerParticipant) {
  auto host = MakeHost();
  auto session_a = host->CreateSession("a");
  auto session_b = host->CreateSession("b");
  ASSERT_TRUE(session_a.ok());
  ASSERT_TRUE(session_b.ok());
  SetSessionDoc(*session_a, "A1");
  SetSessionDoc(*session_b, "B1");

  std::vector<std::unique_ptr<Participant>> participants;
  for (int i = 0; i < 3; ++i) {
    participants.push_back(JoinSession(*session_a, 1 + i));
    participants.push_back(JoinSession(*session_b, 4 + i));
  }
  auto all_have = [&](uint64_t min_updates) {
    return loop_.RunUntilCondition([&] {
      for (auto& participant : participants) {
        if (participant->snippet->metrics().content_updates < min_updates) {
          return false;
        }
      }
      return true;
    });
  };
  ASSERT_TRUE(all_have(1));
  SetSessionDoc(*session_a, "A2");
  SetSessionDoc(*session_b, "B2");
  ASSERT_TRUE(all_have(2));

  // Each session saw 2 document versions; each version was generated exactly
  // once and fanned out to all 3 pollers.
  for (HostSession* session : {*session_a, *session_b}) {
    const AgentMetrics& metrics = session->agent->metrics();
    EXPECT_EQ(metrics.doc_updates, 2u) << session->id;
    EXPECT_EQ(metrics.generations, 2u) << session->id;
    EXPECT_GE(metrics.polls_with_content, 6u) << session->id;
    EXPECT_GE(metrics.snapshot_reuses, 4u) << session->id;
  }

  // The host aggregates tell the same story (sim subset is deterministic).
  obs::RenderOptions options;
  options.include_wall = false;
  std::string rendered = host->metrics_registry().RenderPrometheus(options);
  EXPECT_NE(rendered.find("rcb_host_doc_updates_total 4"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("rcb_host_pipeline_runs_total 4"), std::string::npos)
      << rendered;

  // ...and they stay monotone across a session teardown.
  ASSERT_TRUE(host->CloseSession("a").ok());
  rendered = host->metrics_registry().RenderPrometheus(options);
  EXPECT_NE(rendered.find("rcb_host_pipeline_runs_total 4"), std::string::npos)
      << rendered;
}

// -------------------------------------------------------- metrics modes ----

TEST_F(HostTest, LiteSessionsSkipPerSessionFamiliesButCountInAggregates) {
  HostConfig config;
  config.limits.metrics_sessions = 1;
  auto host = MakeHost(std::move(config));
  auto full = host->CreateSession("full");
  auto lite = host->CreateSession("lite");
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(lite.ok());
  EXPECT_FALSE((*full)->lite);
  EXPECT_TRUE((*lite)->lite);

  SetSessionDoc(*full, "F");
  SetSessionDoc(*lite, "L");
  auto participant_full = JoinSession(*full, 1);
  auto participant_lite = JoinSession(*lite, 2);
  WaitForContent(participant_full.get());
  WaitForContent(participant_lite.get());

  std::string rendered = host->metrics_registry().RenderPrometheus();
  EXPECT_NE(rendered.find("session=\"full\""), std::string::npos);
  EXPECT_EQ(rendered.find("session=\"lite\""), std::string::npos);
  // The lite session still counts in the host aggregates.
  EXPECT_NE(rendered.find("rcb_host_doc_updates_total 2"), std::string::npos)
      << rendered;

  // Closing the labelled session removes its families from the registry.
  ASSERT_TRUE(host->CloseSession("full").ok());
  rendered = host->metrics_registry().RenderPrometheus();
  EXPECT_EQ(rendered.find("session=\"full\""), std::string::npos);
}

// ------------------------------------------------ durability & recovery ----
//
// DESIGN.md §13: checkpoint/WAL persistence, crash-point chaos, supervised
// recovery-on-start, signed-resume reconnection, per-session degradation of
// corrupt files, and restart-storm admission staggering.

namespace fs = std::filesystem;

std::string MakeHostPersistDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("rcb_host_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string CanonicalDigest(const Document& document) {
  return delta::TreeDigest(*delta::CanonicalizeDocument(document));
}

// Every shed creator gets a deterministic per-key jitter on its Retry-After
// hint, so a thundering herd of rejected creates does not retry in lockstep.
TEST_F(HostTest, RetryAfterJitterSpreadsShedCreators) {
  HostConfig config;
  config.limits.max_sessions = 1;
  config.limits.retry_after = Duration::Seconds(1.0);
  // retry_after_jitter keeps its 3s default: hints land in [1s, 4s].
  auto host = MakeHost(std::move(config));
  ASSERT_TRUE(host->CreateSession("only").ok());

  auto shed_hint = [&](const std::string& id) {
    HttpRequest request;
    request.method = HttpMethod::kPost;
    request.target = "/host/sessions?id=" + id;
    HttpResponse response = host->Route(request);
    EXPECT_EQ(response.status_code, 503) << id;
    auto hint = response.RetryAfter();
    EXPECT_TRUE(hint.has_value()) << id;
    return hint.value_or(Duration::Zero());
  };

  std::set<int64_t> distinct;
  for (int i = 0; i < 12; ++i) {
    Duration hint = shed_hint("shed-" + std::to_string(i));
    EXPECT_GE(hint, Duration::Seconds(1.0));
    EXPECT_LE(hint, Duration::Seconds(4.0));
    distinct.insert(hint.millis());
  }
  // The jitter actually spreads the herd...
  EXPECT_GE(distinct.size(), 2u);
  // ...and is a pure function of the key: the same creator always gets the
  // same hint (determinism is the repo's core invariant).
  EXPECT_EQ(shed_hint("shed-0").millis(), shed_hint("shed-0").millis());
}

// The flagship crash-recovery scenario: three live sessions with signed
// participants, a process death injected mid WAL stream, a supervised restart
// over the same directory, and every participant resuming over PR 1's signed
// path — no full rejoin, anti-replay intact, documents bit-identical.
TEST_F(HostTest, CrashedHostRecoversSessionsAndParticipantsResumeSigned) {
  const std::string dir = MakeHostPersistDir("flagship");
  ProcessFaultInjector faults;
  const std::vector<std::string> ids = {"s1", "s2", "s3"};

  auto make_config = [&] {
    HostConfig config;
    config.persist.dir = dir;
    config.process_faults = &faults;
    config.recovery_storm_window = Duration::Zero();
    return config;
  };

  auto host = MakeHost(make_config());
  std::map<std::string, std::unique_ptr<Participant>> participants;
  std::map<std::string, uint16_t> ports;
  for (size_t i = 0; i < ids.size(); ++i) {
    const std::string& id = ids[i];
    AgentConfig agent_config;
    agent_config.session_key = "key-" + id;
    auto session = host->CreateSession(id, agent_config);
    ASSERT_TRUE(session.ok()) << session.status();
    ports[id] = (*session)->port;
    SetSessionDoc(*session, "Doc " + id, "<p id=\"status\">v1 " + id + "</p>");

    SnippetConfig snippet_config;
    snippet_config.session_key = "key-" + id;
    snippet_config.poll_timeout = Duration::Millis(400);
    snippet_config.backoff_base = Duration::Millis(100);
    snippet_config.backoff_max = Duration::Millis(400);
    snippet_config.reconnect_after = 2;
    participants[id] =
        JoinSession(*session, static_cast<int>(i) + 1, snippet_config);
    WaitForContent(participants[id].get());
  }

  // Advance every session to a second document version, make it durable,
  // and record the canonical digests recovery must reproduce exactly.
  std::map<std::string, std::string> want_host_digest;
  std::map<std::string, std::string> want_participant_digest;
  for (const std::string& id : ids) {
    SetSessionDoc(host->FindSession(id), "Doc " + id + " v2",
                  "<p id=\"status\">v2 " + id + "</p>");
  }
  for (const std::string& id : ids) {
    WaitForContent(participants[id].get(), 2);
  }
  for (const std::string& id : ids) {
    ASSERT_TRUE(host->CheckpointSession(id).ok());
    want_host_digest[id] =
        CanonicalDigest(*host->FindSession(id)->browser->document());
    want_participant_digest[id] =
        CanonicalDigest(*participants[id]->browser->document());
  }

  // Kill the process mid WAL stream: the next signed poll's anti-replay
  // append is durable, the ack may not be — the classic WAL-ahead gap.
  faults.Arm({CrashPoint::kAfterWalAppend, 0, ""});
  ASSERT_TRUE(loop_.RunUntilCondition([&] { return faults.crashed(); }));
  EXPECT_EQ(faults.metrics().crashes, 1u);
  host.reset();  // the dead image: nothing after the kill reaches disk

  // The participants poll into the dead ports, fail, back off, and attempt
  // signed resumes that also fail — the storm a real restart faces.
  loop_.RunFor(Duration::Seconds(2.0));
  for (auto& [id, participant] : participants) {
    EXPECT_GE(participant->snippet->metrics().transport_failures, 1u) << id;
  }

  // A fresh process image over the same directory recovers every session.
  faults.Reset();
  auto restarted = MakeHost(make_config());
  EXPECT_EQ(restarted->metrics().sessions_recovered, 3u);
  EXPECT_EQ(restarted->metrics().sessions_unrecoverable, 0u);
  EXPECT_GE(restarted->flight_recorder().triggers("host_recovery"), 3u);
  for (const std::string& id : ids) {
    HostSession* session = restarted->FindSession(id);
    ASSERT_NE(session, nullptr) << id;
    EXPECT_TRUE(session->recovered) << id;
    // Same port as before the crash, so the participants' resume URLs and
    // the signed handshake stay valid.
    EXPECT_EQ(session->port, ports[id]) << id;
    EXPECT_EQ(CanonicalDigest(*session->browser->document()),
              want_host_digest[id])
        << id;
  }

  // Every participant resumes over the signed path and resyncs in full.
  ASSERT_TRUE(loop_.RunUntilCondition([&] {
    for (auto& [id, participant] : participants) {
      const SnippetMetrics& m = participant->snippet->metrics();
      if (m.reconnects < 1 || m.resyncs < 1) {
        return false;
      }
    }
    return true;
  }));
  for (const std::string& id : ids) {
    const AgentMetrics& agent = restarted->FindSession(id)->agent->metrics();
    EXPECT_EQ(agent.new_connections, 0u) << id;  // nobody rejoined from scratch
    EXPECT_GE(agent.reconnects, 1u) << id;
    EXPECT_EQ(CanonicalDigest(*participants[id]->browser->document()),
              want_participant_digest[id])
        << id;
  }

  // Anti-replay survived the crash: a replayed signed poll with a long
  // superseded seq is still rejected by the recovered agent.
  {
    const std::string& id = ids[0];
    PollRequest replay;
    replay.participant_id = participants[id]->snippet->participant_id();
    replay.doc_time_ms = -1;
    replay.seq = 1;
    replay.resync = true;
    std::string body = EncodePollRequest(replay);
    std::string mac = HmacSha256Hex("key-" + id, "POST /\n" + body);
    Browser prober(&loop_, &network_, "p-pc-8");
    FetchResult result;
    bool done = false;
    prober.Fetch(HttpMethod::kPost,
                 Url::Make("http", "host-pc", ports[id], "/", "hmac=" + mac),
                 body, "application/x-www-form-urlencoded",
                 [&](FetchResult fetched) {
                   result = std::move(fetched);
                   done = true;
                 });
    ASSERT_TRUE(loop_.RunUntilCondition([&] { return done; }));
    ASSERT_TRUE(result.status.ok()) << result.status;
    EXPECT_EQ(result.response.status_code, 403);
  }

  // Recovery is first-class on the operator surfaces.
  HttpRequest status_request;
  status_request.method = HttpMethod::kGet;
  status_request.target = "/host/status";
  HttpResponse status_response = restarted->Route(status_request);
  EXPECT_EQ(status_response.status_code, 200);
  EXPECT_NE(status_response.body.find("persist: recovered 3"),
            std::string::npos)
      << status_response.body;

  obs::RenderOptions options;
  options.include_wall = false;
  std::string rendered =
      restarted->metrics_registry().RenderPrometheus(options);
  EXPECT_NE(rendered.find("rcb_host_recovered_sessions_total 3"),
            std::string::npos)
      << rendered;
  for (const char* family :
       {"rcb_persist_checkpoints_written_total", "rcb_persist_wal_records_total",
        "rcb_persist_wal_truncations_total", "rcb_persist_torn_writes_total"}) {
    EXPECT_NE(rendered.find(family), std::string::npos) << family;
  }
}

// Crash-recovery equivalence: the same scripted mutation schedule, run once
// uncrashed and once with a mid-run crash + recovery (re-driving the steps
// the recovered data-k marker shows were lost), lands on bit-identical
// canonical DOM digests — host document and participant document alike.
TEST_F(HostTest, CrashRecoveryRunMatchesUncrashedDigests) {
  constexpr int kSteps = 4;
  auto apply_step = [](Browser* browser, int step) {
    browser->MutateDocument([&](Document* document) {
      Element* status = document->ById("status");
      ASSERT_NE(status, nullptr);
      status->RemoveAllChildren();
      status->AppendChild(MakeText("step " + std::to_string(step)));
      auto div = MakeElement("div");
      div->SetAttribute("id", "m" + std::to_string(step));
      div->AppendChild(MakeText("mutation " + std::to_string(step)));
      document->body()->AppendChild(std::move(div));
      // The marker names the last applied step, so a recovered document
      // tells the driver exactly which steps to re-drive.
      document->body()->SetAttribute("data-k", std::to_string(step));
    });
  };

  // Control: the uncrashed run.
  std::string control_host_digest;
  std::string control_participant_digest;
  {
    auto host = MakeHost();
    auto session = host->CreateSession("equiv");
    ASSERT_TRUE(session.ok()) << session.status();
    SetSessionDoc(*session, "Equiv", "<p id=\"status\">start</p>");
    auto participant = JoinSession(*session, 1);
    WaitForContent(participant.get());
    for (int step = 1; step <= kSteps; ++step) {
      apply_step((*session)->browser.get(), step);
      WaitForContent(participant.get(), 1 + static_cast<uint64_t>(step));
    }
    control_host_digest = CanonicalDigest(*(*session)->browser->document());
    control_participant_digest =
        CanonicalDigest(*participant->browser->document());
  }

  // The crashed run: checkpoint after step 2, die with steps 3+ buffered but
  // never flushed, recover, re-drive from the marker, converge.
  const std::string dir = MakeHostPersistDir("equiv_crash");
  ProcessFaultInjector faults;
  auto make_config = [&] {
    HostConfig config;
    config.persist.dir = dir;
    config.process_faults = &faults;
    config.recovery_storm_window = Duration::Zero();
    return config;
  };
  auto host = MakeHost(make_config());
  auto session = host->CreateSession("equiv");
  ASSERT_TRUE(session.ok()) << session.status();
  SetSessionDoc(*session, "Equiv", "<p id=\"status\">start</p>");
  SnippetConfig snippet_config;
  snippet_config.poll_timeout = Duration::Millis(400);
  snippet_config.backoff_base = Duration::Millis(100);
  snippet_config.backoff_max = Duration::Millis(400);
  snippet_config.reconnect_after = 2;
  auto participant = JoinSession(*session, 1, snippet_config);
  WaitForContent(participant.get());

  apply_step((*session)->browser.get(), 1);
  WaitForContent(participant.get(), 2);
  apply_step((*session)->browser.get(), 2);
  WaitForContent(participant.get(), 3);
  ASSERT_TRUE(host->CheckpointSession("equiv").ok());

  faults.Arm({CrashPoint::kBeforeWalFlush, 0, ""});
  apply_step((*session)->browser.get(), 3);
  ASSERT_TRUE(loop_.RunUntilCondition([&] { return faults.crashed(); }));
  host.reset();
  loop_.RunFor(Duration::Seconds(1.0));

  faults.Reset();
  host = MakeHost(make_config());
  ASSERT_EQ(host->metrics().sessions_recovered, 1u);
  HostSession* recovered = host->FindSession("equiv");
  ASSERT_NE(recovered, nullptr);
  // kBeforeWalFlush lost the buffered records outright, so recovery saw no
  // post-checkpoint doc versions at all.
  EXPECT_EQ(host->metrics().doc_versions_lost, 0u);

  std::string marker =
      recovered->browser->document()->body()->AttrOr("data-k");
  EXPECT_EQ(marker, "2");  // the durable state is exactly the checkpoint
  int last_applied = marker.empty() ? 0 : std::stoi(marker);
  for (int step = last_applied + 1; step <= kSteps; ++step) {
    apply_step(recovered->browser.get(), step);
  }

  ASSERT_TRUE(loop_.RunUntilCondition([&] {
    return participant->browser->document()->body()->AttrOr("data-k") ==
           std::to_string(kSteps);
  }));
  EXPECT_EQ(CanonicalDigest(*recovered->browser->document()),
            control_host_digest);
  EXPECT_EQ(CanonicalDigest(*participant->browser->document()),
            control_participant_digest);
  EXPECT_GE(participant->snippet->metrics().reconnects, 1u);
}

// The recovery ladder's last rung degrades exactly the damaged session:
// corrupt files are quarantined, healthy siblings recover, and the host
// itself keeps serving.
TEST_F(HostTest, CorruptFilesDegradeTheSessionNeverTheHost) {
  const std::string dir = MakeHostPersistDir("corrupt");
  auto make_config = [&] {
    HostConfig config;
    config.persist.dir = dir;
    config.recovery_storm_window = Duration::Zero();
    return config;
  };
  auto host = MakeHost(make_config());
  for (const char* id : {"keeper", "victim"}) {
    auto session = host->CreateSession(id);
    ASSERT_TRUE(session.ok()) << session.status();
    SetSessionDoc(*session, std::string("Doc ") + id);
  }
  host.reset();  // clean Stop: final checkpoint per session, files kept

  // Flip one byte in the middle of victim's checkpoint, and smear a torn
  // half-frame onto the tail of keeper's (truncated) log.
  const std::string victim_ckpt = dir + "/victim.ckpt";
  {
    std::ifstream in(victim_ckpt, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    std::ofstream out(victim_ckpt, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  {
    std::ofstream out(dir + "/keeper.wal", std::ios::binary | std::ios::app);
    const char torn[] = {0x20, 0x00, 0x00, 0x00, 0x02, 'h', 'a'};
    out.write(torn, sizeof(torn));
  }

  auto restarted = MakeHost(make_config());
  EXPECT_EQ(restarted->metrics().sessions_recovered, 1u);
  EXPECT_EQ(restarted->metrics().sessions_unrecoverable, 1u);
  EXPECT_GE(restarted->metrics().wal_tails_discarded, 1u);
  EXPECT_NE(restarted->FindSession("keeper"), nullptr);
  EXPECT_EQ(restarted->FindSession("victim"), nullptr);
  EXPECT_GE(restarted->persist_counters().checkpoints_rejected, 1u);
  EXPECT_GE(restarted->persist_counters().wal_tail_discards, 1u);
  // Quarantine moved the rejected files aside for post-mortem.
  EXPECT_TRUE(fs::exists(victim_ckpt + ".corrupt"));
  EXPECT_FALSE(fs::exists(victim_ckpt));

  // The host itself is healthy: the front door answers and new sessions
  // (including the quarantined id) are admitted.
  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.target = "/host/status";
  HttpResponse response = restarted->Route(request);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find("unrecoverable 1"), std::string::npos)
      << response.body;
  EXPECT_TRUE(restarted->CreateSession("victim").ok());
}

// Recovered sessions stagger their pollers' readmission across the storm
// window: before its slot a known participant sheds with 503 + jittered
// Retry-After through the overload layer, after it everyone converges.
TEST_F(HostTest, RecoveryStormStaggersResyncAdmission) {
  const Duration window = Duration::Seconds(10.0);
  // The slot is StableHash64(id) % (window_ms + 1); pick an id (statically,
  // from a deterministic candidate list) whose slot is deep enough inside
  // the window that deferrals are observable before it opens.
  std::string id;
  for (const char* candidate : {"storm-a", "storm-b", "storm-c", "storm-d"}) {
    if (StableHash64(candidate) % 10001 > 2500) {
      id = candidate;
      break;
    }
  }
  ASSERT_FALSE(id.empty());

  const std::string dir = MakeHostPersistDir("storm");
  auto make_config = [&](Duration storm_window) {
    HostConfig config;
    config.persist.dir = dir;
    config.recovery_storm_window = storm_window;
    return config;
  };
  auto host = MakeHost(make_config(Duration::Zero()));
  auto session = host->CreateSession(id);
  ASSERT_TRUE(session.ok()) << session.status();
  SetSessionDoc(*session, "Storm", "<p id=\"status\">v1</p>");
  SnippetConfig snippet_config;
  snippet_config.poll_timeout = Duration::Millis(400);
  snippet_config.backoff_base = Duration::Millis(100);
  snippet_config.backoff_max = Duration::Millis(400);
  auto participant = JoinSession(*session, 1, snippet_config);
  WaitForContent(participant.get());
  host.reset();  // clean shutdown: roster and document checkpointed

  host = MakeHost(make_config(window));
  const SimTime recovered_at = loop_.now();
  ASSERT_EQ(host->metrics().sessions_recovered, 1u);
  HostSession* recovered = host->FindSession(id);
  ASSERT_NE(recovered, nullptr);

  // Until the slot opens, the restored participant's polls shed.
  ASSERT_TRUE(loop_.RunUntilCondition([&] {
    return recovered->agent->metrics().recovery_deferrals >= 1;
  }));
  // ...and the shed poll reaches the snippet as an overload deferral (one
  // link RTT later), slowing its loop by the jittered hint.
  ASSERT_TRUE(loop_.RunUntilCondition([&] {
    return participant->snippet->metrics().overload_deferrals >= 1;
  }));

  // After the slot the participant is admitted and tracks new versions —
  // and only after it: admission cannot precede the session's slot.
  SetSessionDoc(recovered, "Storm v2", "<p id=\"status\">v2</p>");
  ASSERT_TRUE(loop_.RunUntilCondition([&] {
    return participant->browser->document()->Title() == "Storm v2";
  }));
  EXPECT_GE(loop_.now() - recovered_at, Duration::Millis(2500));
}

}  // namespace
}  // namespace rcb
