// Unit tests for src/util: status, strings, escape, base64, rand, sim_time.
#include <gtest/gtest.h>

#include "src/util/base64.h"
#include "src/util/escape.h"
#include "src/util/rand.h"
#include "src/util/sim_time.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace rcb {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllConstructorsMapToTheirCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(UnauthenticatedError("").code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DeadlineExceededError("").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(AbortedError("").code(), StatusCode::kAborted);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  EXPECT_EQ(value.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> value = InvalidArgumentError("nope");
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(value.value_or(7), 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Status UseAssignOrReturn(int input, int* out) {
  RCB_ASSIGN_OR_RETURN(int half, Half(input));
  *out = half;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(3, &out).code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, StrSplitBasics) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, StrSplitSkipEmptyTrims) {
  EXPECT_EQ(StrSplitSkipEmpty(" a ; ;b;", ';'),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, CaseMapping) {
  EXPECT_EQ(AsciiToLower("MiXeD123"), "mixed123");
  EXPECT_EQ(AsciiToUpper("MiXeD123"), "MIXED123");
  EXPECT_TRUE(EqualsIgnoreCase("Content-Type", "content-type"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/obj/key", "/obj/"));
  EXPECT_FALSE(StartsWith("/o", "/obj/"));
  EXPECT_TRUE(EndsWith("file.png", ".png"));
  EXPECT_FALSE(EndsWith("png", "file.png"));
  EXPECT_TRUE(StartsWithIgnoreCase("HTTP/1.1", "http/"));
}

TEST(StringsTest, StrReplaceAll) {
  EXPECT_EQ(StrReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(StrReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(StrReplaceAll("abc", "", "x"), "abc");
  EXPECT_EQ(StrReplaceAll("", "a", "x"), "");
}

TEST(StringsTest, ParseUint64) {
  uint64_t value = 0;
  EXPECT_TRUE(ParseUint64("0", &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &value));
  EXPECT_EQ(value, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &value));  // overflow
  EXPECT_FALSE(ParseUint64("", &value));
  EXPECT_FALSE(ParseUint64("-1", &value));
  EXPECT_FALSE(ParseUint64("12a", &value));
  EXPECT_FALSE(ParseUint64(" 1", &value));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%05.1f", 2.25), "002.2");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, IsDigits) {
  EXPECT_TRUE(IsDigits("0123"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("12x"));
}

// ---------------------------------------------------------------- Escape --

TEST(EscapeTest, JsEscapeKeepsSafeChars) {
  EXPECT_EQ(JsEscape("abcXYZ019@*_+-./"), "abcXYZ019@*_+-./");
}

TEST(EscapeTest, JsEscapeEncodesUnsafeBytes) {
  EXPECT_EQ(JsEscape(" "), "%20");
  EXPECT_EQ(JsEscape("<a href=\"x\">"), "%3Ca%20href%3D%22x%22%3E");
  EXPECT_EQ(JsEscape("\n"), "%0A");
  EXPECT_EQ(JsEscape(std::string(1, '\0')), "%00");
}

TEST(EscapeTest, JsUnescapeInverse) {
  EXPECT_EQ(JsUnescape("%3Ca%20b%3E"), "<a b>");
  EXPECT_EQ(JsUnescape("plain"), "plain");
}

TEST(EscapeTest, JsUnescapeHandlesUnicodeForm) {
  EXPECT_EQ(JsUnescape("%u0041"), "A");
  // Malformed sequences pass through.
  EXPECT_EQ(JsUnescape("%zz"), "%zz");
  EXPECT_EQ(JsUnescape("%"), "%");
  EXPECT_EQ(JsUnescape("%u00"), "%u00");
}

TEST(EscapeTest, JsRoundTripAllBytes) {
  std::string all;
  for (int i = 0; i < 256; ++i) {
    all.push_back(static_cast<char>(i));
  }
  EXPECT_EQ(JsUnescape(JsEscape(all)), all);
}

TEST(EscapeTest, PercentEncodeDecode) {
  EXPECT_EQ(PercentEncode("a b&c=d"), "a%20b%26c%3Dd");
  EXPECT_EQ(PercentDecode("a%20b%26c%3Dd"), "a b&c=d");
  EXPECT_EQ(PercentDecode("a+b", /*plus_as_space=*/true), "a b");
  EXPECT_EQ(PercentDecode("a+b", /*plus_as_space=*/false), "a+b");
  EXPECT_EQ(PercentDecode("%GG"), "%GG");  // malformed passes through
}

TEST(EscapeTest, HtmlEscapeUnescape) {
  EXPECT_EQ(HtmlEscape("<b>&\"'"), "&lt;b&gt;&amp;&quot;&#39;");
  EXPECT_EQ(HtmlUnescape("&lt;b&gt;&amp;&quot;&apos;"), "<b>&\"'");
  EXPECT_EQ(HtmlUnescape("&#65;&#x42;"), "AB");
  EXPECT_EQ(HtmlUnescape("&bogus;"), "&bogus;");
  EXPECT_EQ(HtmlUnescape("&#xZZ;"), "&#xZZ;");
  EXPECT_EQ(HtmlUnescape("no entities"), "no entities");
}

TEST(EscapeTest, NamedEntities) {
  EXPECT_EQ(HtmlUnescape("a&nbsp;b"), "a\xA0"
                                      "b");
  EXPECT_EQ(HtmlUnescape("&copy;&reg;&deg;"), "\xA9\xAE\xB0");
  EXPECT_EQ(HtmlUnescape("caf&eacute;"), "caf\xE9");
  // Above Latin-1: UTF-8 bytes.
  EXPECT_EQ(HtmlUnescape("&euro;"), "\xE2\x82\xAC");
  EXPECT_EQ(HtmlUnescape("&mdash;"), "\xE2\x80\x94");
  EXPECT_EQ(HtmlUnescape("&hellip;"), "\xE2\x80\xA6");
  // Case-sensitive, like the spec: &COPY; is not defined here.
  EXPECT_EQ(HtmlUnescape("&COPY;"), "&COPY;");
}

TEST(EscapeTest, NumericEntitiesAboveLatin1) {
  EXPECT_EQ(HtmlUnescape("&#8364;"), "\xE2\x82\xAC");   // euro
  EXPECT_EQ(HtmlUnescape("&#x20AC;"), "\xE2\x82\xAC");
  EXPECT_EQ(HtmlUnescape("&#128578;"), "\xF0\x9F\x99\x82");  // emoji, 4-byte
}

TEST(EscapeTest, HtmlRoundTrip) {
  std::string text = "if (a < b && c > d) { print(\"x'\"); }";
  EXPECT_EQ(HtmlUnescape(HtmlEscape(text)), text);
}

// Property sweep: JsEscape/JsUnescape round-trips random binary blobs.
class EscapeRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EscapeRoundTripTest, JsEscapeRoundTripsRandomBytes) {
  Rng rng(GetParam());
  std::string blob = rng.NextBytes(rng.NextBelow(2048) + 1);
  EXPECT_EQ(JsUnescape(JsEscape(blob)), blob);
}

TEST_P(EscapeRoundTripTest, PercentRoundTripsRandomBytes) {
  Rng rng(GetParam() ^ 0xDEADBEEF);
  std::string blob = rng.NextBytes(rng.NextBelow(512) + 1);
  EXPECT_EQ(PercentDecode(PercentEncode(blob)), blob);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscapeRoundTripTest,
                         ::testing::Range<uint64_t>(1, 17));

// ---------------------------------------------------------------- Base64 --

TEST(Base64Test, Rfc4648Vectors) {
  EXPECT_EQ(Base64Encode(""), "");
  EXPECT_EQ(Base64Encode("f"), "Zg==");
  EXPECT_EQ(Base64Encode("fo"), "Zm8=");
  EXPECT_EQ(Base64Encode("foo"), "Zm9v");
  EXPECT_EQ(Base64Encode("foob"), "Zm9vYg==");
  EXPECT_EQ(Base64Encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, DecodeVectors) {
  EXPECT_EQ(Base64Decode("Zm9vYmFy").value(), "foobar");
  EXPECT_EQ(Base64Decode("Zg==").value(), "f");
  EXPECT_EQ(Base64Decode("").value(), "");
}

TEST(Base64Test, DecodeRejectsBadInput) {
  EXPECT_FALSE(Base64Decode("abc").ok());       // bad length
  EXPECT_FALSE(Base64Decode("ab!d").ok());      // bad char
  EXPECT_FALSE(Base64Decode("=abc").ok());      // padding in front
  EXPECT_FALSE(Base64Decode("a=bc").ok());      // data after padding
}

TEST(Base64Test, HexRoundTrip) {
  EXPECT_EQ(HexEncode("\x01\xab\xff"), "01abff");
  EXPECT_EQ(HexDecode("01abff").value(), "\x01\xab\xff");
  EXPECT_EQ(HexDecode("01ABFF").value(), "\x01\xab\xff");
  EXPECT_FALSE(HexDecode("abc").ok());
  EXPECT_FALSE(HexDecode("zz").ok());
}

class Base64RoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Base64RoundTripTest, RandomBlobs) {
  Rng rng(GetParam());
  std::string blob = rng.NextBytes(rng.NextBelow(1024));
  auto decoded = Base64Decode(Base64Encode(blob));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, blob);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Base64RoundTripTest,
                         ::testing::Range<uint64_t>(1, 13));

// ------------------------------------------------------------------- Rng --

TEST(RngTest, Deterministic) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t value = rng.NextInRange(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    saw_lo |= value == -3;
    saw_hi |= value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, NextBytesLength) {
  Rng rng(3);
  EXPECT_EQ(rng.NextBytes(0).size(), 0u);
  EXPECT_EQ(rng.NextBytes(7).size(), 7u);
  EXPECT_EQ(rng.NextBytes(64).size(), 64u);
}

TEST(RngTest, NextTokenAlphanumeric) {
  Rng rng(5);
  std::string token = rng.NextToken(32);
  EXPECT_EQ(token.size(), 32u);
  for (char c : token) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << c;
  }
}

// -------------------------------------------------------------- SimTime --

TEST(SimTimeTest, DurationConversions) {
  EXPECT_EQ(Duration::Millis(3).micros(), 3000);
  EXPECT_EQ(Duration::Seconds(1.5).millis(), 1500);
  EXPECT_DOUBLE_EQ(Duration::Micros(250).seconds(), 0.00025);
}

TEST(SimTimeTest, Arithmetic) {
  Duration a = Duration::Millis(10);
  Duration b = Duration::Millis(4);
  EXPECT_EQ((a + b).millis(), 14);
  EXPECT_EQ((a - b).millis(), 6);
  EXPECT_EQ((a * 3).millis(), 30);
  a += b;
  EXPECT_EQ(a.millis(), 14);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_EQ(Duration::Millis(1000), Duration::Seconds(1.0));
  SimTime t0;
  SimTime t1 = t0 + Duration::Millis(5);
  EXPECT_GT(t1, t0);
  EXPECT_EQ((t1 - t0).millis(), 5);
}

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(Duration::Seconds(2.0).ToString(), "2s");
  EXPECT_EQ(Duration::Millis(12).ToString(), "12ms");
  EXPECT_EQ(Duration::Micros(1500).ToString(), "1.500ms");
}

}  // namespace
}  // namespace rcb
