// Tests for the durability subsystem (src/persist, DESIGN.md §13): the
// CRC-framed container, the digest-gated checkpoint codec, WAL encode/replay
// with torn-tail truncation, the SessionStore checkpoint-and-truncate cycle,
// every CrashPoint's on-disk aftermath, and the recovery integrity ladder.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "src/net/fault_injector.h"
#include "src/persist/checkpoint.h"
#include "src/persist/frame.h"
#include "src/persist/session_store.h"
#include "src/persist/wal.h"

namespace rcb {
namespace persist {
namespace {

namespace fs = std::filesystem;

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteAll(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// A fresh directory per test so leftover files never cross-contaminate.
std::string MakePersistDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("rcb_persist_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

SessionCheckpoint MakeCheckpoint() {
  SessionCheckpoint checkpoint;
  checkpoint.session_id = "alpha";
  checkpoint.epoch = 7;
  checkpoint.created_at_us = 123456;
  checkpoint.config.session_key = "top&secret=key";
  checkpoint.config.poll_interval_ms = 250;
  checkpoint.config.cache_mode = true;
  checkpoint.config.enable_delta = true;
  checkpoint.config.enable_trace = false;
  checkpoint.config.sync_model = 1;
  checkpoint.config.port = 3004;
  checkpoint.state.doc_time_ms = 9001;
  checkpoint.state.has_version = true;
  checkpoint.state.next_pid = 4;
  checkpoint.state.document_html =
      "<html><head><title>T</title></head><body><p>x &amp; y</p></body></html>";
  checkpoint.state.document_url = "http://host-pc:3004/doc";
  checkpoint.state.participants.push_back(
      ParticipantExport{"p1", -1, 17, 2, 40});
  checkpoint.state.participants.push_back(
      ParticipantExport{"p3", -1, 5, 0, 9});
  UserAction held;
  held.type = ActionType::kNavigate;
  held.data = "http://example.test/next?a=1&b=2";
  held.origin = "p1";
  checkpoint.state.pending_actions.push_back(PendingActionExport{"p1", held});
  return checkpoint;
}

// ------------------------------------------------------------ framing ------

TEST(FrameTest, RoundTripAndEndOfStream) {
  std::string buffer;
  AppendFrame(&buffer, 1, "hello");
  AppendFrame(&buffer, 2, "");
  size_t offset = 0;
  auto first = ReadFrame(buffer, &offset);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->type, 1);
  EXPECT_EQ(first->payload, "hello");
  auto second = ReadFrame(buffer, &offset);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, 2);
  EXPECT_EQ(second->payload, "");
  auto end = ReadFrame(buffer, &offset);
  EXPECT_EQ(end.status().code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, TornAndCorruptFramesAreAborted) {
  std::string buffer;
  AppendFrame(&buffer, 3, "payload-bytes");
  // Every proper prefix is torn, never OutOfRange, never a crash.
  for (size_t cut = 1; cut < buffer.size(); ++cut) {
    size_t offset = 0;
    auto frame = ReadFrame(std::string_view(buffer).substr(0, cut), &offset);
    EXPECT_EQ(frame.status().code(), StatusCode::kAborted) << "cut=" << cut;
  }
  // A flipped payload bit fails the CRC gate.
  std::string flipped = buffer;
  flipped[6] = static_cast<char>(flipped[6] ^ 0x40);
  size_t offset = 0;
  auto frame = ReadFrame(flipped, &offset);
  EXPECT_EQ(frame.status().code(), StatusCode::kAborted);
  EXPECT_NE(frame.status().message().find("CRC"), std::string::npos);
}

// ----------------------------------------------------- checkpoint codec ----

TEST(CheckpointTest, RoundTripPreservesEveryField) {
  SessionCheckpoint original = MakeCheckpoint();
  std::string bytes = EncodeCheckpoint(original);
  auto decoded = DecodeCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->session_id, original.session_id);
  EXPECT_EQ(decoded->epoch, original.epoch);
  EXPECT_EQ(decoded->created_at_us, original.created_at_us);
  EXPECT_EQ(decoded->config, original.config);
  EXPECT_EQ(decoded->state, original.state);
}

TEST(CheckpointTest, EncodingIsDeterministic) {
  SessionCheckpoint checkpoint = MakeCheckpoint();
  EXPECT_EQ(EncodeCheckpoint(checkpoint), EncodeCheckpoint(checkpoint));
}

TEST(CheckpointTest, TornWriteCorpusIsRejectedWithoutCrashing) {
  std::string bytes = EncodeCheckpoint(MakeCheckpoint());
  // Every truncation point — mid-magic, mid-length, mid-payload, mid-digest —
  // must reject as a unit. This is the same corpus scripts/ci.sh feeds
  // checkpoint_inspect.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto decoded = DecodeCheckpoint(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
  // Trailing bytes after the digest trailer are equally fatal: the file is
  // not byte-for-byte what was hashed.
  auto padded = DecodeCheckpoint(bytes + "x");
  EXPECT_EQ(padded.status().code(), StatusCode::kAborted);
}

TEST(CheckpointTest, BitFlipsAnywhereFailAnIntegrityGate) {
  std::string bytes = EncodeCheckpoint(MakeCheckpoint());
  // Stride keeps the corpus small; gates covered: magic, CRC, whole-file
  // digest, document SHA, roster counts.
  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    auto decoded = DecodeCheckpoint(mutated);
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << i;
  }
}

// ------------------------------------------------------------------ WAL ----

TEST(WalTest, RoundTripAndTornTailTruncation) {
  std::string log = EncodeWalFileHeader("alpha", 3, 1000);
  std::vector<WalRecord> records;
  WalRecord version;
  version.type = WalRecordType::kDocVersion;
  version.doc_time_ms = 2000;
  records.push_back(version);
  WalRecord join;
  join.type = WalRecordType::kJoin;
  join.pid = "p2";
  records.push_back(join);
  WalRecord seq;
  seq.type = WalRecordType::kSeq;
  seq.pid = "p2";
  seq.seq = 11;
  records.push_back(seq);
  WalRecord leave;
  leave.type = WalRecordType::kLeave;
  leave.pid = "p1";
  records.push_back(leave);
  for (const WalRecord& record : records) {
    log += EncodeWalRecord(record);
  }

  auto replay = DecodeWal(log);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->session_id, "alpha");
  EXPECT_EQ(replay->epoch, 3u);
  EXPECT_EQ(replay->base_doc_time_ms, 1000);
  EXPECT_FALSE(replay->tail_discarded);
  EXPECT_EQ(replay->records, records);
  EXPECT_EQ(replay->bytes_replayed, log.size());

  // Cutting the log at any byte past the header replays the intact record
  // prefix and flags (at most) a discarded tail — never an error. A cut
  // exactly on a frame boundary is a clean end of stream, not a torn tail.
  size_t header_size = EncodeWalFileHeader("alpha", 3, 1000).size();
  std::set<size_t> boundaries;
  size_t boundary = header_size;
  boundaries.insert(boundary);
  for (const WalRecord& record : records) {
    boundary += EncodeWalRecord(record).size();
    boundaries.insert(boundary);
  }
  for (size_t cut = header_size; cut < log.size(); ++cut) {
    auto torn = DecodeWal(std::string_view(log).substr(0, cut));
    ASSERT_TRUE(torn.ok()) << "cut=" << cut;
    EXPECT_EQ(torn->tail_discarded, !boundaries.contains(cut))
        << "cut=" << cut;
    EXPECT_LE(torn->records.size(), records.size());
    EXPECT_LE(torn->bytes_replayed, cut);
    for (size_t i = 0; i < torn->records.size(); ++i) {
      EXPECT_EQ(torn->records[i], records[i]) << "cut=" << cut;
    }
  }
}

TEST(WalTest, BadMagicOrHeaderDiscardsTheWholeLog) {
  EXPECT_EQ(DecodeWal("NOTAWAL0").status().code(), StatusCode::kAborted);
  EXPECT_EQ(DecodeWal("").status().code(), StatusCode::kAborted);
  // Magic alone, no header frame.
  std::string magic_only(kWalMagic, 8);
  EXPECT_EQ(DecodeWal(magic_only).status().code(), StatusCode::kAborted);
}

// ---------------------------------------------------------- SessionStore ---

TEST(SessionStoreTest, CheckpointAndTruncateBoundsLogGrowth) {
  PersistOptions options;
  options.dir = MakePersistDir("truncate");
  options.checkpoint_dirty_records = 4;
  PersistCounters counters;
  SessionStore store("alpha", options, &counters, nullptr);
  ASSERT_TRUE(store.WriteCheckpoint(MakeCheckpoint()).ok());
  EXPECT_EQ(store.epoch(), 1u);

  WalRecord seq;
  seq.type = WalRecordType::kSeq;
  seq.pid = "p1";
  for (int i = 1; i <= 4; ++i) {
    seq.seq = static_cast<uint64_t>(i);
    ASSERT_TRUE(store.Append(seq).ok());
  }
  EXPECT_TRUE(store.ShouldCheckpoint());
  uintmax_t grown = fs::file_size(store.WalPath());
  ASSERT_TRUE(store.WriteCheckpoint(MakeCheckpoint()).ok());
  EXPECT_EQ(store.epoch(), 2u);
  EXPECT_EQ(store.dirty_records(), 0u);
  EXPECT_FALSE(store.ShouldCheckpoint());
  EXPECT_LT(fs::file_size(store.WalPath()), grown);
  EXPECT_EQ(counters.checkpoints_written, 2u);
  EXPECT_EQ(counters.wal_truncations, 2u);
  EXPECT_EQ(counters.wal_records, 4u);

  // The truncated log carries the new epoch: recovery applies it cleanly.
  auto loaded =
      LoadSession(store.CheckpointPath(), store.WalPath(), &counters);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->epoch, 2u);
  EXPECT_TRUE(loaded->wal_present);
  EXPECT_FALSE(loaded->wal_discarded);
  EXPECT_FALSE(loaded->wal_tail_discarded);
}

TEST(SessionStoreTest, DoubleRunsProduceByteIdenticalFiles) {
  auto run = [](const std::string& dir) {
    PersistOptions options;
    options.dir = dir;
    PersistCounters counters;
    SessionStore store("alpha", options, &counters, nullptr);
    EXPECT_TRUE(store.WriteCheckpoint(MakeCheckpoint()).ok());
    WalRecord join;
    join.type = WalRecordType::kJoin;
    join.pid = "p4";
    EXPECT_TRUE(store.Append(join).ok());
    WalRecord seq;
    seq.type = WalRecordType::kSeq;
    seq.pid = "p4";
    seq.seq = 2;
    EXPECT_TRUE(store.Append(seq).ok());
    return std::make_pair(ReadAll(store.CheckpointPath()),
                          ReadAll(store.WalPath()));
  };
  auto first = run(MakePersistDir("det_a"));
  auto second = run(MakePersistDir("det_b"));
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(SessionStoreTest, StaleWalFromSupersededEpochIsDiscarded) {
  PersistOptions options;
  options.dir = MakePersistDir("epoch");
  PersistCounters counters;
  SessionStore store("alpha", options, &counters, nullptr);
  ASSERT_TRUE(store.WriteCheckpoint(MakeCheckpoint()).ok());

  // A log from the previous generation (epoch 0) moved over the live one.
  std::string stale = EncodeWalFileHeader("alpha", 0, 0);
  WalRecord seq;
  seq.type = WalRecordType::kSeq;
  seq.pid = "p1";
  seq.seq = 999;
  stale += EncodeWalRecord(seq);
  WriteAll(store.WalPath(), stale);

  auto loaded =
      LoadSession(store.CheckpointPath(), store.WalPath(), &counters);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->wal_discarded);
  EXPECT_EQ(counters.wals_discarded, 1u);
  // The replay never touched the roster: p1 keeps its checkpointed seq.
  EXPECT_EQ(loaded->checkpoint.state.participants[0].last_seq, 17u);
}

TEST(SessionStoreTest, WalFromAnotherSessionIsDiscarded) {
  PersistOptions options;
  options.dir = MakePersistDir("session_mismatch");
  PersistCounters counters;
  SessionStore store("alpha", options, &counters, nullptr);
  ASSERT_TRUE(store.WriteCheckpoint(MakeCheckpoint()).ok());
  WriteAll(store.WalPath(), EncodeWalFileHeader("beta", 1, 0));
  auto loaded =
      LoadSession(store.CheckpointPath(), store.WalPath(), &counters);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->wal_discarded);
}

TEST(SessionStoreTest, WalReplayRebuildsRosterAndAntiReplayState) {
  PersistOptions options;
  options.dir = MakePersistDir("replay");
  PersistCounters counters;
  SessionStore store("alpha", options, &counters, nullptr);
  ASSERT_TRUE(store.WriteCheckpoint(MakeCheckpoint()).ok());

  WalRecord join;
  join.type = WalRecordType::kJoin;
  join.pid = "p7";
  ASSERT_TRUE(store.Append(join).ok());
  WalRecord seq;
  seq.type = WalRecordType::kSeq;
  seq.pid = "p7";
  seq.seq = 21;
  ASSERT_TRUE(store.Append(seq).ok());
  seq.pid = "p1";
  seq.seq = 30;
  ASSERT_TRUE(store.Append(seq).ok());
  WalRecord leave;
  leave.type = WalRecordType::kLeave;
  leave.pid = "p3";
  ASSERT_TRUE(store.Append(leave).ok());
  WalRecord version;
  version.type = WalRecordType::kDocVersion;
  version.doc_time_ms = 99999;
  ASSERT_TRUE(store.Append(version).ok());
  UserAction click;
  click.type = ActionType::kClick;
  click.target = 3;
  WalRecord action;
  action.type = WalRecordType::kAction;
  action.pid = "p7";
  action.action = click;
  ASSERT_TRUE(store.Append(action).ok());

  auto loaded =
      LoadSession(store.CheckpointPath(), store.WalPath(), &counters);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const AgentStateExport& state = loaded->checkpoint.state;
  ASSERT_EQ(state.participants.size(), 2u);  // p1 kept, p3 left, p7 joined
  EXPECT_EQ(state.participants[0].pid, "p1");
  EXPECT_EQ(state.participants[0].last_seq, 30u);
  EXPECT_EQ(state.participants[1].pid, "p7");
  EXPECT_EQ(state.participants[1].last_seq, 21u);
  // The pid allocator stays ahead of every pid that ever joined.
  EXPECT_GE(state.next_pid, 8u);
  // Post-checkpoint document versions have no durable bytes: counted lost,
  // the checkpointed document (and its doc_time) is what restores.
  EXPECT_EQ(loaded->doc_versions_lost, 1u);
  EXPECT_EQ(state.doc_time_ms, 9001);
  // Audit records observed, never replayed.
  EXPECT_EQ(loaded->actions_logged, 1u);
}

// ------------------------------------------------ crash-point aftermaths ---

struct CrashCase {
  CrashPoint point;
  // After recovery: does p9's post-checkpoint seq advance survive?
  bool seq_survives;
  // Does recovery flag a discarded (torn) tail?
  bool tail_discarded;
};

class CrashPointTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashPointTest, RecoveryMatchesTheDefinedAftermath) {
  const CrashCase& c = GetParam();
  PersistOptions options;
  options.dir = MakePersistDir(std::string("crash_") +
                               CrashPointName(c.point));
  PersistCounters counters;
  ProcessFaultInjector faults;
  SessionStore store("alpha", options, &counters, &faults);
  ASSERT_TRUE(store.WriteCheckpoint(MakeCheckpoint()).ok());

  // One durable record before the crash window, then arm and hit the site.
  WalRecord seq;
  seq.type = WalRecordType::kSeq;
  seq.pid = "p1";
  seq.seq = 18;
  ASSERT_TRUE(store.Append(seq).ok());
  faults.Arm(CrashPlan{c.point, 0, ""});
  seq.pid = "p9";
  seq.seq = 44;
  if (c.point == CrashPoint::kTornCheckpointTmp ||
      c.point == CrashPoint::kTornCheckpointSwap) {
    ASSERT_TRUE(store.Append(seq).ok());
    (void)store.WriteCheckpoint(MakeCheckpoint());
  } else {
    (void)store.Append(seq);
  }
  EXPECT_TRUE(faults.crashed());
  // The dead process writes nothing more.
  WalRecord after;
  after.type = WalRecordType::kSeq;
  after.pid = "p1";
  after.seq = 100;
  ASSERT_TRUE(store.Append(after).ok());

  auto loaded =
      LoadSession(store.CheckpointPath(), store.WalPath(), &counters);
  if (c.point == CrashPoint::kTornCheckpointSwap) {
    // The worst defined crash: the old checkpoint was overwritten by a torn
    // one. Recovery rejects the session as a unit — and only the session.
    EXPECT_FALSE(loaded.ok());
    EXPECT_EQ(counters.checkpoints_rejected, 1u);
    return;
  }
  ASSERT_TRUE(loaded.ok()) << CrashPointName(c.point) << ": "
                           << loaded.status();
  EXPECT_EQ(loaded->wal_tail_discarded, c.tail_discarded)
      << CrashPointName(c.point);
  const AgentStateExport& state = loaded->checkpoint.state;
  const ParticipantExport* p9 = nullptr;
  for (const ParticipantExport& participant : state.participants) {
    if (participant.pid == "p9") {
      p9 = &participant;
    }
  }
  EXPECT_EQ(p9 != nullptr && p9->last_seq == 44, c.seq_survives)
      << CrashPointName(c.point);
  // The pre-crash record is durable in every aftermath.
  EXPECT_EQ(state.participants[0].pid, "p1");
  EXPECT_EQ(state.participants[0].last_seq, 18u);
  // Nothing after the kill instant reached disk.
  EXPECT_NE(state.participants[0].last_seq, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCrashPoints, CrashPointTest,
    ::testing::Values(
        // Durable append, lost ack: the record survives.
        CrashCase{CrashPoint::kAfterWalAppend, true, false},
        // Buffered, never flushed: the record is simply gone, file is clean.
        CrashCase{CrashPoint::kBeforeWalFlush, false, false},
        // Died mid-frame: half the record on disk, recovery cuts the tail.
        CrashCase{CrashPoint::kTornWalFrame, false, true},
        // Flush cut at an arbitrary byte: prefix replays, tail cut.
        CrashCase{CrashPoint::kPartialFlush, false, true},
        // Torn staging file: previous checkpoint + full WAL intact.
        CrashCase{CrashPoint::kTornCheckpointTmp, true, false},
        // Torn in-place swap: checkpoint rejected (asserted separately).
        CrashCase{CrashPoint::kTornCheckpointSwap, false, false}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      return std::string(CrashPointName(info.param.point));
    });

TEST(CrashPointTest, SessionFilterOnlyCountsTheTargetSession) {
  PersistOptions options;
  options.dir = MakePersistDir("filter");
  PersistCounters counters;
  ProcessFaultInjector faults;
  faults.Arm(CrashPlan{CrashPoint::kAfterWalAppend, 0, "beta"});
  SessionStore alpha("alpha", options, &counters, &faults);
  SessionStore beta("beta", options, &counters, &faults);
  ASSERT_TRUE(alpha.WriteCheckpoint(MakeCheckpoint()).ok());
  WalRecord seq;
  seq.type = WalRecordType::kSeq;
  seq.pid = "p1";
  seq.seq = 1;
  ASSERT_TRUE(alpha.Append(seq).ok());
  EXPECT_FALSE(faults.crashed());  // alpha's stream never matched
  ASSERT_TRUE(beta.Append(seq).ok());
  EXPECT_TRUE(faults.crashed());
  EXPECT_EQ(faults.metrics().crashes, 1u);
}

}  // namespace
}  // namespace persist
}  // namespace rcb
