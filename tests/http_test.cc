// Unit tests for the HTTP substrate: URLs (incl. RFC 3986 resolution),
// headers, messages, the incremental parser, forms, and cookies.
#include <gtest/gtest.h>

#include "src/http/cookie.h"
#include "src/http/form.h"
#include "src/http/http_parser.h"
#include "src/http/message.h"
#include "src/http/url.h"

namespace rcb {
namespace {

// ------------------------------------------------------------------- URL --

TEST(UrlTest, ParseBasic) {
  auto url = Url::Parse("http://www.example.com/a/b?x=1#frag");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->scheme(), "http");
  EXPECT_EQ(url->host(), "www.example.com");
  EXPECT_EQ(url->port(), 80);
  EXPECT_EQ(url->path(), "/a/b");
  EXPECT_EQ(url->query(), "x=1");
  EXPECT_EQ(url->fragment(), "frag");
}

TEST(UrlTest, ParsePortAndHttps) {
  auto url = Url::Parse("https://host:8443/p");
  ASSERT_TRUE(url.ok());
  EXPECT_TRUE(url->is_https());
  EXPECT_EQ(url->port(), 8443);
  EXPECT_FALSE(url->IsDefaultPort());
  EXPECT_EQ(url->Authority(), "host:8443");

  auto default_port = Url::Parse("https://host/");
  ASSERT_TRUE(default_port.ok());
  EXPECT_EQ(default_port->port(), 443);
  EXPECT_TRUE(default_port->IsDefaultPort());
  EXPECT_EQ(default_port->Authority(), "host");
}

TEST(UrlTest, ParseHostOnly) {
  auto url = Url::Parse("http://example.com");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->path(), "/");
  EXPECT_EQ(url->ToString(), "http://example.com/");
}

TEST(UrlTest, HostCaseNormalized) {
  auto url = Url::Parse("HTTP://ExAmPlE.CoM/Path");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->host(), "example.com");
  EXPECT_EQ(url->path(), "/Path");  // path case preserved
}

TEST(UrlTest, ParseRejectsBadInput) {
  EXPECT_FALSE(Url::Parse("").ok());
  EXPECT_FALSE(Url::Parse("not a url").ok());
  EXPECT_FALSE(Url::Parse("ftp://host/").ok());
  EXPECT_FALSE(Url::Parse("http://").ok());
  EXPECT_FALSE(Url::Parse("http://host:0/").ok());
  EXPECT_FALSE(Url::Parse("http://host:99999/").ok());
  EXPECT_FALSE(Url::Parse("http://host:abc/").ok());
}

TEST(UrlTest, MakeNormalizesPath) {
  Url url = Url::Make("http", "h", 3000, "obj/1");
  EXPECT_EQ(url.path(), "/obj/1");
  Url empty = Url::Make("http", "h", 80, "");
  EXPECT_EQ(empty.path(), "/");
}

TEST(UrlTest, SameOrigin) {
  Url a = Url::Make("http", "h", 80, "/x");
  Url b = Url::Make("http", "h", 80, "/y");
  Url c = Url::Make("http", "h", 81, "/x");
  EXPECT_TRUE(a.SameOrigin(b));
  EXPECT_FALSE(a.SameOrigin(c));
}

TEST(UrlTest, RemoveDotSegments) {
  EXPECT_EQ(RemoveDotSegments("/a/b/c/./../../g"), "/a/g");
  EXPECT_EQ(RemoveDotSegments("/./"), "/");
  EXPECT_EQ(RemoveDotSegments("/../x"), "/x");
  EXPECT_EQ(RemoveDotSegments("/a/.."), "/");
  EXPECT_EQ(RemoveDotSegments("/a/b/"), "/a/b/");
  EXPECT_EQ(RemoveDotSegments("/a//b"), "/a/b");
  EXPECT_EQ(RemoveDotSegments(""), "/");
}

// RFC 3986 §5.4 reference resolution examples (base from the RFC).
class UrlResolveTest
    : public ::testing::TestWithParam<std::pair<std::string, std::string>> {};

TEST_P(UrlResolveTest, Rfc3986Examples) {
  auto base = Url::Parse("http://a/b/c/d;p?q");
  ASSERT_TRUE(base.ok());
  const auto& [reference, expected] = GetParam();
  auto resolved = base->Resolve(reference);
  ASSERT_TRUE(resolved.ok()) << reference;
  EXPECT_EQ(resolved->ToStringWithFragment(), expected) << "ref: " << reference;
}

INSTANTIATE_TEST_SUITE_P(
    Rfc3986, UrlResolveTest,
    ::testing::Values(
        std::pair<std::string, std::string>{"g", "http://a/b/c/g"},
        std::pair<std::string, std::string>{"./g", "http://a/b/c/g"},
        std::pair<std::string, std::string>{"g/", "http://a/b/c/g/"},
        std::pair<std::string, std::string>{"/g", "http://a/g"},
        std::pair<std::string, std::string>{"//g", "http://g/"},
        std::pair<std::string, std::string>{"?y", "http://a/b/c/d;p?y"},
        std::pair<std::string, std::string>{"g?y", "http://a/b/c/g?y"},
        std::pair<std::string, std::string>{"#s", "http://a/b/c/d;p?q#s"},
        std::pair<std::string, std::string>{"g#s", "http://a/b/c/g#s"},
        std::pair<std::string, std::string>{";x", "http://a/b/c/;x"},
        std::pair<std::string, std::string>{".", "http://a/b/c/"},
        std::pair<std::string, std::string>{"..", "http://a/b/"},
        std::pair<std::string, std::string>{"../g", "http://a/b/g"},
        std::pair<std::string, std::string>{"../..", "http://a/"},
        std::pair<std::string, std::string>{"../../g", "http://a/g"},
        std::pair<std::string, std::string>{"../../../g", "http://a/g"},
        std::pair<std::string, std::string>{"g/../h", "http://a/b/c/h"},
        std::pair<std::string, std::string>{"g;x=1/./y", "http://a/b/c/g;x=1/y"}));

TEST(UrlTest, ResolveAbsoluteReference) {
  auto base = Url::Parse("http://a/b");
  auto resolved = base->Resolve("https://other:444/x?q=1");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->ToString(), "https://other:444/x?q=1");
}

TEST(UrlTest, ResolveEmptyReferenceIsBase) {
  auto base = Url::Parse("http://a/b/c?q");
  auto resolved = base->Resolve("");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->ToString(), "http://a/b/c?q");
}

TEST(UrlTest, IsAbsoluteUrl) {
  EXPECT_TRUE(IsAbsoluteUrl("http://x/"));
  EXPECT_TRUE(IsAbsoluteUrl("https://x/"));
  EXPECT_FALSE(IsAbsoluteUrl("/path"));
  EXPECT_FALSE(IsAbsoluteUrl("path"));
  EXPECT_FALSE(IsAbsoluteUrl("a:b"));  // path segment with colon, no "//"
  EXPECT_FALSE(IsAbsoluteUrl("://x"));
}

// --------------------------------------------------------------- Headers --

TEST(HeadersTest, SetGetCaseInsensitive) {
  Headers headers;
  headers.Set("Content-Type", "text/html");
  EXPECT_EQ(headers.Get("content-type").value(), "text/html");
  EXPECT_TRUE(headers.Has("CONTENT-TYPE"));
  EXPECT_FALSE(headers.Has("content-length"));
}

TEST(HeadersTest, SetReplacesAddAppends) {
  Headers headers;
  headers.Add("Set-Cookie", "a=1");
  headers.Add("Set-Cookie", "b=2");
  EXPECT_EQ(headers.GetAll("set-cookie").size(), 2u);
  headers.Set("Set-Cookie", "c=3");
  EXPECT_EQ(headers.GetAll("set-cookie"), std::vector<std::string>{"c=3"});
}

TEST(HeadersTest, RemoveAndSerialize) {
  Headers headers;
  headers.Set("A", "1");
  headers.Set("B", "2");
  headers.Remove("a");
  EXPECT_EQ(headers.Serialize(), "B: 2\r\n");
}

// -------------------------------------------------------------- Messages --

TEST(HttpMessageTest, RequestSerializeBasics) {
  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.target = "/x?q=1";
  request.headers.Set("Host", "h");
  std::string wire = request.Serialize();
  EXPECT_TRUE(wire.starts_with("GET /x?q=1 HTTP/1.1\r\nHost: h\r\n"));
  EXPECT_TRUE(wire.ends_with("\r\n\r\n"));
}

TEST(HttpMessageTest, PostAlwaysHasContentLength) {
  HttpRequest request;
  request.method = HttpMethod::kPost;
  request.target = "/";
  request.body = "abc";
  std::string wire = request.Serialize();
  EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
}

TEST(HttpMessageTest, QueryHelpers) {
  HttpRequest request;
  request.target = "/p?a=1&b=two%20words";
  EXPECT_EQ(request.Path(), "/p");
  EXPECT_EQ(request.QueryString(), "a=1&b=two%20words");
  auto params = request.QueryParams();
  EXPECT_EQ(params["a"], "1");
  EXPECT_EQ(params["b"], "two words");
}

TEST(HttpMessageTest, ResponseHelpers) {
  HttpResponse ok = HttpResponse::Ok("text/html", "body");
  EXPECT_EQ(ok.status_code, 200);
  EXPECT_EQ(ok.headers.Get("Content-Type").value(), "text/html");
  EXPECT_EQ(HttpResponse::NotFound().status_code, 404);
  EXPECT_EQ(HttpResponse::BadRequest().status_code, 400);
  EXPECT_EQ(HttpResponse::Forbidden().status_code, 403);
  EXPECT_EQ(HttpResponse::InternalError().status_code, 500);
}

// ---------------------------------------------------------------- Parser --

TEST(HttpParserTest, ParseSimpleRequest) {
  auto request = ParseHttpRequest("GET / HTTP/1.1\r\nHost: h\r\n\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, HttpMethod::kGet);
  EXPECT_EQ(request->target, "/");
  EXPECT_EQ(request->headers.Get("Host").value(), "h");
}

TEST(HttpParserTest, ParsePostWithBody) {
  auto request = ParseHttpRequest(
      "POST /poll HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->body, "hello");
}

TEST(HttpParserTest, RequestRoundTrip) {
  HttpRequest request;
  request.method = HttpMethod::kPost;
  request.target = "/a?b=c";
  request.headers.Set("Host", "x");
  request.body = "payload bytes";
  auto parsed = ParseHttpRequest(request.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method, HttpMethod::kPost);
  EXPECT_EQ(parsed->target, "/a?b=c");
  EXPECT_EQ(parsed->body, "payload bytes");
}

TEST(HttpParserTest, ResponseRoundTrip) {
  HttpResponse response = HttpResponse::Ok("application/xml", "<x/>");
  auto parsed = ParseHttpResponse(response.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status_code, 200);
  EXPECT_EQ(parsed->body, "<x/>");
  EXPECT_EQ(parsed->headers.Get("Content-Type").value(), "application/xml");
}

TEST(HttpParserTest, IncrementalByteByByte) {
  std::string wire = "POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  HttpRequestParser parser;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    auto result = parser.Feed(wire.substr(i, 1));
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->has_value()) << "completed early at byte " << i;
  }
  auto result = parser.Feed(wire.substr(wire.size() - 1));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->has_value());
  EXPECT_EQ((*result)->body, "abcd");
}

TEST(HttpParserTest, PipelinedRequests) {
  std::string two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  HttpRequestParser parser;
  auto first = parser.Feed(two);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((*first)->target, "/a");
  auto second = parser.Feed("");
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->has_value());
  EXPECT_EQ((*second)->target, "/b");
}

TEST(HttpParserTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseHttpRequest("BOGUS / HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(ParseHttpRequest("GET / HTTP/2.0\r\n\r\n").ok());
  EXPECT_FALSE(ParseHttpRequest("GET HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(ParseHttpRequest("GET nopath HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(
      ParseHttpRequest("GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n").ok());
  EXPECT_FALSE(
      ParseHttpRequest("GET / HTTP/1.1\r\nContent-Length: zz\r\n\r\n").ok());
}

TEST(HttpParserTest, RejectsOversizedContentLength) {
  EXPECT_FALSE(
      ParseHttpRequest(
          "POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n")
          .ok());
}

TEST(HttpParserTest, ResponseStatusLineParsing) {
  auto response = ParseHttpResponse("HTTP/1.1 404 Not Found\r\n\r\n");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 404);
  EXPECT_EQ(response->reason, "Not Found");
  EXPECT_FALSE(ParseHttpResponse("HTTP/1.1 99 Bad\r\n\r\n").ok());
  EXPECT_FALSE(ParseHttpResponse("NOTHTTP 200 OK\r\n\r\n").ok());
}

TEST(HttpParserTest, AbsoluteFormTargetAccepted) {
  auto request =
      ParseHttpRequest("GET http://h/p HTTP/1.1\r\nHost: h\r\n\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->target, "http://h/p");
}

// ------------------------------------------------------------------ Form --

TEST(FormTest, EncodeDecodeRoundTrip) {
  std::vector<std::pair<std::string, std::string>> fields = {
      {"a", "1"}, {"name", "two words & more"}, {"empty", ""}, {"a", "dup"}};
  std::string encoded = EncodeFormUrlEncoded(fields);
  auto decoded = ParseFormUrlEncodedOrdered(encoded);
  EXPECT_EQ(decoded, fields);
}

TEST(FormTest, MapDecodeLastWins) {
  auto decoded = ParseFormUrlEncoded("a=1&a=2&b=x");
  EXPECT_EQ(decoded["a"], "2");
  EXPECT_EQ(decoded["b"], "x");
}

TEST(FormTest, PlusDecodesToSpace) {
  auto decoded = ParseFormUrlEncoded("q=hello+world");
  EXPECT_EQ(decoded["q"], "hello world");
}

TEST(FormTest, KeyWithoutValue) {
  auto decoded = ParseFormUrlEncoded("flag&x=1");
  EXPECT_EQ(decoded.count("flag"), 1u);
  EXPECT_EQ(decoded["flag"], "");
}

TEST(FormTest, EmptyBody) {
  EXPECT_TRUE(ParseFormUrlEncoded("").empty());
  EXPECT_EQ(EncodeFormUrlEncoded(std::map<std::string, std::string>{}), "");
}

// ---------------------------------------------------------------- Cookie --

TEST(CookieTest, SetAndSend) {
  CookieJar jar;
  Url origin = Url::Make("http", "shop.test", 80, "/");
  jar.ApplySetCookie(origin, "session=abc123; Path=/; HttpOnly");
  EXPECT_EQ(jar.Get(origin, "session"), "abc123");
  EXPECT_EQ(jar.CookieHeaderFor(origin), "session=abc123");
}

TEST(CookieTest, PerHostIsolation) {
  CookieJar jar;
  Url a = Url::Make("http", "a.test", 80, "/");
  Url b = Url::Make("http", "b.test", 80, "/");
  jar.ApplySetCookie(a, "x=1");
  EXPECT_EQ(jar.CookieHeaderFor(b), "");
  EXPECT_EQ(jar.CountFor(a), 1u);
  EXPECT_EQ(jar.CountFor(b), 0u);
}

TEST(CookieTest, MultipleCookiesJoined) {
  CookieJar jar;
  Url origin = Url::Make("http", "h", 80, "/");
  jar.ApplySetCookie(origin, "a=1");
  jar.ApplySetCookie(origin, "b=2");
  EXPECT_EQ(jar.CookieHeaderFor(origin), "a=1; b=2");
}

TEST(CookieTest, OverwriteSameName) {
  CookieJar jar;
  Url origin = Url::Make("http", "h", 80, "/");
  jar.ApplySetCookie(origin, "a=1");
  jar.ApplySetCookie(origin, "a=2");
  EXPECT_EQ(jar.Get(origin, "a"), "2");
  EXPECT_EQ(jar.CountFor(origin), 1u);
}

TEST(CookieTest, MalformedDropped) {
  CookieJar jar;
  Url origin = Url::Make("http", "h", 80, "/");
  jar.ApplySetCookie(origin, "=broken");
  jar.ApplySetCookie(origin, "noequals");
  EXPECT_EQ(jar.CountFor(origin), 0u);
}

TEST(CookieTest, Clear) {
  CookieJar jar;
  Url origin = Url::Make("http", "h", 80, "/");
  jar.ApplySetCookie(origin, "a=1");
  jar.Clear();
  EXPECT_EQ(jar.CountFor(origin), 0u);
}

TEST(CookieTest, PathScoping) {
  CookieJar jar;
  Url origin = Url::Make("http", "h", 80, "/");
  jar.ApplySetCookie(origin, "root=1; Path=/");
  jar.ApplySetCookie(origin, "shop=2; Path=/shop");
  EXPECT_EQ(jar.CookieHeaderFor(Url::Make("http", "h", 80, "/other")), "root=1");
  // More specific path listed first (RFC 6265 §5.4).
  EXPECT_EQ(jar.CookieHeaderFor(Url::Make("http", "h", 80, "/shop/cart")),
            "shop=2; root=1");
  EXPECT_EQ(jar.CookieHeaderFor(Url::Make("http", "h", 80, "/shop")),
            "shop=2; root=1");
  // "/shop" must not match "/shopping".
  EXPECT_EQ(jar.CookieHeaderFor(Url::Make("http", "h", 80, "/shopping")),
            "root=1");
}

TEST(CookieTest, SameNameDifferentPathsCoexist) {
  CookieJar jar;
  Url origin = Url::Make("http", "h", 80, "/");
  jar.ApplySetCookie(origin, "x=root; Path=/");
  jar.ApplySetCookie(origin, "x=sub; Path=/sub");
  EXPECT_EQ(jar.CountFor(origin), 2u);
  EXPECT_EQ(jar.CookieHeaderFor(Url::Make("http", "h", 80, "/sub/page")),
            "x=sub; x=root");
}

TEST(CookieTest, MaxAgeExpiry) {
  CookieJar jar;
  Url origin = Url::Make("http", "h", 80, "/");
  SimTime t0 = SimTime::FromMicros(0);
  jar.ApplySetCookie(origin, "session=s; Max-Age=60", t0);
  SimTime before = t0 + Duration::Seconds(59.0);
  SimTime after = t0 + Duration::Seconds(61.0);
  EXPECT_EQ(jar.CookieHeaderFor(origin, before), "session=s");
  EXPECT_EQ(jar.CookieHeaderFor(origin, after), "");
  EXPECT_EQ(jar.CountFor(origin, after), 0u);
}

TEST(CookieTest, MaxAgeZeroDeletes) {
  CookieJar jar;
  Url origin = Url::Make("http", "h", 80, "/");
  jar.ApplySetCookie(origin, "a=1");
  EXPECT_EQ(jar.CountFor(origin), 1u);
  jar.ApplySetCookie(origin, "a=gone; Max-Age=0");
  EXPECT_EQ(jar.CountFor(origin), 0u);
}

TEST(CookieTest, SecureCookieOnlyOverHttps) {
  CookieJar jar;
  Url https_origin = Url::Make("https", "h", 443, "/");
  jar.ApplySetCookie(https_origin, "token=t; Secure");
  EXPECT_EQ(jar.CookieHeaderFor(Url::Make("http", "h", 80, "/")), "");
  EXPECT_EQ(jar.CookieHeaderFor(https_origin), "token=t");
}

TEST(CookieTest, UnknownAttributesIgnored) {
  CookieJar jar;
  Url origin = Url::Make("http", "h", 80, "/");
  jar.ApplySetCookie(origin, "a=1; HttpOnly; SameSite=Lax; Domain=h");
  EXPECT_EQ(jar.CookieHeaderFor(origin), "a=1");
}

}  // namespace
}  // namespace rcb
