// Tests for the observability subsystem (src/obs): histogram bucket math
// and percentile estimation, registry collision rules, Prometheus rendering
// (including the wall-provenance filter), the bounded trace ring, and the
// determinism contract — two identical simulated sessions must render a
// byte-identical sim-only /metrics body.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/core/session.h"
#include "src/net/profiles.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"
#include "src/sites/corpus.h"
#include "src/util/json.h"

namespace rcb {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketsCountInclusiveUpperBounds) {
  Histogram histogram({10, 100, 1000});
  // One value per region: <=10, (10,100], (100,1000], overflow.
  histogram.Record(10);    // boundary value lands in its bucket (inclusive)
  histogram.Record(11);
  histogram.Record(100);
  histogram.Record(1000);
  histogram.Record(1001);  // overflow
  ASSERT_EQ(histogram.bucket_counts().size(), 4u);
  EXPECT_EQ(histogram.bucket_counts()[0], 1u);
  EXPECT_EQ(histogram.bucket_counts()[1], 2u);
  EXPECT_EQ(histogram.bucket_counts()[2], 1u);
  EXPECT_EQ(histogram.bucket_counts()[3], 1u);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 10 + 11 + 100 + 1000 + 1001);
  EXPECT_EQ(histogram.min(), 10);
  EXPECT_EQ(histogram.max(), 1001);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram histogram({10, 100});
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0);
  EXPECT_EQ(histogram.max(), 0);
  EXPECT_EQ(histogram.mean(), 0.0);
  EXPECT_EQ(histogram.Percentile(50.0), 0.0);
  EXPECT_EQ(histogram.p99(), 0.0);
}

TEST(HistogramTest, SingleValuePercentilesCollapseToIt) {
  Histogram histogram(LatencyBoundsUs());
  histogram.Record(777);
  EXPECT_EQ(histogram.p50(), 777.0);
  EXPECT_EQ(histogram.p95(), 777.0);
  EXPECT_EQ(histogram.p99(), 777.0);
}

TEST(HistogramTest, PercentilesClampToObservedRange) {
  Histogram histogram({1000, 2000, 4000});
  for (int64_t v : {1500, 1600, 1700, 1800}) {
    histogram.Record(v);
  }
  // All mass in the (1000, 2000] bucket: every percentile estimate must stay
  // inside the observed [1500, 1800] window, and be monotone in p.
  double p50 = histogram.p50();
  double p99 = histogram.p99();
  EXPECT_GE(p50, 1500.0);
  EXPECT_LE(p99, 1800.0);
  EXPECT_LE(p50, p99);
}

TEST(HistogramTest, PercentileSpreadAcrossBuckets) {
  Histogram histogram({100, 200, 300, 400});
  // 100 values uniform in [1, 400]: p50 near 200, p99 near 400.
  for (int64_t v = 1; v <= 400; v += 4) {
    histogram.Record(v);
  }
  EXPECT_NEAR(histogram.p50(), 200.0, 60.0);
  EXPECT_GT(histogram.p99(), 300.0);
  EXPECT_LE(histogram.p99(), 400.0);
}

TEST(HistogramTest, ExponentialBoundsShape) {
  std::vector<int64_t> bounds = Histogram::ExponentialBounds(10, 2.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds[0], 10);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
  EXPECT_EQ(bounds[4], 160);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, ValidAndInvalidNames) {
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("rcb_agent_polls_total"));
  EXPECT_TRUE(MetricsRegistry::IsValidMetricName("a:b_c9"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName(""));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("9starts_with_digit"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("has-dash"));
  EXPECT_FALSE(MetricsRegistry::IsValidMetricName("has space"));
}

TEST(MetricsRegistryTest, DuplicateRegistrationRejected) {
  MetricsRegistry registry;
  Counter* first = registry.AddCounter("dup", "help", Provenance::kSim);
  ASSERT_NE(first, nullptr);
  // Same (name, labels) again: rejected.
  EXPECT_EQ(registry.AddCounter("dup", "help", Provenance::kSim), nullptr);
  // Same name as another kind / provenance / help: rejected.
  EXPECT_EQ(registry.AddGauge("dup", "help", Provenance::kSim), nullptr);
  EXPECT_EQ(registry.AddCounter("dup", "help", Provenance::kWall), nullptr);
  EXPECT_EQ(registry.AddCounter("dup", "other help", Provenance::kSim),
            nullptr);
  // Same family, new label set: fine.
  EXPECT_NE(registry.AddCounter("dup", "help", Provenance::kSim,
                                "stage=\"x\""),
            nullptr);
  EXPECT_EQ(registry.AddCounter("bad name", "help", Provenance::kSim),
            nullptr);
  EXPECT_EQ(registry.family_count(), 1u);
}

TEST(MetricsRegistryTest, FindHonorsKindAndLabels) {
  MetricsRegistry registry;
  Counter* counter =
      registry.AddCounter("c", "help", Provenance::kSim, "k=\"v\"");
  counter->Add(3);
  EXPECT_EQ(registry.FindCounter("c", "k=\"v\"")->value(), 3u);
  EXPECT_EQ(registry.FindCounter("c"), nullptr);       // label mismatch
  EXPECT_EQ(registry.FindGauge("c", "k=\"v\""), nullptr);  // kind mismatch
}

TEST(MetricsRegistryTest, CallbackInstrumentsReadSourceAtRenderTime) {
  MetricsRegistry registry;
  uint64_t source = 0;
  registry.AddCallbackCounter("cb", "help", Provenance::kSim,
                              [&source] { return source; });
  EXPECT_NE(registry.RenderPrometheus().find("cb 0\n"), std::string::npos);
  source = 42;
  EXPECT_NE(registry.RenderPrometheus().find("cb 42\n"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusRenderFormat) {
  MetricsRegistry registry;
  registry.AddCounter("requests_total", "Requests.", Provenance::kSim)
      ->Add(7);
  registry.AddGauge("level", "Level.", Provenance::kSim)->Set(2.5);
  Histogram* histogram = registry.AddHistogram(
      "latency_us", "Latency.", Provenance::kSim, {10, 100}, "op=\"x\"");
  histogram->Record(5);
  histogram->Record(50);
  histogram->Record(500);

  std::string body = registry.RenderPrometheus();
  EXPECT_NE(body.find("# HELP requests_total Requests.\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(body.find("requests_total 7\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE level gauge\n"), std::string::npos);
  EXPECT_NE(body.find("level 2.5\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE latency_us histogram\n"), std::string::npos);
  EXPECT_NE(body.find("latency_us_bucket{op=\"x\",le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(body.find("latency_us_bucket{op=\"x\",le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(body.find("latency_us_bucket{op=\"x\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(body.find("latency_us_sum{op=\"x\"} 555\n"), std::string::npos);
  EXPECT_NE(body.find("latency_us_count{op=\"x\"} 3\n"), std::string::npos);
}

// Structural conformance over the whole exposition, not just pinned lines:
// for every histogram family, bucket counts must be cumulative
// non-decreasing in bound order, end with le="+Inf", and the +Inf bucket
// must equal the family's _count; every family must also carry _sum.
TEST(MetricsRegistryTest, PrometheusHistogramConformance) {
  MetricsRegistry registry;
  Histogram* plain = registry.AddHistogram("plain_us", "Plain.",
                                           Provenance::kSim, {10, 100, 1000});
  for (int64_t value : {5, 10, 11, 150, 99999}) {
    plain->Record(value);
  }
  Histogram* labeled = registry.AddHistogram(
      "labeled_us", "Labeled.", Provenance::kSim, {50, 500}, "op=\"poll\"");
  for (int64_t value : {1, 499, 501, 502}) {
    labeled->Record(value);
  }
  registry.AddCounter("noise_total", "Not a histogram.", Provenance::kSim)
      ->Add(3);

  struct Family {
    std::vector<std::pair<std::string, double>> buckets;  // (le, count)
    double count = -1;
    double sum = -1;
  };
  std::map<std::string, Family> families;  // keyed by name + non-le labels
  std::string body = registry.RenderPrometheus();
  size_t start = 0;
  while (start < body.size()) {
    size_t end = body.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    double value = std::strtod(line.c_str() + space + 1, nullptr);
    std::string name = series;
    std::string labels;
    if (size_t brace = series.find('{'); brace != std::string::npos) {
      name = series.substr(0, brace);
      ASSERT_EQ(series.back(), '}') << line;
      labels = series.substr(brace + 1, series.size() - brace - 2);
    }
    auto strip_suffix = [&name](const char* suffix) {
      std::string_view view(suffix);
      if (name.size() > view.size() &&
          name.compare(name.size() - view.size(), view.size(), view) == 0) {
        name.resize(name.size() - view.size());
        return true;
      }
      return false;
    };
    // Splits the label block, pulling le out and normalizing the rest (the
    // family key), so bucket and _count/_sum lines key identically.
    std::string le;
    std::string rest;
    size_t pos = 0;
    while (pos < labels.size()) {
      size_t eq = labels.find('=', pos);
      ASSERT_NE(eq, std::string::npos) << line;
      size_t open = labels.find('"', eq);
      size_t close = labels.find('"', open + 1);
      ASSERT_NE(close, std::string::npos) << line;
      std::string key = labels.substr(pos, eq - pos);
      std::string val = labels.substr(open + 1, close - open - 1);
      if (key == "le") {
        le = val;
      } else {
        if (!rest.empty()) {
          rest += ",";
        }
        rest += key + "=" + val;
      }
      pos = close + 1;
      if (pos < labels.size() && labels[pos] == ',') {
        ++pos;
      }
    }
    if (strip_suffix("_bucket")) {
      ASSERT_FALSE(le.empty()) << "bucket line without le label: " << line;
      families[name + "{" + rest + "}"].buckets.emplace_back(le, value);
    } else if (strip_suffix("_count")) {
      families[name + "{" + rest + "}"].count = value;
    } else if (strip_suffix("_sum")) {
      families[name + "{" + rest + "}"].sum = value;
    }
  }

  ASSERT_EQ(families.size(), 2u) << "expected exactly the two histograms";
  for (const auto& [key, family] : families) {
    ASSERT_GE(family.buckets.size(), 2u) << key;
    // Render order is bound-ascending; counts must be cumulative.
    for (size_t i = 1; i < family.buckets.size(); ++i) {
      EXPECT_GE(family.buckets[i].second, family.buckets[i - 1].second)
          << key << " le=" << family.buckets[i].first;
    }
    EXPECT_EQ(family.buckets.back().first, "+Inf") << key;
    EXPECT_GE(family.count, 0) << key << " missing _count";
    EXPECT_GE(family.sum, 0) << key << " missing _sum";
    EXPECT_EQ(family.buckets.back().second, family.count)
        << key << " +Inf bucket must equal _count";
  }
  EXPECT_EQ(families.count("plain_us{}"), 1u);
  EXPECT_EQ(families.count("labeled_us{op=poll}"), 1u);
  EXPECT_EQ(families["plain_us{}"].count, 5);
  EXPECT_EQ(families["labeled_us{op=poll}"].sum, 1 + 499 + 501 + 502);
}

TEST(MetricsRegistryTest, SimViewOmitsWallFamilies) {
  MetricsRegistry registry;
  registry.AddCounter("sim_metric", "Sim.", Provenance::kSim)->Add(1);
  registry.AddCounter("wall_metric", "Wall.", Provenance::kWall)->Add(1);
  std::string all = registry.RenderPrometheus();
  EXPECT_NE(all.find("wall_metric"), std::string::npos);
  std::string sim_only = registry.RenderPrometheus({.include_wall = false});
  EXPECT_NE(sim_only.find("sim_metric"), std::string::npos);
  EXPECT_EQ(sim_only.find("wall_metric"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

TEST(TraceLogTest, RetainsNewestAndCountsDropped) {
  TraceLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Append("span" + std::to_string(i), Provenance::kSim, i * 100, 1);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_appended(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  std::vector<TraceEvent> events = log.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest window over the last four appends, seq monotone.
  EXPECT_EQ(events.front().name, "span6");
  EXPECT_EQ(events.back().name, "span9");
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(events.back().sim_start_us, 900);
}

TEST(TraceLogTest, UnderCapacityKeepsEverything) {
  TraceLog log(8);
  log.Append("a", Provenance::kWall, 0, 10);
  log.Append("b", Provenance::kSim, 5, 20);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 0u);
  std::vector<TraceEvent> events = log.Events();
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[0].provenance, Provenance::kWall);
  EXPECT_EQ(events[1].duration_us, 20);
}

TEST(TraceLogTest, WallSpanRecordsIntoLogAndHistogram) {
  TraceLog log(8);
  Histogram histogram(LatencyBoundsUs());
  {
    WallSpan span(&log, "unit.work", /*sim_now_us=*/1234, &histogram);
  }
  ASSERT_EQ(log.size(), 1u);
  std::vector<TraceEvent> events = log.Events();
  EXPECT_EQ(events[0].name, "unit.work");
  EXPECT_EQ(events[0].provenance, Provenance::kWall);
  EXPECT_EQ(events[0].sim_start_us, 1234);
  EXPECT_GE(events[0].duration_us, 0);
  EXPECT_EQ(histogram.count(), 1u);
}

// ---------------------------------------------------------------------------
// Causal spans (DESIGN.md §11)
// ---------------------------------------------------------------------------

TEST(TraceLogTest, CausalAppendParentsChildrenDeterministically) {
  TraceLog log(8);
  TraceContext root_ctx{"p1-7", 0};
  uint64_t parent = log.ReserveSpanId();
  EXPECT_EQ(parent, 1u);
  TraceContext child_ctx{"p1-7", parent};
  uint64_t child =
      log.Append("agent.generate.clone", Provenance::kWall, 100, 5, child_ctx,
                 {{"ts", "3"}});
  EXPECT_EQ(child, 2u);
  uint64_t root = log.Append("agent.generate", Provenance::kWall, 100, 9,
                             root_ctx, {}, parent);
  EXPECT_EQ(root, parent);

  std::vector<TraceEvent> events = log.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, "p1-7");
  EXPECT_EQ(events[0].span_id, 2u);
  EXPECT_EQ(events[0].parent_span_id, parent);
  ASSERT_EQ(events[0].attrs.size(), 1u);
  EXPECT_EQ(events[0].attrs[0].first, "ts");
  EXPECT_EQ(events[1].span_id, parent);
  EXPECT_EQ(events[1].parent_span_id, 0u);
}

TEST(TraceLogTest, InactiveContextDegradesToFlatSpan) {
  TraceLog log(8);
  TraceContext inactive;  // empty trace id
  EXPECT_EQ(log.Append("x", Provenance::kSim, 0, 1, inactive, {{"k", "v"}}),
            0u);
  std::vector<TraceEvent> events = log.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].trace_id.empty());
  EXPECT_EQ(events[0].span_id, 0u);
  EXPECT_TRUE(events[0].attrs.empty());
}

TEST(TraceLogTest, WraparoundKeepsCausalFieldsAndMonotoneIds) {
  TraceLog log(4);
  TraceContext ctx{"p1-1", 0};
  for (int i = 0; i < 10; ++i) {
    log.Append("span" + std::to_string(i), Provenance::kSim, i * 100, 1, ctx);
  }
  EXPECT_EQ(log.dropped(), 6u);
  std::vector<TraceEvent> events = log.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].trace_id, "p1-1");
    // Span ids are 1-based and monotone with the appends: the retained
    // window holds appends 6..9, i.e. span ids 7..10.
    EXPECT_EQ(events[i].span_id, 7 + i);
    if (i > 0) {
      EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    }
  }
}

TEST(TraceLogTest, WallSpanWithContextDoubleSinksAndParents) {
  TraceLog log(8);
  Histogram histogram(LatencyBoundsUs());
  TraceContext ctx{"p2-3", 0};
  {
    WallSpan span(&log, "snippet.apply", /*sim_now_us=*/500, &histogram, &ctx,
                  {{"ts", "4"}});
    EXPECT_EQ(span.span_id(), 1u);
    // A child created while the parent is open parents to the reserved id.
    TraceContext stage_ctx{"p2-3", span.span_id()};
    log.Append("snippet.apply.parse", Provenance::kWall, 500, 2, stage_ctx);
  }
  EXPECT_EQ(histogram.count(), 1u);
  std::vector<TraceEvent> events = log.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "snippet.apply.parse");
  EXPECT_EQ(events[0].parent_span_id, 1u);
  EXPECT_EQ(events[1].name, "snippet.apply");
  EXPECT_EQ(events[1].span_id, 1u);
  ASSERT_EQ(events[1].attrs.size(), 1u);
}

TEST(TraceLogTest, WallSpanWithoutContextStaysFlat) {
  TraceLog log(8);
  TraceContext inactive;
  {
    WallSpan span(&log, "unit.work", 0, nullptr, &inactive);
    EXPECT_EQ(span.span_id(), 0u);
  }
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE(log.Events()[0].trace_id.empty());
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(TraceExportTest, JsonLineRoundTripsThroughParser) {
  TraceLog log(8);
  TraceContext ctx{"p1-2", 0};
  uint64_t id = log.Append("snippet.poll_rtt", Provenance::kSim, 1000, 250,
                           ctx, {{"status", "200"}, {"bytes", "812"}});
  std::string line = TraceEventJsonLine(log.Events()[0], "snippet-p1");
  auto parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("type")->string_value, "span");
  EXPECT_EQ(parsed->Find("component")->string_value, "snippet-p1");
  EXPECT_EQ(parsed->Find("name")->string_value, "snippet.poll_rtt");
  EXPECT_EQ(parsed->Find("prov")->string_value, "sim");
  EXPECT_EQ(parsed->Find("sim_start_us")->number_value, 1000);
  EXPECT_EQ(parsed->Find("duration_us")->number_value, 250);
  EXPECT_EQ(parsed->Find("trace")->string_value, "p1-2");
  EXPECT_EQ(parsed->Find("span")->number_value, static_cast<double>(id));
  EXPECT_EQ(parsed->Find("parent")->number_value, 0);
  const JsonValue* attrs = parsed->Find("attrs");
  ASSERT_NE(attrs, nullptr);
  EXPECT_EQ(attrs->Find("status")->string_value, "200");
  EXPECT_EQ(attrs->Find("bytes")->string_value, "812");
}

TEST(TraceExportTest, FlatSpanLineOmitsCausalKeys) {
  TraceLog log(8);
  log.Append("agent.request", Provenance::kWall, 10, 3);
  std::string line = TraceEventJsonLine(log.Events()[0], "agent");
  auto parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("trace"), nullptr);
  EXPECT_EQ(parsed->Find("span"), nullptr);
  EXPECT_EQ(parsed->Find("attrs"), nullptr);
}

TEST(TraceExportTest, ChromeTraceIsValidJsonWithMetadata) {
  TraceLog log(8);
  TraceContext ctx{"p1-1", 0};
  log.Append("snippet.apply", Provenance::kWall, 100, 7, ctx);
  log.Append("flat.span", Provenance::kSim, 200, 3);
  std::string doc = ExportChromeTrace({{"snippet-p1", log.Events()}});
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_array());
  // process_name metadata, thread_name for the trace id, two X events.
  ASSERT_EQ(parsed->items.size(), 4u);
  EXPECT_EQ(parsed->items[0].Find("ph")->string_value, "M");
  EXPECT_EQ(parsed->items[0].Find("name")->string_value, "process_name");
  EXPECT_EQ(parsed->items[1].Find("name")->string_value, "thread_name");
  EXPECT_EQ(parsed->items[2].Find("ph")->string_value, "X");
  EXPECT_EQ(parsed->items[2].Find("name")->string_value, "snippet.apply");
  // The context-free span shares tid 0.
  EXPECT_EQ(parsed->items[3].Find("tid")->number_value, 0);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, CountsWithoutDirAndNeverWrites) {
  TraceLog log(8);
  MetricsRegistry registry;
  FlightRecorder recorder(&log, &registry, {});
  EXPECT_FALSE(recorder.dumping_enabled());
  recorder.Trigger("resync", 1000);
  recorder.Trigger("resync", 2000);
  recorder.Trigger("overload", 3000);
  EXPECT_EQ(recorder.total_triggers(), 3u);
  EXPECT_EQ(recorder.triggers("resync"), 2u);
  EXPECT_EQ(recorder.triggers("overload"), 1u);
  EXPECT_EQ(recorder.triggers("never"), 0u);
  EXPECT_EQ(recorder.dumps_written(), 0u);
  EXPECT_TRUE(recorder.last_dump_path().empty());
}

TEST(FlightRecorderTest, DumpsJsonlArtifactAndHonorsCap) {
  TraceLog log(8);
  TraceContext ctx{"p1-4", 0};
  log.Append("snippet.poll_rtt", Provenance::kSim, 100, 40, ctx);
  MetricsRegistry registry;
  Counter* polls = registry.AddCounter("rcb_test_polls", "help",
                                       Provenance::kSim);
  polls->Add();
  FlightRecorder::Options options;
  options.dir = ::testing::TempDir();
  options.component = "snippet-p1";
  options.max_dumps = 1;
  FlightRecorder recorder(&log, &registry, options);
  recorder.Trigger("poll_timeout", 5000);
  recorder.Trigger("poll_timeout", 6000);  // over the cap: counted, not dumped
  EXPECT_EQ(recorder.total_triggers(), 2u);
  EXPECT_EQ(recorder.dumps_written(), 1u);
  ASSERT_FALSE(recorder.last_dump_path().empty());
  EXPECT_NE(recorder.last_dump_path().find("FLIGHT_snippet-p1_1_poll_timeout"),
            std::string::npos);

  std::FILE* file = std::fopen(recorder.last_dump_path().c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string body;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    body.append(buffer, got);
  }
  std::fclose(file);
  // Every line is standalone JSON; header, one span, one metrics snapshot.
  size_t start = 0;
  std::vector<JsonValue> lines;
  while (start < body.size()) {
    size_t end = body.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    auto parsed = ParseJson(body.substr(start, end - start));
    ASSERT_TRUE(parsed.ok()) << body.substr(start, end - start);
    lines.push_back(*parsed);
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].Find("type")->string_value, "flight");
  EXPECT_EQ(lines[0].Find("reason")->string_value, "poll_timeout");
  EXPECT_EQ(lines[0].Find("sim_now_us")->number_value, 5000);
  EXPECT_EQ(lines[1].Find("type")->string_value, "span");
  EXPECT_EQ(lines[1].Find("trace")->string_value, "p1-4");
  EXPECT_EQ(lines[2].Find("type")->string_value, "metrics");
  EXPECT_NE(lines[2].Find("prometheus")->string_value.find("rcb_test_polls 1"),
            std::string::npos);
}

TEST(FlightRecorderTest, DedupWindowCollapsesRepeatTriggers) {
  TraceLog log(8);
  MetricsRegistry registry;
  FlightRecorder::Options options;
  options.dir = ::testing::TempDir();
  options.component = "dedup-agent";
  options.dedup_window_us = 10'000;
  FlightRecorder recorder(&log, &registry, options);

  recorder.Trigger("resync", 1'000);  // first sighting: dumped
  recorder.Trigger("resync", 5'000);  // 4 ms after the dump: suppressed
  recorder.Trigger("resync", 9'000);  // still inside the window: suppressed
  EXPECT_EQ(recorder.dumps_written(), 1u);
  EXPECT_EQ(recorder.dumps_suppressed(), 2u);
  EXPECT_EQ(recorder.triggers("resync"), 3u);  // counting is never deduped

  // A different reason inside the same window is its own anomaly.
  recorder.Trigger("overload", 6'000);
  EXPECT_EQ(recorder.dumps_written(), 2u);
  EXPECT_EQ(recorder.dumps_suppressed(), 2u);

  // The window is measured from the last *written* dump, so once it passes
  // the same reason dumps again (a second episode gets its own artifact).
  recorder.Trigger("resync", 11'000);
  EXPECT_EQ(recorder.dumps_written(), 3u);
  EXPECT_NE(recorder.last_dump_path().find("FLIGHT_dedup-agent_3_resync"),
            std::string::npos);
  EXPECT_EQ(recorder.total_triggers(), 5u);
}

TEST(FlightRecorderTest, ZeroDedupWindowDumpsEveryTrigger) {
  TraceLog log(8);
  MetricsRegistry registry;
  FlightRecorder::Options options;
  options.dir = ::testing::TempDir();
  options.component = "nodedup-agent";
  FlightRecorder recorder(&log, &registry, options);
  recorder.Trigger("resync", 1'000);
  recorder.Trigger("resync", 1'001);
  EXPECT_EQ(recorder.dumps_written(), 2u);
  EXPECT_EQ(recorder.dumps_suppressed(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism: the sim-only exposition of two identical simulated sessions
// must be byte-identical (the contract /metrics?view=sim serves).
// ---------------------------------------------------------------------------

std::string RunSessionAndRenderSimMetrics(std::string* snippet_body) {
  EventLoop loop;
  Network network(&loop);
  SessionOptions options;
  options.profile = LanProfile();
  const SiteSpec* spec = FindSite("google.com");
  AddOriginServer(&network, options.profile, spec->host, spec->server_bps,
                  spec->server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  auto server = InstallSite(&loop, &network, *spec);
  CoBrowsingSession session(&loop, &network, options);
  EXPECT_TRUE(session.Start().ok());
  auto stats = session.CoNavigate(Url::Make("http", spec->host, 80, "/"));
  EXPECT_TRUE(stats.ok());
  // Let a few poll cycles pass so counters move beyond the initial sync.
  loop.RunFor(Duration::Seconds(5.0));
  session.host_browser()->MutateDocument([](Document* document) {
    auto marker = MakeElement("div");
    marker->SetAttribute("id", "probe");
    document->body()->AppendChild(std::move(marker));
  });
  loop.RunFor(Duration::Seconds(3.0));
  RenderOptions sim_only{.include_wall = false};
  *snippet_body = session.snippet(0)->metrics_registry().RenderPrometheus(
      sim_only);
  return session.agent()->metrics_registry().RenderPrometheus(sim_only);
}

TEST(ObsDeterminismTest, TwoIdenticalSessionsRenderIdenticalSimMetrics) {
  std::string snippet_first;
  std::string snippet_second;
  std::string agent_first = RunSessionAndRenderSimMetrics(&snippet_first);
  std::string agent_second = RunSessionAndRenderSimMetrics(&snippet_second);
  EXPECT_FALSE(agent_first.empty());
  EXPECT_EQ(agent_first, agent_second);
  EXPECT_EQ(snippet_first, snippet_second);
  // The deterministic body must carry real activity, not just zeros.
  EXPECT_NE(agent_first.find("rcb_agent_generations"), std::string::npos);
  EXPECT_EQ(agent_first.find("rcb_agent_generations 0\n"), std::string::npos)
      << agent_first;
}

}  // namespace
}  // namespace obs
}  // namespace rcb
