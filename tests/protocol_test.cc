// Tests for the RCB wire protocol: element payloads, user actions, the
// Fig. 4 snapshot XML, and poll request bodies.
#include <gtest/gtest.h>

#include "src/core/protocol.h"
#include "src/util/rand.h"

namespace rcb {
namespace {

// --------------------------------------------------------- ElementPayload --

TEST(ElementPayloadTest, RoundTrip) {
  ElementPayload payload;
  payload.tag = "body";
  payload.attributes = {{"class", "main"}, {"onload", "init()"}};
  payload.inner_html = "<div id=\"d\">x &amp; y</div>";
  auto decoded = DecodeElementPayload(EncodeElementPayload(payload));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, payload);
}

TEST(ElementPayloadTest, EmptyAttributesAndHtml) {
  ElementPayload payload;
  payload.tag = "head";
  auto decoded = DecodeElementPayload(EncodeElementPayload(payload));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, payload);
}

TEST(ElementPayloadTest, InnerHtmlMayContainSeparators) {
  ElementPayload payload;
  payload.tag = "div";
  payload.inner_html = std::string("a\x1f b\x1f c");  // separators in content
  auto decoded = DecodeElementPayload(EncodeElementPayload(payload));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->inner_html, payload.inner_html);
}

TEST(ElementPayloadTest, DecodeRejectsMalformed) {
  EXPECT_FALSE(DecodeElementPayload("").ok());
  EXPECT_FALSE(DecodeElementPayload("noseparators").ok());
  EXPECT_FALSE(DecodeElementPayload("tagonly\x1f").ok());
  EXPECT_FALSE(DecodeElementPayload("\x1f\x1f").ok());  // empty tag
}

// ------------------------------------------------------------ UserActions --

TEST(ActionsTest, TypeNamesRoundTrip) {
  for (ActionType type : {ActionType::kClick, ActionType::kFormFill,
                          ActionType::kFormSubmit, ActionType::kMouseMove,
                          ActionType::kNavigate}) {
    auto parsed = ParseActionType(ActionTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(ParseActionType("bogus").ok());
}

TEST(ActionsTest, EncodeDecodeRoundTrip) {
  std::vector<UserAction> actions;
  UserAction click;
  click.type = ActionType::kClick;
  click.target = 7;
  actions.push_back(click);

  UserAction fill;
  fill.type = ActionType::kFormFill;
  fill.target = 2;
  fill.fields = {{"q", "macbook air"}, {"note", "a&b=c"}};
  actions.push_back(fill);

  UserAction mouse;
  mouse.type = ActionType::kMouseMove;
  mouse.x = 120;
  mouse.y = -4;
  actions.push_back(mouse);

  UserAction navigate;
  navigate.type = ActionType::kNavigate;
  navigate.data = "http://www.shop.test/product/mba13";
  navigate.origin = "p2";
  actions.push_back(navigate);

  auto decoded = DecodeActions(EncodeActions(actions));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, actions);
}

TEST(ActionsTest, EmptyListRoundTrip) {
  auto decoded = DecodeActions(EncodeActions({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
  EXPECT_TRUE(DecodeActions("")->empty());
  EXPECT_TRUE(DecodeActions("  \n ")->empty());
}

TEST(ActionsTest, DecodeRejectsMissingType) {
  EXPECT_FALSE(DecodeActions("target=3").ok());
  EXPECT_FALSE(DecodeActions("type=warp").ok());
  EXPECT_FALSE(DecodeActions("type=click&target=abc").ok());
}

TEST(ActionsTest, FieldValuesWithNewlines) {
  UserAction fill;
  fill.type = ActionType::kFormFill;
  fill.target = 0;
  fill.fields = {{"addr", "line1\nline2"}};
  auto decoded = DecodeActions(EncodeActions({fill}));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0].fields[0].second, "line1\nline2");
}

// --------------------------------------------------------------- Snapshot --

Snapshot MakeTestSnapshot() {
  Snapshot snapshot;
  snapshot.doc_time_ms = 123456789;
  snapshot.has_content = true;
  ElementPayload title;
  title.tag = "title";
  title.inner_html = "Example & <Page>";
  snapshot.head_children.push_back(title);
  ElementPayload style;
  style.tag = "style";
  style.inner_html = ".a{color:red}";
  snapshot.head_children.push_back(style);
  ElementPayload body;
  body.tag = "body";
  body.attributes = {{"class", "main"}};
  body.inner_html = "<div id=\"x\"><p>hello]]>there</p></div>";
  snapshot.body = body;
  return snapshot;
}

TEST(SnapshotTest, XmlShapeMatchesFig4) {
  std::string xml = SerializeSnapshotXml(MakeTestSnapshot());
  EXPECT_TRUE(xml.starts_with("<?xml version='1.0' encoding='utf-8'?>"));
  EXPECT_NE(xml.find("<newContent>"), std::string::npos);
  EXPECT_NE(xml.find("<docTime>123456789</docTime>"), std::string::npos);
  EXPECT_NE(xml.find("<docContent>"), std::string::npos);
  EXPECT_NE(xml.find("<docHead>"), std::string::npos);
  EXPECT_NE(xml.find("<hChild1>"), std::string::npos);
  EXPECT_NE(xml.find("<hChild2>"), std::string::npos);
  EXPECT_NE(xml.find("<docBody>"), std::string::npos);
  EXPECT_NE(xml.find("<![CDATA["), std::string::npos);
}

TEST(SnapshotTest, RoundTrip) {
  Snapshot original = MakeTestSnapshot();
  auto parsed = ParseSnapshotXml(SerializeSnapshotXml(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->doc_time_ms, original.doc_time_ms);
  EXPECT_TRUE(parsed->has_content);
  ASSERT_EQ(parsed->head_children.size(), 2u);
  EXPECT_EQ(parsed->head_children[0], original.head_children[0]);
  EXPECT_EQ(parsed->head_children[1], original.head_children[1]);
  ASSERT_TRUE(parsed->body.has_value());
  EXPECT_EQ(*parsed->body, *original.body);
  EXPECT_FALSE(parsed->frameset.has_value());
}

TEST(SnapshotTest, FramesetRoundTrip) {
  Snapshot snapshot;
  snapshot.doc_time_ms = 99;
  snapshot.has_content = true;
  ElementPayload frameset;
  frameset.tag = "frameset";
  frameset.attributes = {{"cols", "50%,50%"}};
  frameset.inner_html = "<frame src=\"http://h/a\"><frame src=\"http://h/b\">";
  snapshot.frameset = frameset;
  ElementPayload noframes;
  noframes.tag = "noframes";
  noframes.inner_html = "<p>sorry</p>";
  snapshot.noframes = noframes;

  auto parsed = ParseSnapshotXml(SerializeSnapshotXml(snapshot));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->frameset.has_value());
  EXPECT_EQ(*parsed->frameset, frameset);
  ASSERT_TRUE(parsed->noframes.has_value());
  EXPECT_EQ(*parsed->noframes, noframes);
  EXPECT_FALSE(parsed->body.has_value());
}

TEST(SnapshotTest, ActionsOnlySnapshot) {
  Snapshot snapshot;
  snapshot.doc_time_ms = 5;
  snapshot.has_content = false;
  UserAction mouse;
  mouse.type = ActionType::kMouseMove;
  mouse.x = 1;
  mouse.y = 2;
  mouse.origin = "host";
  snapshot.user_actions.push_back(mouse);

  EXPECT_FALSE(snapshot.empty());
  auto parsed = ParseSnapshotXml(SerializeSnapshotXml(snapshot));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->has_content);
  ASSERT_EQ(parsed->user_actions.size(), 1u);
  EXPECT_EQ(parsed->user_actions[0], mouse);
}

TEST(SnapshotTest, EmptySnapshotDetection) {
  Snapshot snapshot;
  EXPECT_TRUE(snapshot.empty());
  snapshot.has_content = true;
  EXPECT_FALSE(snapshot.empty());
}

TEST(SnapshotTest, ParseRejectsWrongRoot) {
  EXPECT_FALSE(ParseSnapshotXml("<other/>").ok());
  EXPECT_FALSE(ParseSnapshotXml("<newContent/>").ok());  // missing docTime
  EXPECT_FALSE(ParseSnapshotXml("not xml").ok());
}

// Property: snapshots with random binary innerHTML survive the full
// escape -> CDATA -> XML -> parse -> unescape pipeline.
class SnapshotRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotRoundTripTest, RandomPayloads) {
  Rng rng(GetParam());
  Snapshot snapshot;
  snapshot.doc_time_ms = static_cast<int64_t>(rng.NextBelow(1u << 30));
  snapshot.has_content = true;
  size_t head_children = rng.NextBelow(4);
  for (size_t i = 0; i < head_children; ++i) {
    ElementPayload payload;
    payload.tag = "meta";
    payload.attributes = {{"name", rng.NextToken(5)},
                          {"content", rng.NextBytes(rng.NextBelow(64))}};
    payload.inner_html = rng.NextBytes(rng.NextBelow(256));
    snapshot.head_children.push_back(std::move(payload));
  }
  ElementPayload body;
  body.tag = "body";
  body.inner_html = rng.NextBytes(rng.NextBelow(2048));
  snapshot.body = body;

  auto parsed = ParseSnapshotXml(SerializeSnapshotXml(snapshot));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->doc_time_ms, snapshot.doc_time_ms);
  ASSERT_EQ(parsed->head_children.size(), snapshot.head_children.size());
  for (size_t i = 0; i < head_children; ++i) {
    EXPECT_EQ(parsed->head_children[i], snapshot.head_children[i]);
  }
  EXPECT_EQ(*parsed->body, *snapshot.body);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRoundTripTest,
                         ::testing::Range<uint64_t>(1, 25));

// ------------------------------------------------------------ PollRequest --

TEST(PollRequestTest, RoundTrip) {
  PollRequest request;
  request.participant_id = "p3";
  request.doc_time_ms = 42;
  UserAction click;
  click.type = ActionType::kClick;
  click.target = 1;
  request.actions.push_back(click);

  auto decoded = DecodePollRequest(EncodePollRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->participant_id, "p3");
  EXPECT_EQ(decoded->doc_time_ms, 42);
  ASSERT_EQ(decoded->actions.size(), 1u);
  EXPECT_EQ(decoded->actions[0], click);
}

TEST(PollRequestTest, NegativeDocTime) {
  PollRequest request;
  request.participant_id = "p1";
  request.doc_time_ms = -1;
  auto decoded = DecodePollRequest(EncodePollRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->doc_time_ms, -1);
}

TEST(PollRequestTest, RejectsMissingFields) {
  EXPECT_FALSE(DecodePollRequest("").ok());
  EXPECT_FALSE(DecodePollRequest("pid=p1").ok());
  EXPECT_FALSE(DecodePollRequest("ts=1").ok());
}

TEST(PollRequestTest, TraceFieldRoundTrips) {
  PollRequest request;
  request.participant_id = "p2";
  request.doc_time_ms = 7;
  request.trace = "p2-19";
  auto decoded = DecodePollRequest(EncodePollRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->trace, "p2-19");
}

TEST(PollRequestTest, EmptyTraceLeavesWireByteIdentical) {
  // The capability-negotiation contract (mirrors patch=1): a snippet with
  // tracing off must emit exactly the pre-trace wire bytes.
  PollRequest request;
  request.participant_id = "p1";
  request.doc_time_ms = 3;
  std::string untraced = EncodePollRequest(request);
  EXPECT_EQ(untraced.find("trace"), std::string::npos);
  request.trace = "p1-1";
  std::string traced = EncodePollRequest(request);
  EXPECT_NE(traced.find("trace=p1-1"), std::string::npos);
  request.trace.clear();
  EXPECT_EQ(EncodePollRequest(request), untraced);
}

TEST(PollRequestTest, StreamFieldRoundTrips) {
  PollRequest request;
  request.participant_id = "p3";
  request.doc_time_ms = 11;
  request.stream = 2;
  auto decoded = DecodePollRequest(EncodePollRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->stream, 2u);
}

TEST(PollRequestTest, ZeroStreamLeavesWireByteIdentical) {
  // Same capability-negotiation contract as patch=/trace=: a snippet with
  // the streamed transport off emits exactly the pre-transport wire bytes.
  PollRequest request;
  request.participant_id = "p1";
  request.doc_time_ms = 3;
  std::string classic = EncodePollRequest(request);
  EXPECT_EQ(classic.find("stream"), std::string::npos);
  request.stream = 2;
  std::string streaming = EncodePollRequest(request);
  EXPECT_NE(streaming.find("stream=2"), std::string::npos);
  request.stream = 0;
  EXPECT_EQ(EncodePollRequest(request), classic);
}

TEST(PollRequestTest, UnknownStreamFieldIgnoredByOldDecoder) {
  auto decoded = DecodePollRequest("pid=p1&ts=3&stream=2");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->participant_id, "p1");
  auto classic = DecodePollRequest("pid=p1&ts=3");
  ASSERT_TRUE(classic.ok());
  EXPECT_EQ(classic->stream, 0u);
}

TEST(PollRequestTest, UnknownTraceFieldIgnoredByOldDecoder) {
  // A traced request still decodes when the receiver predates the field...
  auto decoded = DecodePollRequest("pid=p1&ts=3&trace=p1-9");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->participant_id, "p1");
  // ...and an untraced request decodes to an empty trace id.
  auto untraced = DecodePollRequest("pid=p1&ts=3");
  ASSERT_TRUE(untraced.ok());
  EXPECT_TRUE(untraced->trace.empty());
}

}  // namespace
}  // namespace rcb
