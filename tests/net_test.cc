// Unit tests for the discrete-event loop and the simulated network.
#include <gtest/gtest.h>

#include "src/net/event_loop.h"
#include "src/net/network.h"
#include "src/net/profiles.h"

namespace rcb {
namespace {

// -------------------------------------------------------------- EventLoop --

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(Duration::Millis(30), [&] { order.push_back(3); });
  loop.Schedule(Duration::Millis(10), [&] { order.push_back(1); });
  loop.Schedule(Duration::Millis(20), [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now().millis(), 30);
}

TEST(EventLoopTest, FifoForEqualTimestamps) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.Schedule(Duration::Millis(10), [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(Duration::Millis(5), [&] {
    order.push_back(1);
    loop.Schedule(Duration::Millis(5), [&] { order.push_back(2); });
  });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now().millis(), 10);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  uint64_t id = loop.Schedule(Duration::Millis(1), [&] { ran = true; });
  loop.Cancel(id);
  loop.Run();
  EXPECT_FALSE(ran);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  loop.Schedule(Duration::Millis(10), [&] { ++count; });
  loop.Schedule(Duration::Millis(30), [&] { ++count; });
  loop.RunUntil(SimTime::FromMicros(20'000));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now().millis(), 20);
  loop.Run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, RunUntilIgnoresCancelledHeadBeforeDeadlineCheck) {
  EventLoop loop;
  int count = 0;
  // A cancelled entry ahead of the deadline must not let RunUntil slide past
  // the deadline check and execute a live event scheduled beyond it.
  uint64_t id = loop.Schedule(Duration::Millis(5), [&] { ++count; });
  loop.Schedule(Duration::Millis(30), [&] { ++count; });
  loop.Cancel(id);
  loop.RunUntil(SimTime::FromMicros(20'000));
  EXPECT_EQ(count, 0);
  EXPECT_EQ(loop.now().millis(), 20);
  loop.Run();
  EXPECT_EQ(count, 1);
}

TEST(EventLoopTest, RunForAdvancesEvenWithoutEvents) {
  EventLoop loop;
  loop.RunFor(Duration::Seconds(2.0));
  EXPECT_EQ(loop.now().seconds(), 2.0);
}

TEST(EventLoopTest, RunUntilCondition) {
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) {
      loop.Schedule(Duration::Millis(1), tick);
    }
  };
  loop.Schedule(Duration::Millis(1), tick);
  bool satisfied = loop.RunUntilCondition([&] { return ticks >= 5; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(ticks, 5);
}

TEST(EventLoopTest, RunUntilConditionExhaustsQueue) {
  EventLoop loop;
  loop.Schedule(Duration::Millis(1), [] {});
  EXPECT_FALSE(loop.RunUntilCondition([] { return false; }));
}

TEST(EventLoopTest, NegativeDelayClamped) {
  EventLoop loop;
  bool ran = false;
  loop.Schedule(Duration::Millis(-5), [&] { ran = true; });
  loop.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now().millis(), 0);
}

// ---------------------------------------------------------------- Network --

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(&loop_) {
    network_.AddHost("client", {});
    network_.AddHost("server", {});
    network_.SetLatency("client", "server", Duration::Millis(10));
  }
  EventLoop loop_;
  Network network_;
};

TEST_F(NetworkTest, ConnectRefusedWithoutListener) {
  auto endpoint = network_.Connect("client", "server", 80);
  EXPECT_FALSE(endpoint.ok());
  EXPECT_EQ(endpoint.status().code(), StatusCode::kUnavailable);
}

TEST_F(NetworkTest, ConnectUnknownHostFails) {
  EXPECT_FALSE(network_.Connect("client", "nowhere", 80).ok());
  EXPECT_FALSE(network_.Connect("nowhere", "server", 80).ok());
}

TEST_F(NetworkTest, AcceptFiresAfterOneWayLatency) {
  SimTime accept_time;
  bool accepted = false;
  ASSERT_TRUE(network_.Listen("server", 80, [&](NetEndpoint*) {
    accepted = true;
    accept_time = loop_.now();
  }).ok());
  ASSERT_TRUE(network_.Connect("client", "server", 80).ok());
  loop_.Run();
  EXPECT_TRUE(accepted);
  EXPECT_EQ(accept_time.millis(), 10);
}

TEST_F(NetworkTest, DataDeliveredAfterHandshakePlusLatency) {
  NetEndpoint* server_end = nullptr;
  std::string received;
  SimTime received_at;
  ASSERT_TRUE(network_.Listen("server", 80, [&](NetEndpoint* endpoint) {
    server_end = endpoint;
    endpoint->SetDataHandler([&](std::string_view data) {
      received = std::string(data);
      received_at = loop_.now();
    });
  }).ok());
  auto client = network_.Connect("client", "server", 80);
  ASSERT_TRUE(client.ok());
  (*client)->Send("hello");
  loop_.Run();
  EXPECT_EQ(received, "hello");
  // Handshake completes at 20 ms (RTT); data then takes 10 ms one way.
  EXPECT_EQ(received_at.millis(), 30);
}

TEST_F(NetworkTest, BandwidthAddsSerializationDelay) {
  // 1 Mbps uplink on the client: 125000 bytes/s.
  network_.AddHost("slow", {.uplink_bps = 1'000'000, .downlink_bps = 1'000'000});
  network_.SetLatency("slow", "server", Duration::Millis(10));
  SimTime received_at;
  ASSERT_TRUE(network_.Listen("server", 81, [&](NetEndpoint* endpoint) {
    endpoint->SetDataHandler([&](std::string_view) { received_at = loop_.now(); });
  }).ok());
  auto client = network_.Connect("slow", "server", 81);
  ASSERT_TRUE(client.ok());
  (*client)->Send(std::string(125'000, 'x'));  // exactly 1 second at 1 Mbps
  loop_.Run();
  // handshake 20ms + tx 1000ms + propagation 10ms
  EXPECT_EQ(received_at.millis(), 20 + 1000 + 10);
}

TEST_F(NetworkTest, ConsecutiveSendsQueueOnInterface) {
  network_.AddHost("slow2", {.uplink_bps = 1'000'000, .downlink_bps = 0});
  network_.SetLatency("slow2", "server", Duration::Millis(0));
  std::vector<SimTime> arrivals;
  ASSERT_TRUE(network_.Listen("server", 82, [&](NetEndpoint* endpoint) {
    endpoint->SetDataHandler(
        [&](std::string_view) { arrivals.push_back(loop_.now()); });
  }).ok());
  auto client = network_.Connect("slow2", "server", 82);
  ASSERT_TRUE(client.ok());
  (*client)->Send(std::string(125'000, 'a'));  // 1 s
  (*client)->Send(std::string(125'000, 'b'));  // queues behind the first
  loop_.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].millis(), 1000);
  EXPECT_EQ(arrivals[1].millis(), 2000);
}

TEST_F(NetworkTest, BottleneckIsMinOfUplinkAndDownlink) {
  network_.AddHost("fast-up", {.uplink_bps = 100'000'000, .downlink_bps = 0});
  network_.AddHost("slow-down", {.uplink_bps = 0, .downlink_bps = 1'000'000});
  network_.SetLatency("fast-up", "slow-down", Duration::Millis(0));
  SimTime arrival;
  ASSERT_TRUE(network_.Listen("slow-down", 83, [&](NetEndpoint* endpoint) {
    endpoint->SetDataHandler([&](std::string_view) { arrival = loop_.now(); });
  }).ok());
  auto client = network_.Connect("fast-up", "slow-down", 83);
  ASSERT_TRUE(client.ok());
  (*client)->Send(std::string(125'000, 'x'));
  loop_.Run();
  EXPECT_EQ(arrival.millis(), 1000);  // limited by the 1 Mbps downlink
}

TEST_F(NetworkTest, BidirectionalTraffic) {
  NetEndpoint* server_end = nullptr;
  std::string client_got;
  std::string server_got;
  ASSERT_TRUE(network_.Listen("server", 84, [&](NetEndpoint* endpoint) {
    server_end = endpoint;
    endpoint->SetDataHandler([&server_got, endpoint](std::string_view data) {
      server_got = std::string(data);
      endpoint->Send("pong");
    });
  }).ok());
  auto client = network_.Connect("client", "server", 84);
  ASSERT_TRUE(client.ok());
  (*client)->SetDataHandler(
      [&](std::string_view data) { client_got = std::string(data); });
  (*client)->Send("ping");
  loop_.Run();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
}

TEST_F(NetworkTest, CloseNotifiesPeer) {
  NetEndpoint* server_end = nullptr;
  bool server_closed = false;
  ASSERT_TRUE(network_.Listen("server", 85, [&](NetEndpoint* endpoint) {
    server_end = endpoint;
    endpoint->SetCloseHandler([&] { server_closed = true; });
  }).ok());
  auto client = network_.Connect("client", "server", 85);
  ASSERT_TRUE(client.ok());
  loop_.Run();
  (*client)->Close();
  loop_.Run();
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE((*client)->closed());
}

TEST_F(NetworkTest, SendAfterCloseDropped) {
  ASSERT_TRUE(network_.Listen("server", 86, [](NetEndpoint*) {}).ok());
  auto client = network_.Connect("client", "server", 86);
  ASSERT_TRUE(client.ok());
  (*client)->Close();
  (*client)->Send("lost");
  loop_.Run();
  EXPECT_EQ((*client)->bytes_sent(), 0u);
}

TEST_F(NetworkTest, DuplicateListenRejected) {
  ASSERT_TRUE(network_.Listen("server", 87, [](NetEndpoint*) {}).ok());
  EXPECT_EQ(network_.Listen("server", 87, [](NetEndpoint*) {}).code(),
            StatusCode::kAlreadyExists);
  network_.StopListening("server", 87);
  EXPECT_TRUE(network_.Listen("server", 87, [](NetEndpoint*) {}).ok());
}

TEST_F(NetworkTest, BlockedRouteRefused) {
  ASSERT_TRUE(network_.Listen("server", 88, [](NetEndpoint*) {}).ok());
  network_.BlockRoute("client", "server");
  EXPECT_FALSE(network_.Connect("client", "server", 88).ok());
  network_.UnblockRoute("client", "server");
  EXPECT_TRUE(network_.Connect("client", "server", 88).ok());
}

TEST_F(NetworkTest, TrafficCountersAdvance) {
  ASSERT_TRUE(network_.Listen("server", 89, [](NetEndpoint*) {}).ok());
  auto client = network_.Connect("client", "server", 89);
  ASSERT_TRUE(client.ok());
  (*client)->Send("12345");
  loop_.Run();
  EXPECT_EQ(network_.total_bytes_transferred(), 5u);
  EXPECT_EQ(network_.total_messages(), 1u);
}

// --------------------------------------------------------------- Profiles --

TEST(ProfilesTest, LanProfileShape) {
  NetworkProfile lan = LanProfile();
  EXPECT_EQ(lan.host_interface.uplink_bps, 100'000'000);
  EXPECT_LT(lan.host_participant_latency, Duration::Millis(1));
}

TEST(ProfilesTest, WanProfileShape) {
  NetworkProfile wan = WanProfile();
  EXPECT_EQ(wan.host_interface.uplink_bps, 384'000);
  EXPECT_EQ(wan.host_interface.downlink_bps, 1'500'000);
  EXPECT_GE(wan.host_participant_latency, Duration::Millis(10));
}

TEST(ProfilesTest, ApplyProfileRegistersHosts) {
  EventLoop loop;
  Network network(&loop);
  ApplyProfile(&network, LanProfile(), "h", "p");
  EXPECT_TRUE(network.HasHost("h"));
  EXPECT_TRUE(network.HasHost("p"));
  EXPECT_EQ(network.LatencyBetween("h", "p"),
            LanProfile().host_participant_latency);
}

TEST(ProfilesTest, AddOriginServerSetsLatency) {
  EventLoop loop;
  Network network(&loop);
  NetworkProfile wan = WanProfile();
  ApplyProfile(&network, wan, "h", "p");
  AddOriginServer(&network, wan, "www.site.com", 8'000'000,
                  Duration::Millis(30), "h", "p");
  EXPECT_TRUE(network.HasHost("www.site.com"));
  EXPECT_EQ(network.LatencyBetween("h", "www.site.com"),
            Duration::Millis(30) + wan.access_latency);
}

}  // namespace
}  // namespace rcb
