// Tests for the synthetic site substrate: Table 1 corpus, shop, and maps.
#include <gtest/gtest.h>

#include "src/browser/browser.h"
#include "src/sites/corpus.h"
#include "src/sites/maps_site.h"
#include "src/sites/shop_site.h"

namespace rcb {
namespace {

// ----------------------------------------------------------------- Corpus --

TEST(CorpusTest, TwentySitesInTableOrder) {
  const auto& sites = Table1Sites();
  ASSERT_EQ(sites.size(), 20u);
  EXPECT_EQ(sites[0].name, "yahoo.com");
  EXPECT_EQ(sites[1].name, "google.com");
  EXPECT_EQ(sites[12].name, "amazon.com");
  EXPECT_EQ(sites[19].name, "nytimes.com");
  for (size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(sites[i].index, static_cast<int>(i) + 1);
  }
}

TEST(CorpusTest, Table1PageSizesMatchPaper) {
  // Spot-check the sizes printed in Table 1.
  EXPECT_DOUBLE_EQ(FindSite("yahoo.com")->page_kb, 130.3);
  EXPECT_DOUBLE_EQ(FindSite("google.com")->page_kb, 6.8);
  EXPECT_DOUBLE_EQ(FindSite("amazon.com")->page_kb, 228.5);
  EXPECT_DOUBLE_EQ(FindSite("apple.com")->page_kb, 10.0);
  EXPECT_EQ(FindSite("doesnotexist.com"), nullptr);
}

// The generated homepage hits the Table 1 byte size for every site.
class CorpusSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(CorpusSizeTest, GeneratedHtmlMatchesTableSize) {
  const SiteSpec& spec = Table1Sites()[static_cast<size_t>(GetParam())];
  GeneratedSite site = GenerateHomepage(spec);
  double target = spec.page_kb * 1024.0;
  // Within 2% of the Table 1 size (tiny pages can't shrink below skeleton).
  EXPECT_NEAR(static_cast<double>(site.html.size()), target, target * 0.02)
      << spec.name;
  EXPECT_EQ(site.objects.size(), static_cast<size_t>(spec.object_count))
      << spec.name;
}

TEST_P(CorpusSizeTest, GenerationIsDeterministic) {
  const SiteSpec& spec = Table1Sites()[static_cast<size_t>(GetParam())];
  GeneratedSite a = GenerateHomepage(spec);
  GeneratedSite b = GenerateHomepage(spec);
  EXPECT_EQ(a.html, b.html);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].body, b.objects[i].body);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSites, CorpusSizeTest, ::testing::Range(0, 20));

TEST(CorpusTest, GeneratedPageParsesWithAllObjectsReferenced) {
  const SiteSpec& spec = *FindSite("cnn.com");
  GeneratedSite site = GenerateHomepage(spec);
  auto doc = ParseDocument(site.html);
  ASSERT_NE(doc->body(), nullptr);
  Url base = Url::Make("http", spec.host, 80, "/");
  auto resources = CollectResources(doc.get(), base);
  EXPECT_EQ(resources.size(), site.objects.size());
}

TEST(CorpusTest, InstalledSiteServesHomepageAndObjects) {
  EventLoop loop;
  Network network(&loop);
  const SiteSpec& spec = *FindSite("google.com");
  network.AddHost(spec.host, {});
  network.AddHost("user", {});
  auto server = InstallSite(&loop, &network, spec);
  Browser browser(&loop, &network, "user");
  Status result;
  PageLoadStats stats;
  bool done = false;
  browser.Navigate(Url::Make("http", spec.host, 80, "/"),
                   [&](const Status& status, const PageLoadStats& s) {
                     result = status;
                     stats = s;
                     done = true;
                   });
  loop.RunUntilCondition([&] { return done; });
  ASSERT_TRUE(result.ok()) << result;
  EXPECT_EQ(stats.object_count, static_cast<size_t>(spec.object_count));
  EXPECT_EQ(stats.html_bytes, GenerateHomepage(spec).html.size());
  // Secondary pages work for click-through.
  done = false;
  browser.Navigate(Url::Make("http", spec.host, 80, "/section1"),
                   [&](const Status& status, const PageLoadStats&) {
                     result = status;
                     done = true;
                   });
  loop.RunUntilCondition([&] { return done; });
  EXPECT_TRUE(result.ok());
}

// ------------------------------------------------------------------- Shop --

class ShopTest : public ::testing::Test {
 protected:
  ShopTest() : network_(&loop_) {
    network_.AddHost("www.shop.test", {});
    network_.AddHost("user", {});
    shop_ = std::make_unique<ShopSite>(&loop_, &network_, "www.shop.test");
    browser_ = std::make_unique<Browser>(&loop_, &network_, "user");
  }

  Url ShopUrl(const std::string& path, const std::string& query = "") {
    return Url::Make("http", "www.shop.test", 80, path, query);
  }

  Status Go(const Url& url) {
    Status out;
    bool done = false;
    browser_->Navigate(url, [&](const Status& status, const PageLoadStats&) {
      out = status;
      done = true;
    });
    loop_.RunUntilCondition([&] { return done; });
    return out;
  }

  Status Submit(Element* form) {
    Status out;
    bool done = false;
    Status start = browser_->SubmitForm(
        form, [&](const Status& status, const PageLoadStats&) {
          out = status;
          done = true;
        });
    if (!start.ok()) {
      return start;
    }
    loop_.RunUntilCondition([&] { return done; });
    return out;
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<ShopSite> shop_;
  std::unique_ptr<Browser> browser_;
};

TEST_F(ShopTest, HomeListsProductsAndSetsSession) {
  ASSERT_TRUE(Go(ShopUrl("/")).ok());
  EXPECT_GT(browser_->document()->FindAll("a").size(), shop_->products().size());
  EXPECT_EQ(browser_->cookies().CountFor(ShopUrl("/")), 1u);
  EXPECT_EQ(shop_->session_count(), 1u);
}

TEST_F(ShopTest, SearchFiltersProducts) {
  ASSERT_TRUE(Go(ShopUrl("/search", "q=macbook+air")).ok());
  Element* hitcount = browser_->document()->ById("hitcount");
  ASSERT_NE(hitcount, nullptr);
  EXPECT_EQ(hitcount->TextContent(), "2 results");
}

TEST_F(ShopTest, SearchNoMatches) {
  ASSERT_TRUE(Go(ShopUrl("/search", "q=zebra")).ok());
  EXPECT_EQ(browser_->document()->ById("hitcount")->TextContent(), "0 results");
}

TEST_F(ShopTest, ProductPageHasAddForm) {
  ASSERT_TRUE(Go(ShopUrl("/product/mba13")).ok());
  EXPECT_NE(browser_->document()->ById("addform"), nullptr);
  EXPECT_NE(browser_->document()
                ->ById("ptitle")
                ->TextContent()
                .find("MacBook Air 13-inch"),
            std::string::npos);
}

TEST_F(ShopTest, UnknownProductIs404) {
  EXPECT_FALSE(Go(ShopUrl("/product/nope")).ok());
}

TEST_F(ShopTest, AddToCartFlow) {
  ASSERT_TRUE(Go(ShopUrl("/")).ok());  // establish session
  ASSERT_TRUE(Go(ShopUrl("/product/mba13")).ok());
  ASSERT_TRUE(Submit(browser_->document()->ById("addform")).ok());
  // Redirected to the cart page showing the product.
  EXPECT_NE(browser_->document()->ById("cartlist"), nullptr);
  EXPECT_NE(browser_->document()->ById("cartlist")->TextContent().find(
                "MacBook Air 13-inch"),
            std::string::npos);
}

TEST_F(ShopTest, CartWithoutSessionShowsSignIn) {
  ASSERT_TRUE(Go(ShopUrl("/cart")).ok());
  EXPECT_NE(browser_->document()->ById("signin"), nullptr);
}

TEST_F(ShopTest, CheckoutRequiresNonEmptyCart) {
  ASSERT_TRUE(Go(ShopUrl("/")).ok());
  ASSERT_TRUE(Go(ShopUrl("/checkout")).ok());
  EXPECT_NE(browser_->document()->ById("emptycart"), nullptr);
}

TEST_F(ShopTest, FullCheckoutFlow) {
  ASSERT_TRUE(Go(ShopUrl("/")).ok());
  ASSERT_TRUE(Go(ShopUrl("/product/mba13")).ok());
  ASSERT_TRUE(Submit(browser_->document()->ById("addform")).ok());
  ASSERT_TRUE(Go(ShopUrl("/checkout")).ok());
  Element* form = browser_->document()->ById("shipform");
  ASSERT_NE(form, nullptr);
  ASSERT_TRUE(Browser::FillField(form, "fullname", "Alice Example").ok());
  ASSERT_TRUE(Browser::FillField(form, "street", "653 5th Ave").ok());
  ASSERT_TRUE(Browser::FillField(form, "city", "New York").ok());
  ASSERT_TRUE(Browser::FillField(form, "state", "NY").ok());
  ASSERT_TRUE(Browser::FillField(form, "zip", "10022").ok());
  ASSERT_TRUE(Browser::FillField(form, "phone", "555-0100").ok());
  ASSERT_TRUE(Submit(form).ok());
  ASSERT_NE(browser_->document()->ById("confirm"), nullptr);
  EXPECT_NE(browser_->document()->ById("shipto")->TextContent().find("New York"),
            std::string::npos);
}

TEST_F(ShopTest, CheckoutRejectsMissingFields) {
  ASSERT_TRUE(Go(ShopUrl("/")).ok());
  ASSERT_TRUE(Go(ShopUrl("/product/ipod")).ok());
  ASSERT_TRUE(Submit(browser_->document()->ById("addform")).ok());
  ASSERT_TRUE(Go(ShopUrl("/checkout")).ok());
  Element* form = browser_->document()->ById("shipform");
  ASSERT_TRUE(Browser::FillField(form, "fullname", "Bob").ok());
  ASSERT_TRUE(Submit(form).ok());  // street etc. still empty
  EXPECT_NE(browser_->document()->ById("formerror"), nullptr);
}

TEST_F(ShopTest, SessionsAreIsolated) {
  // Two browsers get different sessions; carts don't leak.
  network_.AddHost("user2", {});
  Browser browser2(&loop_, &network_, "user2");
  ASSERT_TRUE(Go(ShopUrl("/")).ok());
  ASSERT_TRUE(Go(ShopUrl("/product/mba13")).ok());
  ASSERT_TRUE(Submit(browser_->document()->ById("addform")).ok());

  bool done = false;
  browser2.Navigate(ShopUrl("/cart"), [&](const Status&, const PageLoadStats&) {
    done = true;
  });
  loop_.RunUntilCondition([&] { return done; });
  // browser2 has no session cookie -> sign-in page, not browser_'s cart.
  EXPECT_NE(browser2.document()->ById("signin"), nullptr);
}

// ------------------------------------------------------------------- Maps --

class MapsTest : public ::testing::Test {
 protected:
  MapsTest() : network_(&loop_) {
    network_.AddHost("maps.test", {});
    network_.AddHost("user", {});
    maps_ = std::make_unique<MapsSite>(&loop_, &network_, "maps.test");
    browser_ = std::make_unique<Browser>(&loop_, &network_, "user");
    app_ = std::make_unique<MapsApp>(browser_.get());
  }

  Status Wait(std::function<void(std::function<void(Status)>)> op) {
    Status out;
    bool done = false;
    op([&](Status status) {
      out = status;
      done = true;
    });
    loop_.RunUntilCondition([&] { return done; });
    return out;
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<MapsSite> maps_;
  std::unique_ptr<Browser> browser_;
  std::unique_ptr<MapsApp> app_;
};

TEST_F(MapsTest, OpenLoadsTileGrid) {
  ASSERT_TRUE(Wait([&](auto done) { app_->Open(maps_->PageUrl(), done); }).ok());
  Element* map = browser_->document()->ById("map");
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->FindAll("img").size(), 9u);
  EXPECT_EQ(map->AttrOr("data-z"), "12");
}

TEST_F(MapsTest, SearchRecentersWithoutUrlChange) {
  ASSERT_TRUE(Wait([&](auto done) { app_->Open(maps_->PageUrl(), done); }).ok());
  std::string url_before = browser_->current_url().ToString();
  ASSERT_TRUE(
      Wait([&](auto done) { app_->Search("653 5th Ave, New York", done); }).ok());
  EXPECT_EQ(browser_->current_url().ToString(), url_before);
  auto [x, y] = MapsSite::Geocode("653 5th Ave, New York");
  Element* map = browser_->document()->ById("map");
  EXPECT_EQ(map->AttrOr("data-x"), std::to_string(x));
  EXPECT_EQ(map->AttrOr("data-y"), std::to_string(y));
  EXPECT_NE(browser_->document()->ById("status")->TextContent().find("view"),
            std::string::npos);
}

TEST_F(MapsTest, ZoomAndPanUpdateGrid) {
  ASSERT_TRUE(Wait([&](auto done) { app_->Open(maps_->PageUrl(), done); }).ok());
  ASSERT_TRUE(Wait([&](auto done) { app_->ZoomIn(done); }).ok());
  EXPECT_EQ(app_->zoom(), 13);
  EXPECT_EQ(browser_->document()->ById("map")->AttrOr("data-z"), "13");
  ASSERT_TRUE(Wait([&](auto done) { app_->Pan(2, -1, done); }).ok());
  EXPECT_EQ(browser_->document()->ById("map")->AttrOr("data-x"),
            std::to_string(app_->center_x()));
  ASSERT_TRUE(Wait([&](auto done) { app_->ZoomOut(done); }).ok());
  EXPECT_EQ(app_->zoom(), 12);
}

TEST_F(MapsTest, TilesAreCachedAcrossReloads) {
  ASSERT_TRUE(Wait([&](auto done) { app_->Open(maps_->PageUrl(), done); }).ok());
  uint64_t hits_before = browser_->cache().hits();
  // Zoom in then back out: the z=12 tiles are refetched from cache.
  ASSERT_TRUE(Wait([&](auto done) { app_->ZoomIn(done); }).ok());
  ASSERT_TRUE(Wait([&](auto done) { app_->ZoomOut(done); }).ok());
  EXPECT_GT(browser_->cache().hits(), hits_before);
}

TEST_F(MapsTest, StreetViewSwapsInFlashEmbed) {
  ASSERT_TRUE(Wait([&](auto done) { app_->Open(maps_->PageUrl(), done); }).ok());
  ASSERT_TRUE(Wait([&](auto done) { app_->ShowStreetView(done); }).ok());
  Element* flash = browser_->document()->ById("svflash");
  ASSERT_NE(flash, nullptr);
  EXPECT_EQ(flash->AttrOr("type"), "application/x-shockwave-flash");
  EXPECT_NE(browser_->document()->ById("svcaption")->TextContent().find("Cartier"),
            std::string::npos);
}

TEST_F(MapsTest, GeocodeDeterministic) {
  auto a = MapsSite::Geocode("somewhere");
  auto b = MapsSite::Geocode("somewhere");
  auto c = MapsSite::Geocode("elsewhere");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace rcb
