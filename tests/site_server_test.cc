// Direct tests for the generic origin SiteServer: routing, per-path delays,
// connection handling.
#include <gtest/gtest.h>

#include "src/browser/browser.h"
#include "src/sites/site_server.h"

namespace rcb {
namespace {

class SiteServerTest : public ::testing::Test {
 protected:
  SiteServerTest() : network_(&loop_) {
    network_.AddHost("srv", {});
    network_.AddHost("cli", {});
    network_.SetLatency("cli", "srv", Duration::Millis(5));
    server_ = std::make_unique<SiteServer>(&loop_, &network_, "srv");
    client_ = std::make_unique<Browser>(&loop_, &network_, "cli");
  }

  FetchResult Get(const std::string& path, const std::string& query = "") {
    FetchResult out;
    bool done = false;
    client_->Fetch(HttpMethod::kGet, Url::Make("http", "srv", 80, path, query),
                   "", "", [&](FetchResult result) {
                     out = std::move(result);
                     done = true;
                   });
    loop_.RunUntilCondition([&] { return done; });
    return out;
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> server_;
  std::unique_ptr<Browser> client_;
};

TEST_F(SiteServerTest, ExactRouteDispatch) {
  server_->Route("/a", [](const HttpRequest&) {
    return HttpResponse::Ok("text/plain", "A");
  });
  server_->Route("/b", [](const HttpRequest&) {
    return HttpResponse::Ok("text/plain", "B");
  });
  EXPECT_EQ(Get("/a").response.body, "A");
  EXPECT_EQ(Get("/b").response.body, "B");
  EXPECT_EQ(Get("/c").response.status_code, 404);
}

TEST_F(SiteServerTest, PrefixRouteAndPrecedence) {
  server_->RoutePrefix("/img/", [](const HttpRequest& request) {
    return HttpResponse::Ok("text/plain", "prefix:" + request.Path());
  });
  server_->Route("/img/special.png", [](const HttpRequest&) {
    return HttpResponse::Ok("text/plain", "exact");
  });
  EXPECT_EQ(Get("/img/a.png").response.body, "prefix:/img/a.png");
  EXPECT_EQ(Get("/img/special.png").response.body, "exact");  // exact wins
  EXPECT_EQ(Get("/imgs/a.png").response.status_code, 404);
}

TEST_F(SiteServerTest, DefaultHandler) {
  server_->SetDefaultHandler([](const HttpRequest& request) {
    return HttpResponse::Ok("text/plain", "fallback:" + request.Path());
  });
  EXPECT_EQ(Get("/anything").response.body, "fallback:/anything");
}

TEST_F(SiteServerTest, ServeStaticContentType) {
  server_->ServeStatic("/s.css", "text/css", ".x{}");
  FetchResult result = Get("/s.css");
  EXPECT_EQ(result.response.headers.Get("Content-Type").value(), "text/css");
  EXPECT_EQ(result.response.body, ".x{}");
}

TEST_F(SiteServerTest, QueryStringReachesHandler) {
  server_->Route("/search", [](const HttpRequest& request) {
    return HttpResponse::Ok("text/plain", request.QueryParams()["q"]);
  });
  EXPECT_EQ(Get("/search", "q=hello%20there").response.body, "hello there");
}

TEST_F(SiteServerTest, ProcessingDelayDefersResponse) {
  server_->ServeStatic("/x", "text/plain", "x");
  server_->set_processing_delay(Duration::Millis(200));
  FetchResult result = Get("/x");
  // handshake 10 + request 5 + delay 200 + response 5 = 220 ms.
  EXPECT_EQ(result.elapsed.millis(), 220);
}

TEST_F(SiteServerTest, PerPathDelayOverridesDefault) {
  server_->ServeStatic("/fast", "text/plain", "f");
  server_->ServeStatic("/slow", "text/plain", "s");
  server_->set_processing_delay(Duration::Millis(10));
  server_->SetPathDelay("/slow", Duration::Millis(500));
  Duration fast = Get("/fast").elapsed;
  Duration slow = Get("/slow").elapsed;
  EXPECT_GT(slow - fast, Duration::Millis(400));
}

TEST_F(SiteServerTest, RequestCounter) {
  server_->ServeStatic("/x", "text/plain", "x");
  EXPECT_EQ(server_->requests_served(), 0u);
  Get("/x");
  Get("/x");
  Get("/missing");
  EXPECT_EQ(server_->requests_served(), 3u);
}

TEST_F(SiteServerTest, SequentialRequestsOnOneConnection) {
  server_->ServeStatic("/1", "text/plain", "one");
  server_->ServeStatic("/2", "text/plain", "two");
  // The browser reuses its connection; the server must keep parsing
  // subsequent requests on it.
  EXPECT_EQ(Get("/1").response.body, "one");
  EXPECT_EQ(Get("/2").response.body, "two");
  EXPECT_EQ(Get("/1").response.body, "one");
}

TEST_F(SiteServerTest, MalformedRequestDropsConnectionOnly) {
  server_->ServeStatic("/x", "text/plain", "x");
  auto endpoint = network_.Connect("cli", "srv", 80);
  ASSERT_TRUE(endpoint.ok());
  (*endpoint)->Send("NOT AN HTTP REQUEST\r\n\r\n");
  loop_.Run();
  // The bad connection is dropped; a fresh well-formed request still works.
  EXPECT_EQ(Get("/x").response.body, "x");
}

TEST_F(SiteServerTest, StopsListeningOnDestruction) {
  server_->ServeStatic("/x", "text/plain", "x");
  EXPECT_EQ(Get("/x").response.status_code, 200);
  server_.reset();
  FetchResult result = Get("/x");
  EXPECT_FALSE(result.status.ok());
}

TEST_F(SiteServerTest, CustomPort) {
  SiteServer alt(&loop_, &network_, "srv", 8080);
  alt.ServeStatic("/p", "text/plain", "alt");
  FetchResult out;
  bool done = false;
  client_->Fetch(HttpMethod::kGet, Url::Make("http", "srv", 8080, "/p"), "", "",
                 [&](FetchResult result) {
                   out = std::move(result);
                   done = true;
                 });
  loop_.RunUntilCondition([&] { return done; });
  EXPECT_EQ(out.response.body, "alt");
}

}  // namespace
}  // namespace rcb
