// Unit/integration tests for the simulated Browser against a SiteServer.
#include <gtest/gtest.h>

#include "src/browser/browser.h"
#include "src/browser/object_cache.h"
#include "src/browser/resources.h"
#include "src/sites/site_server.h"

namespace rcb {
namespace {

class BrowserTest : public ::testing::Test {
 protected:
  BrowserTest() : network_(&loop_) {
    network_.AddHost("user-pc", {});
    network_.AddHost("www.site.test", {});
    network_.SetLatency("user-pc", "www.site.test", Duration::Millis(10));
    server_ = std::make_unique<SiteServer>(&loop_, &network_, "www.site.test");
    browser_ = std::make_unique<Browser>(&loop_, &network_, "user-pc");
  }

  Url SiteUrl(const std::string& path) {
    return Url::Make("http", "www.site.test", 80, path);
  }

  // Navigates and runs the loop until the load settles.
  Status NavigateAndWait(const Url& url, PageLoadStats* stats = nullptr) {
    Status out;
    bool done = false;
    browser_->Navigate(url, [&](const Status& status, const PageLoadStats& s) {
      out = status;
      if (stats != nullptr) {
        *stats = s;
      }
      done = true;
    });
    loop_.RunUntilCondition([&] { return done; });
    return out;
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> server_;
  std::unique_ptr<Browser> browser_;
};

TEST_F(BrowserTest, LoadsSimplePage) {
  server_->ServeStatic("/", "text/html",
                       "<html><head><title>Hi</title></head>"
                       "<body><p>content</p></body></html>");
  PageLoadStats stats;
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/"), &stats).ok());
  ASSERT_TRUE(browser_->has_page());
  EXPECT_EQ(browser_->document()->Title(), "Hi");
  EXPECT_EQ(stats.object_count, 0u);
  EXPECT_GT(stats.html_time, Duration::Zero());
  EXPECT_EQ(browser_->current_url().ToString(), "http://www.site.test/");
}

TEST_F(BrowserTest, HtmlTimeIncludesHandshakeAndTransfer) {
  server_->ServeStatic("/", "text/html", "<html><body>x</body></html>");
  PageLoadStats stats;
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/"), &stats).ok());
  // 10 ms one-way: handshake (2x) + request (1x) + response (1x) = 40 ms.
  EXPECT_EQ(stats.html_time.millis(), 40);
}

TEST_F(BrowserTest, FetchesSupplementaryObjects) {
  server_->ServeStatic("/", "text/html",
                       "<html><head><link rel=\"stylesheet\" href=\"/s.css\">"
                       "</head><body><img src=\"/a.png\"><img src=\"/b.png\">"
                       "<script src=\"/app.js\"></script></body></html>");
  server_->ServeStatic("/s.css", "text/css", "body{}");
  server_->ServeStatic("/a.png", "image/png", std::string(100, 'a'));
  server_->ServeStatic("/b.png", "image/png", std::string(200, 'b'));
  server_->ServeStatic("/app.js", "application/javascript", "f()");
  PageLoadStats stats;
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/"), &stats).ok());
  EXPECT_EQ(stats.object_count, 4u);
  EXPECT_EQ(stats.object_bytes, 100u + 200u + 6u + 3u);
  EXPECT_EQ(browser_->cache().size(), 4u);
  EXPECT_EQ(browser_->recorded_resources().size(), 4u);
}

TEST_F(BrowserTest, SecondLoadServedFromCache) {
  server_->ServeStatic("/", "text/html",
                       "<html><body><img src=\"/a.png\"></body></html>");
  server_->ServeStatic("/a.png", "image/png", std::string(100, 'a'));
  PageLoadStats first;
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/"), &first).ok());
  EXPECT_EQ(first.objects_from_cache, 0u);
  PageLoadStats second;
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/"), &second).ok());
  EXPECT_EQ(second.objects_from_cache, 1u);
  EXPECT_EQ(second.objects_time, Duration::Zero());
}

TEST_F(BrowserTest, CacheDisabledAlwaysFetches) {
  browser_->set_cache_enabled(false);
  server_->ServeStatic("/", "text/html",
                       "<html><body><img src=\"/a.png\"></body></html>");
  server_->ServeStatic("/a.png", "image/png", "imgdata");
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/")).ok());
  PageLoadStats second;
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/"), &second).ok());
  EXPECT_EQ(second.objects_from_cache, 0u);
  EXPECT_EQ(browser_->cache().size(), 0u);
}

TEST_F(BrowserTest, FollowsRedirects) {
  server_->Route("/old", [](const HttpRequest&) {
    HttpResponse response;
    response.status_code = 302;
    response.reason = "Found";
    response.headers.Set("Location", "/new");
    return response;
  });
  server_->ServeStatic("/new", "text/html",
                       "<html><head><title>New</title></head><body></body></html>");
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/old")).ok());
  EXPECT_EQ(browser_->document()->Title(), "New");
  EXPECT_EQ(browser_->current_url().path(), "/new");
}

TEST_F(BrowserTest, RedirectLoopFails) {
  server_->Route("/loop", [](const HttpRequest&) {
    HttpResponse response;
    response.status_code = 302;
    response.headers.Set("Location", "/loop");
    return response;
  });
  EXPECT_FALSE(NavigateAndWait(SiteUrl("/loop")).ok());
}

TEST_F(BrowserTest, NotFoundIsError) {
  EXPECT_FALSE(NavigateAndWait(SiteUrl("/missing")).ok());
}

TEST_F(BrowserTest, ConnectionRefusedIsError) {
  network_.AddHost("www.dead.test", {});
  auto url = Url::Make("http", "www.dead.test", 80, "/");
  EXPECT_EQ(NavigateAndWait(url).code(), StatusCode::kUnavailable);
}

TEST_F(BrowserTest, CookiesStoredAndSent) {
  server_->Route("/set", [](const HttpRequest&) {
    HttpResponse response = HttpResponse::Ok("text/html", "<html></html>");
    response.headers.Add("Set-Cookie", "sid=xyz; Path=/");
    return response;
  });
  std::string seen_cookie;
  server_->Route("/check", [&](const HttpRequest& request) {
    seen_cookie = request.headers.Get("Cookie").value_or("");
    return HttpResponse::Ok("text/html", "<html></html>");
  });
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/set")).ok());
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/check")).ok());
  EXPECT_EQ(seen_cookie, "sid=xyz");
}

TEST_F(BrowserTest, ClickLinkNavigates) {
  server_->ServeStatic("/", "text/html",
                       "<html><body><a id=\"go\" href=\"/next\">go</a></body></html>");
  server_->ServeStatic("/next", "text/html",
                       "<html><head><title>Next</title></head><body></body></html>");
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/")).ok());
  Element* anchor = browser_->document()->ById("go");
  ASSERT_NE(anchor, nullptr);
  bool done = false;
  ASSERT_TRUE(browser_
                  ->ClickLink(anchor,
                              [&](const Status&, const PageLoadStats&) {
                                done = true;
                              })
                  .ok());
  loop_.RunUntilCondition([&] { return done; });
  EXPECT_EQ(browser_->document()->Title(), "Next");
}

TEST_F(BrowserTest, ClickLinkRejectsNonAnchor) {
  server_->ServeStatic("/", "text/html",
                       "<html><body><p id=\"p\">x</p></body></html>");
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/")).ok());
  EXPECT_FALSE(browser_
                   ->ClickLink(browser_->document()->ById("p"),
                               [](const Status&, const PageLoadStats&) {})
                   .ok());
}

TEST_F(BrowserTest, SubmitFormGetEncodesQuery) {
  server_->ServeStatic("/", "text/html",
                       "<html><body><form id=\"f\" action=\"/search\" method=\"get\">"
                       "<input type=\"text\" name=\"q\" value=\"\">"
                       "<input type=\"submit\" name=\"go\" value=\"Go\">"
                       "</form></body></html>");
  std::string seen_query;
  server_->Route("/search", [&](const HttpRequest& request) {
    seen_query = request.QueryString();
    return HttpResponse::Ok("text/html", "<html><body>results</body></html>");
  });
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/")).ok());
  Element* form = browser_->document()->ById("f");
  ASSERT_TRUE(Browser::FillField(form, "q", "macbook air").ok());
  bool done = false;
  ASSERT_TRUE(browser_
                  ->SubmitForm(form,
                               [&](const Status&, const PageLoadStats&) {
                                 done = true;
                               })
                  .ok());
  loop_.RunUntilCondition([&] { return done; });
  EXPECT_EQ(seen_query, "q=macbook%20air");
}

TEST_F(BrowserTest, SubmitFormPostSendsBody) {
  server_->ServeStatic("/", "text/html",
                       "<html><body><form id=\"f\" action=\"/submit\" method=\"post\">"
                       "<input type=\"text\" name=\"a\" value=\"1\">"
                       "<input type=\"hidden\" name=\"h\" value=\"2\">"
                       "<input type=\"checkbox\" name=\"c\" value=\"3\">"
                       "<input type=\"checkbox\" name=\"d\" value=\"4\" checked>"
                       "<textarea name=\"t\">text</textarea>"
                       "<select name=\"s\"><option value=\"x\">X</option>"
                       "<option value=\"y\" selected>Y</option></select>"
                       "</form></body></html>");
  std::string seen_body;
  server_->Route("/submit", [&](const HttpRequest& request) {
    seen_body = request.body;
    return HttpResponse::Ok("text/html", "<html><body>done</body></html>");
  });
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/")).ok());
  bool done = false;
  ASSERT_TRUE(browser_
                  ->SubmitForm(browser_->document()->ById("f"),
                               [&](const Status&, const PageLoadStats&) {
                                 done = true;
                               })
                  .ok());
  loop_.RunUntilCondition([&] { return done; });
  // Unchecked checkbox c omitted; checked d included; select picks y.
  EXPECT_EQ(seen_body, "a=1&h=2&d=4&t=text&s=y");
}

TEST_F(BrowserTest, FormPostRedirectFollowed) {
  server_->ServeStatic("/", "text/html",
                       "<html><body><form id=\"f\" action=\"/add\" method=\"post\">"
                       "<input type=\"hidden\" name=\"x\" value=\"1\">"
                       "</form></body></html>");
  server_->Route("/add", [](const HttpRequest&) {
    HttpResponse response;
    response.status_code = 302;
    response.headers.Set("Location", "/done");
    return response;
  });
  server_->ServeStatic("/done", "text/html",
                       "<html><head><title>Done</title></head><body></body></html>");
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/")).ok());
  bool done = false;
  ASSERT_TRUE(browser_
                  ->SubmitForm(browser_->document()->ById("f"),
                               [&](const Status&, const PageLoadStats&) {
                                 done = true;
                               })
                  .ok());
  loop_.RunUntilCondition([&] { return done; });
  EXPECT_EQ(browser_->document()->Title(), "Done");
}

TEST_F(BrowserTest, FillFieldErrors) {
  server_->ServeStatic("/", "text/html",
                       "<html><body><form id=\"f\">"
                       "<input name=\"known\" value=\"\"></form></body></html>");
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/")).ok());
  Element* form = browser_->document()->ById("f");
  EXPECT_TRUE(Browser::FillField(form, "known", "v").ok());
  EXPECT_EQ(Browser::FillField(form, "unknown", "v").code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(Browser::FillField(nullptr, "x", "v").ok());
}

TEST_F(BrowserTest, MutateDocumentFiresChangeListener) {
  server_->ServeStatic("/", "text/html",
                       "<html><body><div id=\"d\">old</div></body></html>");
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/")).ok());
  int changes = 0;
  browser_->SetDocumentChangeListener([&] { ++changes; });
  browser_->MutateDocument([](Document* document) {
    Element* div = document->ById("d");
    div->RemoveAllChildren();
    div->AppendChild(MakeText("new"));
  });
  EXPECT_EQ(changes, 1);
  EXPECT_EQ(browser_->document()->ById("d")->TextContent(), "new");
}

TEST_F(BrowserTest, PersistentConnectionReused) {
  server_->ServeStatic("/", "text/html", "<html><body>1</body></html>");
  server_->ServeStatic("/two", "text/html", "<html><body>2</body></html>");
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/")).ok());
  PageLoadStats second;
  ASSERT_TRUE(NavigateAndWait(SiteUrl("/two"), &second).ok());
  // No handshake on the reused connection: request + response = 20 ms.
  EXPECT_EQ(second.html_time.millis(), 20);
}

TEST_F(BrowserTest, ObjectCacheLookupByKey) {
  ObjectCache cache;
  Url url = Url::Make("http", "h", 80, "/img.png");
  std::string key = cache.Put(url, "image/png", "bytes");
  const CacheEntry* by_key = cache.LookupByKey(key);
  ASSERT_NE(by_key, nullptr);
  EXPECT_EQ(by_key->body, "bytes");
  EXPECT_EQ(cache.LookupByKey("ck-bogus"), nullptr);
  // Re-put same URL keeps the key and replaces the body.
  std::string key2 = cache.Put(url, "image/png", "other");
  EXPECT_EQ(key, key2);
  EXPECT_EQ(cache.LookupByKey(key)->body, "other");
}

TEST_F(BrowserTest, ObjectCacheStats) {
  ObjectCache cache;
  Url url = Url::Make("http", "h", 80, "/a");
  cache.Put(url, "text/plain", "12345");
  EXPECT_EQ(cache.total_bytes(), 5u);
  EXPECT_NE(cache.Lookup(url), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  cache.Lookup(Url::Make("http", "h", 80, "/b"));
  EXPECT_EQ(cache.misses(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.total_bytes(), 0u);
}

TEST_F(BrowserTest, CollectResourcesKindsAndDedup) {
  auto doc = ParseDocument(
      "<html><head><link rel=\"stylesheet\" href=\"/s.css\">"
      "<link rel=\"alternate\" href=\"/feed\"></head>"
      "<body background=\"/bg.png\"><img src=\"/a.png\"><img src=\"/a.png\">"
      "<script src=\"/j.js\"></script><iframe src=\"/f.html\"></iframe>"
      "<a href=\"/nav\">x</a><img src=\"data:image/png;base64,xx\">"
      "<img src=\"javascript:void(0)\"></body></html>");
  Url base = Url::Make("http", "h", 80, "/");
  auto resources = CollectResources(doc.get(), base);
  // s.css, bg.png, a.png (once), j.js, f.html — not the alternate link,
  // anchor, data: or javascript: URLs.
  ASSERT_EQ(resources.size(), 5u);
  EXPECT_EQ(resources[0].kind, "stylesheet");
  EXPECT_EQ(resources[1].kind, "image");  // body background
  EXPECT_EQ(resources[2].kind, "image");
  EXPECT_EQ(resources[3].kind, "script");
  EXPECT_EQ(resources[4].kind, "frame");
}

TEST_F(BrowserTest, ReplaceDocumentSwapsContentWithoutNetwork) {
  uint64_t messages_before = network_.total_messages();
  auto doc = ParseDocument("<html><head><title>Injected</title></head></html>");
  browser_->ReplaceDocument(std::move(doc), SiteUrl("/injected"));
  EXPECT_EQ(browser_->document()->Title(), "Injected");
  EXPECT_EQ(network_.total_messages(), messages_before);
}

}  // namespace
}  // namespace rcb
