// Unit tests for the XML writer/parser pair that carries Fig. 4 payloads.
#include <gtest/gtest.h>

#include "src/util/rand.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace rcb {
namespace {

TEST(XmlWriterTest, SimpleDocument) {
  XmlWriter writer;
  writer.WriteDeclaration();
  writer.StartElement("root");
  writer.WriteTextElement("a", "hello");
  writer.EndElement();
  EXPECT_EQ(writer.TakeString(),
            "<?xml version='1.0' encoding='utf-8'?><root><a>hello</a></root>");
}

TEST(XmlWriterTest, Attributes) {
  XmlWriter writer;
  writer.StartElement("e");
  writer.WriteAttribute("k", "v<&\">");
  writer.EndElement();
  EXPECT_EQ(writer.TakeString(), "<e k=\"v&lt;&amp;&quot;&gt;\"/>");
}

TEST(XmlWriterTest, EmptyElementSelfCloses) {
  XmlWriter writer;
  writer.StartElement("empty");
  writer.EndElement();
  EXPECT_EQ(writer.TakeString(), "<empty/>");
}

TEST(XmlWriterTest, TextIsEscaped) {
  XmlWriter writer;
  writer.StartElement("t");
  writer.WriteText("a<b>&c");
  writer.EndElement();
  EXPECT_EQ(writer.TakeString(), "<t>a&lt;b&gt;&amp;c</t>");
}

TEST(XmlWriterTest, CdataPassthrough) {
  XmlWriter writer;
  writer.StartElement("c");
  writer.WriteCdata("<raw>&stuff");
  writer.EndElement();
  EXPECT_EQ(writer.TakeString(), "<c><![CDATA[<raw>&stuff]]></c>");
}

TEST(XmlWriterTest, CdataSplitsTerminator) {
  XmlWriter writer;
  writer.StartElement("c");
  writer.WriteCdata("a]]>b");
  writer.EndElement();
  std::string out = writer.TakeString();
  // Whatever the exact split, parsing must recover the original content.
  auto parsed = ParseXml(out);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->text, "a]]>b");
}

TEST(XmlWriterTest, NestedElements) {
  XmlWriter writer;
  writer.StartElement("a");
  writer.StartElement("b");
  writer.StartElement("c");
  writer.WriteText("x");
  writer.EndElement();
  writer.EndElement();
  writer.EndElement();
  EXPECT_EQ(writer.TakeString(), "<a><b><c>x</c></b></a>");
}

TEST(XmlParserTest, ParsesDeclarationAndRoot) {
  auto root = ParseXml("<?xml version='1.0'?><root/>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->name, "root");
}

TEST(XmlParserTest, ParsesAttributes) {
  auto root = ParseXml("<e a=\"1\" b='two' c=\"x&amp;y\"/>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->Attr("a"), "1");
  EXPECT_EQ((*root)->Attr("b"), "two");
  EXPECT_EQ((*root)->Attr("c"), "x&y");
  EXPECT_EQ((*root)->Attr("missing"), "");
}

TEST(XmlParserTest, ParsesChildrenInOrder) {
  auto root = ParseXml("<r><a/><b/><a/></r>");
  ASSERT_TRUE(root.ok());
  ASSERT_EQ((*root)->children.size(), 3u);
  EXPECT_EQ((*root)->children[0]->name, "a");
  EXPECT_EQ((*root)->children[1]->name, "b");
  EXPECT_EQ((*root)->FindChildren("a").size(), 2u);
  EXPECT_EQ((*root)->FindChild("b")->name, "b");
  EXPECT_EQ((*root)->FindChild("zzz"), nullptr);
}

TEST(XmlParserTest, TextAndCdataConcatenate) {
  auto root = ParseXml("<t>one <![CDATA[<two>]]> three</t>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->text, "one <two> three");
}

TEST(XmlParserTest, CommentsIgnored) {
  auto root = ParseXml("<!-- head --><r><!-- inner -->x</r>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->text, "x");
}

TEST(XmlParserTest, EntityDecodingInText) {
  auto root = ParseXml("<t>&lt;a&gt;&amp;</t>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->text, "<a>&");
}

TEST(XmlParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());                 // unterminated
  EXPECT_FALSE(ParseXml("<a></b>").ok());             // mismatched close
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());      // interleaved
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());            // two roots
  EXPECT_FALSE(ParseXml("<a x=1/>").ok());            // unquoted attribute
  EXPECT_FALSE(ParseXml("<a x=\"1/>").ok());          // unterminated value
  EXPECT_FALSE(ParseXml("<a><![CDATA[zzz</a>").ok()); // unterminated CDATA
  EXPECT_FALSE(ParseXml("text only").ok());
}

TEST(XmlParserTest, WhitespaceAroundRootTolerated) {
  auto root = ParseXml("  \n<r/>\n  ");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->name, "r");
}

// Round-trip property: writer output always parses back to the same tree.
class XmlRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlRoundTripTest, RandomTreeRoundTrips) {
  Rng rng(GetParam());
  XmlWriter writer;
  writer.WriteDeclaration();
  writer.StartElement("root");
  size_t children = rng.NextBelow(6) + 1;
  std::vector<std::string> payloads;
  for (size_t i = 0; i < children; ++i) {
    std::string payload = rng.NextBytes(rng.NextBelow(200));
    payloads.push_back(payload);
    writer.StartElement("child");
    writer.WriteAttribute("i", std::to_string(i));
    writer.WriteCdata(payload);
    writer.EndElement();
  }
  writer.EndElement();
  auto parsed = ParseXml(writer.TakeString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ((*parsed)->children.size(), children);
  for (size_t i = 0; i < children; ++i) {
    EXPECT_EQ((*parsed)->children[i]->text, payloads[i]);
    EXPECT_EQ((*parsed)->children[i]->Attr("i"), std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace rcb
