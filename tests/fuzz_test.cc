// Fuzz/property suites: every parser in the stack must reject or tolerate
// arbitrary and mutated input without crashing, and the structured codecs
// must be closed under round trips.
#include <gtest/gtest.h>

#include "src/core/protocol.h"
#include "src/delta/patch_applier.h"
#include "src/delta/patch_codec.h"
#include "src/host/rcb_host.h"
#include "src/html/parser.h"
#include "src/html/serializer.h"
#include "src/http/http_parser.h"
#include "src/http/url.h"
#include "src/util/rand.h"
#include "src/xml/xml_parser.h"

namespace rcb {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  return rng->NextBytes(rng->NextBelow(max_len) + 1);
}

// Mutates a valid input: flip bytes, truncate, duplicate a slice.
std::string Mutate(Rng* rng, std::string input) {
  if (input.empty()) {
    return input;
  }
  switch (rng->NextBelow(4)) {
    case 0: {  // flip random bytes
      for (int i = 0; i < 4; ++i) {
        input[rng->NextBelow(input.size())] =
            static_cast<char>(rng->NextBelow(256));
      }
      break;
    }
    case 1:  // truncate
      input.resize(rng->NextBelow(input.size()));
      break;
    case 2: {  // duplicate a slice into the middle
      size_t from = rng->NextBelow(input.size());
      size_t len = rng->NextBelow(input.size() - from) + 1;
      input.insert(rng->NextBelow(input.size()), input.substr(from, len));
      break;
    }
    case 3:  // append garbage
      input += RandomBytes(rng, 32);
      break;
  }
  return input;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, HttpRequestParserToleratesGarbage) {
  Rng rng(GetParam());
  HttpRequestParser parser;
  for (int i = 0; i < 20; ++i) {
    auto result = parser.Feed(RandomBytes(&rng, 256));
    if (!result.ok()) {
      return;  // rejected cleanly — rebuild would be required, as in prod
    }
  }
}

TEST_P(FuzzTest, HttpRequestParserToleratesMutatedRequests) {
  Rng rng(GetParam() ^ 0xA5A5);
  HttpRequest valid;
  valid.method = HttpMethod::kPost;
  valid.target = "/?hmac=abc";
  valid.headers.Set("Host", "h");
  valid.body = "pid=p1&ts=5&actions=";
  for (int i = 0; i < 20; ++i) {
    HttpRequestParser parser;
    auto result = parser.Feed(Mutate(&rng, valid.Serialize()));
    (void)result;  // any Status/optional outcome is fine; crashing is not
  }
}

TEST_P(FuzzTest, HttpRequestParserToleratesTruncatedThenFreshRequest) {
  // A mid-transfer connection reset (FaultInjector kReset) truncates a
  // request at an arbitrary byte. A parser that saw the fragment must either
  // reject the follow-up bytes cleanly or keep producing well-formed
  // requests — never crash, never hang.
  Rng rng(GetParam() ^ 0xDDDD);
  HttpRequest valid;
  valid.method = HttpMethod::kPost;
  valid.target = "/?hmac=abc";
  valid.headers.Set("Host", "h");
  valid.body = "pid=p1&ts=5&seq=9&timeouts=2&resync=1&actions=";
  std::string wire = valid.Serialize();
  for (int i = 0; i < 20; ++i) {
    HttpRequestParser parser;
    size_t cut = rng.NextBelow(wire.size() + 1);
    auto first = parser.Feed(wire.substr(0, cut));
    if (!first.ok()) {
      continue;  // fragment already rejected; prod would rebuild the parser
    }
    auto second = parser.Feed(wire);
    (void)second;  // any Status outcome is fine; crashing is not
  }
}

TEST_P(FuzzTest, HttpRequestParserToleratesInterleavedFragments) {
  // Two requests chopped into random fragments and interleaved on one
  // connection — the byte soup a reset mid-pipeline can leave behind.
  Rng rng(GetParam() ^ 0xEEEE);
  HttpRequest a;
  a.method = HttpMethod::kPost;
  a.target = "/";
  a.headers.Set("Host", "h");
  a.body = "pid=p1&ts=5&actions=";
  HttpRequest b;
  b.method = HttpMethod::kGet;
  b.target = "/?resume=p1&hmac=feed";
  b.headers.Set("Host", "h");
  std::string wires[2] = {a.Serialize(), b.Serialize()};
  for (int i = 0; i < 20; ++i) {
    size_t offsets[2] = {0, 0};
    HttpRequestParser parser;
    bool dead = false;
    while (!dead && (offsets[0] < wires[0].size() ||
                     offsets[1] < wires[1].size())) {
      size_t which = rng.NextBelow(2);
      if (offsets[which] >= wires[which].size()) {
        which = 1 - which;
      }
      size_t remaining = wires[which].size() - offsets[which];
      size_t len = rng.NextBelow(remaining) + 1;
      auto result = parser.Feed(wires[which].substr(offsets[which], len));
      offsets[which] += len;
      dead = !result.ok();  // clean rejection ends the connection, as in prod
    }
  }
}

TEST_P(FuzzTest, HttpRequestParserBoundsHeadBuffering) {
  // Slow-loris style drip-feed: an endless header section arrives one small
  // fragment at a time. With a head cap the parser must fail with
  // kResourceExhausted instead of buffering without bound.
  Rng rng(GetParam() ^ 0xB10C);
  constexpr size_t kHeadCap = 512;
  HttpRequestParser parser;
  parser.set_limits({kHeadCap, 0});
  std::string pending = "POST / HTTP/1.1\r\n";
  size_t fed = 0;
  while (fed < 64 * 1024) {
    while (pending.size() < 8) {
      pending += "X-Pad: " + std::string(rng.NextBelow(24) + 1, 'a') + "\r\n";
    }
    size_t take = rng.NextBelow(pending.size()) + 1;
    auto result = parser.Feed(pending.substr(0, take));
    pending.erase(0, take);
    fed += take;
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      // The buffer never grew past the cap plus one in-flight fragment.
      EXPECT_LE(parser.buffered_bytes(), kHeadCap + take);
      return;
    }
    ASSERT_FALSE(result->has_value()) << "drip-feed never completes a head";
  }
  FAIL() << "parser buffered " << fed << " bytes without tripping the cap";
}

TEST_P(FuzzTest, HttpRequestParserRejectsOversizedDeclaredBody) {
  // A Content-Length above the body cap must be rejected as soon as the head
  // completes — before any body fragment is buffered.
  Rng rng(GetParam() ^ 0x0B0D);
  constexpr size_t kBodyCap = 4096;
  for (int i = 0; i < 20; ++i) {
    HttpRequestParser parser;
    parser.set_limits({0, kBodyCap});
    size_t declared = kBodyCap + 1 + rng.NextBelow(1 << 20);
    std::string head = "POST / HTTP/1.1\r\nContent-Length: " +
                       std::to_string(declared) + "\r\n\r\n";
    // Deliver the head in random fragments, as a real connection would.
    Status failure = Status::Ok();
    size_t offset = 0;
    while (offset < head.size()) {
      size_t take = rng.NextBelow(head.size() - offset) + 1;
      auto result = parser.Feed(head.substr(offset, take));
      offset += take;
      if (!result.ok()) {
        failure = result.status();
        break;
      }
      EXPECT_FALSE(result->has_value());
    }
    EXPECT_EQ(failure.code(), StatusCode::kResourceExhausted)
        << "declared length " << declared << " accepted";
    // A request within the cap still parses on a fresh parser.
    HttpRequestParser ok_parser;
    ok_parser.set_limits({0, kBodyCap});
    std::string body(rng.NextBelow(kBodyCap) + 1, 'b');
    auto ok = ok_parser.Feed("POST / HTTP/1.1\r\nContent-Length: " +
                             std::to_string(body.size()) + "\r\n\r\n" + body);
    ASSERT_TRUE(ok.ok()) << ok.status();
    ASSERT_TRUE(ok->has_value());
    EXPECT_EQ((*ok)->body.size(), body.size());
  }
}

TEST_P(FuzzTest, HttpRequestParserCapsOversizedBodyFragments) {
  // An in-cap Content-Length with caps disabled vs a malicious one: feeding
  // oversized random body fragments after a valid head must never make the
  // parser crash or mis-frame the following pipelined request.
  Rng rng(GetParam() ^ 0xF00D);
  for (int i = 0; i < 20; ++i) {
    HttpRequestParser parser;
    parser.set_limits({256, 256});
    std::string head_ok = "POST / HTTP/1.1\r\nContent-Length: 8\r\n\r\n";
    auto first = parser.Feed(head_ok + RandomBytes(&rng, 8));
    if (!first.ok()) {
      continue;  // random "body" bytes may legally be rejected later
    }
    // Now drip random oversized fragments; the parser either rejects them
    // cleanly (head cap) or keeps waiting — it must never grow unboundedly.
    for (int j = 0; j < 16; ++j) {
      auto result = parser.Feed(RandomBytes(&rng, 128));
      if (!result.ok()) {
        break;
      }
      EXPECT_LE(parser.buffered_bytes(), 256u + 128u);
    }
  }
}

TEST_P(FuzzTest, HttpResponseParserToleratesGarbage) {
  Rng rng(GetParam() ^ 0x1111);
  HttpResponseParser parser;
  for (int i = 0; i < 20; ++i) {
    auto result = parser.Feed(RandomBytes(&rng, 256));
    if (!result.ok()) {
      return;
    }
  }
}

TEST_P(FuzzTest, XmlParserToleratesGarbage) {
  Rng rng(GetParam() ^ 0x2222);
  for (int i = 0; i < 50; ++i) {
    auto result = ParseXml(RandomBytes(&rng, 512));
    (void)result;
  }
}

TEST_P(FuzzTest, XmlParserToleratesMutatedSnapshots) {
  Rng rng(GetParam() ^ 0x3333);
  Snapshot snapshot;
  snapshot.doc_time_ms = 42;
  snapshot.has_content = true;
  ElementPayload body;
  body.tag = "body";
  body.inner_html = "<div id=\"x\"><p>text</p></div>";
  snapshot.body = body;
  std::string valid = SerializeSnapshotXml(snapshot);
  for (int i = 0; i < 50; ++i) {
    auto result = ParseSnapshotXml(Mutate(&rng, valid));
    (void)result;
  }
}

TEST_P(FuzzTest, HtmlParserNeverFails) {
  // Browsers never reject HTML; neither do we. Any byte soup must yield a
  // scaffolded document.
  Rng rng(GetParam() ^ 0x4444);
  for (int i = 0; i < 30; ++i) {
    auto document = ParseDocument(RandomBytes(&rng, 1024));
    ASSERT_NE(document, nullptr);
    ASSERT_NE(document->document_element(), nullptr);
    // And the result serializes without crashing.
    std::string out = SerializeNode(*document);
    (void)out;
  }
}

TEST_P(FuzzTest, HtmlParserToleratesMutatedMarkup) {
  Rng rng(GetParam() ^ 0x5555);
  std::string valid =
      "<!DOCTYPE html><html><head><title>T</title><script>if(a<b){}</script>"
      "</head><body onload=\"x()\"><div id=\"d\" class=\"c\">"
      "<img src=\"/i.png\"><a href=\"/x?a=1&amp;b=2\">link</a>"
      "<form action=\"/f\"><input name=\"q\" value=\"v\"></form>"
      "</div></body></html>";
  for (int i = 0; i < 30; ++i) {
    auto document = ParseDocument(Mutate(&rng, valid));
    ASSERT_NE(document->document_element(), nullptr);
  }
}

TEST_P(FuzzTest, HtmlParseSerializeIsIdempotentOnGarbage) {
  // parse(serialize(parse(x))) == parse(serialize(...)) — normalization
  // reaches a fixed point even for byte soup, which is what guarantees
  // innerHTML round trips stabilize on the participant browser.
  Rng rng(GetParam() ^ 0x6666);
  std::string soup = RandomBytes(&rng, 512);
  auto first = ParseDocument(soup);
  std::string one = SerializeNode(*first);
  auto second = ParseDocument(one);
  std::string two = SerializeNode(*second);
  EXPECT_EQ(one, two);
}

TEST_P(FuzzTest, UrlParserToleratesGarbage) {
  Rng rng(GetParam() ^ 0x7777);
  for (int i = 0; i < 50; ++i) {
    auto url = Url::Parse(RandomBytes(&rng, 128));
    if (url.ok()) {
      // Whatever parsed must re-serialize to something parseable.
      auto again = Url::Parse(url->ToString());
      EXPECT_TRUE(again.ok());
    }
  }
}

TEST_P(FuzzTest, UrlResolveToleratesGarbageReferences) {
  Rng rng(GetParam() ^ 0x8888);
  auto base = Url::Parse("http://host/a/b/c?q=1");
  ASSERT_TRUE(base.ok());
  for (int i = 0; i < 50; ++i) {
    auto resolved = base->Resolve(RandomBytes(&rng, 64));
    if (resolved.ok()) {
      EXPECT_FALSE(resolved->host().empty());
      EXPECT_TRUE(resolved->path().empty() || resolved->path()[0] == '/');
    }
  }
}

TEST_P(FuzzTest, ActionDecoderToleratesGarbage) {
  Rng rng(GetParam() ^ 0x9999);
  for (int i = 0; i < 50; ++i) {
    auto actions = DecodeActions(RandomBytes(&rng, 256));
    (void)actions;
  }
}

TEST_P(FuzzTest, PollRequestDecoderToleratesGarbage) {
  Rng rng(GetParam() ^ 0xAAAA);
  for (int i = 0; i < 50; ++i) {
    auto poll = DecodePollRequest(RandomBytes(&rng, 256));
    (void)poll;
  }
}

TEST_P(FuzzTest, PollRequestRecoveryFieldsRoundTrip) {
  // seq/timeouts/resync are zero-omitted on the wire; any combination must
  // survive an encode/decode round trip.
  Rng rng(GetParam() ^ 0xCCCC);
  for (int i = 0; i < 20; ++i) {
    PollRequest poll;
    poll.participant_id = "p" + std::to_string(rng.NextBelow(100));
    poll.doc_time_ms = static_cast<int64_t>(rng.NextBelow(1000)) - 1;
    poll.seq = rng.NextBelow(1 << 20);
    poll.timeouts = rng.NextBelow(64);
    poll.resync = rng.NextBelow(2) == 1;
    auto decoded = DecodePollRequest(EncodePollRequest(poll));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->participant_id, poll.participant_id);
    EXPECT_EQ(decoded->doc_time_ms, poll.doc_time_ms);
    EXPECT_EQ(decoded->seq, poll.seq);
    EXPECT_EQ(decoded->timeouts, poll.timeouts);
    EXPECT_EQ(decoded->resync, poll.resync);
  }
}

TEST_P(FuzzTest, ElementPayloadDecoderToleratesGarbage) {
  Rng rng(GetParam() ^ 0xBBBB);
  for (int i = 0; i < 50; ++i) {
    auto payload = DecodeElementPayload(RandomBytes(&rng, 256));
    (void)payload;
  }
}

TEST_P(FuzzTest, PatchOpDecoderToleratesGarbage) {
  Rng rng(GetParam() ^ 0xD417A);
  for (int i = 0; i < 50; ++i) {
    auto ops = delta::DecodePatchOps(RandomBytes(&rng, 256));
    (void)ops;
  }
}

// A valid patch envelope, the fuzzing seed for the wire-format tests below.
delta::PatchEnvelope ValidPatchEnvelope() {
  delta::PatchEnvelope envelope;
  envelope.patch.base_doc_time_ms = 1000;
  envelope.patch.target_doc_time_ms = 2000;
  envelope.patch.base_digest = std::string(64, 'a');
  envelope.patch.target_digest = std::string(64, 'b');
  delta::PatchOp op;
  op.type = delta::PatchOpType::kSetAttr;
  op.path = {1, 2};
  op.name = "value";
  op.value = "x&y=z";
  envelope.patch.ops.push_back(op);
  op = {};
  op.type = delta::PatchOpType::kInsert;
  op.path = {1};
  op.index = 3;
  op.html = "<p class=\"q\">text</p>";
  envelope.patch.ops.push_back(op);
  return envelope;
}

TEST_P(FuzzTest, PatchXmlParserToleratesMutatedPatches) {
  // Truncations, bit flips, duplicated slices (which can duplicate whole op
  // lines), and appended garbage must all parse cleanly or fail cleanly —
  // and anything that parses must survive a re-serialize round trip.
  Rng rng(GetParam() ^ 0xF00D);
  std::string valid = delta::SerializePatchXml(ValidPatchEnvelope());
  for (int i = 0; i < 40; ++i) {
    auto parsed = delta::ParsePatchXml(Mutate(&rng, valid));
    if (parsed.ok()) {
      auto reparsed = delta::ParsePatchXml(delta::SerializePatchXml(*parsed));
      ASSERT_TRUE(reparsed.ok()) << reparsed.status();
      EXPECT_EQ(*reparsed, *parsed);
    }
  }
}

TEST_P(FuzzTest, PatchXmlParserToleratesGarbage) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 50; ++i) {
    std::string garbage = RandomBytes(&rng, 512);
    auto parsed = delta::ParsePatchXml(garbage);
    (void)parsed;
    (void)delta::LooksLikePatchXml(garbage);
  }
}

TEST_P(FuzzTest, MutatedPatchOpsNeverCorruptATreeSilently) {
  // Ops that decode are applied to a scratch tree; any Status outcome is
  // fine, crashing or corrupting memory is not (run under RCB_SANITIZE too).
  Rng rng(GetParam() ^ 0x0905);
  std::string valid = delta::EncodePatchOps(ValidPatchEnvelope().patch.ops);
  for (int i = 0; i < 40; ++i) {
    auto ops = delta::DecodePatchOps(Mutate(&rng, valid));
    if (!ops.ok()) {
      continue;
    }
    auto root = MakeElement("html");
    root->SetInnerHtml("<head><title>t</title></head>"
                       "<body><p>one</p><p>two</p></body>");
    (void)delta::ApplyPatchOps(root.get(), *ops);
  }
}

// ------------------------------------------------- host request router -----

// Stamps a one-paragraph document titled `title` into a hosted session.
void StampHostDoc(HostSession* session, const std::string& title) {
  session->browser->ReplaceDocument(
      ParseDocument("<html><head><title>" + title + "</title></head>"
                    "<body><p>" + title + "</p></body></html>"),
      Url::Make("http", "host-pc", session->port, "/doc"));
}

TEST_P(FuzzTest, HostRouterToleratesGarbageRequests) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 7);
  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  HostConfig config;
  config.limits.max_sessions = 4;
  RcbHost host(&loop, &network, config);
  ASSERT_TRUE(host.Start().ok());
  auto session_a = host.CreateSession("a");
  auto session_b = host.CreateSession("b");
  ASSERT_TRUE(session_a.ok());
  ASSERT_TRUE(session_b.ok());
  StampHostDoc(*session_a, "DocA");
  StampHostDoc(*session_b, "DocB");

  const std::vector<std::string> valid_targets = {
      "/",           "/s/a/",        "/s/b/status",        "/s/a/metrics",
      "/host/status", "/host/metrics", "/host/sessions?id=c", "/s/a/obj/x",
      "/s/b/",       "/s/a/stream",  "/s//",               "/s/a"};
  for (int i = 0; i < 64; ++i) {
    HttpRequest request;
    request.method =
        rng.NextBelow(2) == 0 ? HttpMethod::kGet : HttpMethod::kPost;
    request.target =
        rng.NextBelow(2) == 0
            ? Mutate(&rng, valid_targets[rng.NextBelow(valid_targets.size())])
            : RandomBytes(&rng, 48);
    if (rng.NextBelow(2) == 0) {
      PollRequest poll;
      poll.participant_id = RandomBytes(&rng, 8);
      poll.doc_time_ms = static_cast<int64_t>(rng.NextU64());
      request.body = Mutate(&rng, EncodePollRequest(poll));
    } else {
      request.body = RandomBytes(&rng, 64);
    }
    HttpResponse response = host.Route(request);
    EXPECT_TRUE(response.status_code == 200 ||
                (response.status_code >= 400 && response.status_code <= 503))
        << "unexpected status " << response.status_code << " for "
        << request.target;
  }

  // The registry survived the abuse: the admission cap held, the seeded
  // sessions are intact, and garbage traffic never mutated their documents.
  EXPECT_LE(host.session_count(), 4u);
  ASSERT_NE(host.FindSession("a"), nullptr);
  ASSERT_NE(host.FindSession("b"), nullptr);
  EXPECT_EQ((*session_a)->browser->document()->Title(), "DocA");
  EXPECT_EQ((*session_b)->browser->document()->Title(), "DocB");
  EXPECT_EQ((*session_a)->agent->metrics().doc_updates, 1u);
  EXPECT_EQ((*session_b)->agent->metrics().doc_updates, 1u);
}

TEST_P(FuzzTest, HostRouterKeepsInterleavedSessionsIsolated) {
  Rng rng(GetParam() * 0xD1B54A32D192ED03ULL + 3);
  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  RcbHost host(&loop, &network, HostConfig{});
  ASSERT_TRUE(host.Start().ok());
  std::vector<HostSession*> sessions;
  for (int s = 0; s < 3; ++s) {
    auto session = host.CreateSession("iso" + std::to_string(s));
    ASSERT_TRUE(session.ok());
    StampHostDoc(*session, "Iso" + std::to_string(s));
    sessions.push_back(*session);
  }
  // A reaped id that must keep answering 410, never a live session's data.
  ASSERT_TRUE(host.CreateSession("dead").ok());
  ASSERT_TRUE(host.CloseSession("dead").ok());

  // Pid strings deliberately overlap across sessions: participant state must
  // be keyed per agent, never by pid globally.
  std::set<std::string> polled[3];
  for (int i = 0; i < 96; ++i) {
    int s = static_cast<int>(rng.NextBelow(3));
    switch (rng.NextBelow(6)) {
      case 0: {  // expired id
        HttpRequest request;
        request.method = HttpMethod::kGet;
        request.target = "/s/dead/";
        EXPECT_EQ(host.Route(request).status_code, 410);
        break;
      }
      case 1: {  // unknown / malformed ids
        HttpRequest request;
        request.method = HttpMethod::kGet;
        request.target = rng.NextBelow(2) == 0 ? "/s/nosuch/"
                                               : "/s/" + RandomBytes(&rng, 12) + "/";
        int status = host.Route(request).status_code;
        EXPECT_TRUE(status == 400 || status == 404 || status == 410)
            << request.target << " -> " << status;
        break;
      }
      case 2: {  // id collision with a live session
        HttpRequest request;
        request.method = HttpMethod::kPost;
        request.target = "/host/sessions?id=iso" + std::to_string(s);
        EXPECT_EQ(host.Route(request).status_code, 409);
        break;
      }
      default: {  // interleaved poll: content must come from session s only
        PollRequest poll;
        poll.participant_id = "pid" + std::to_string(rng.NextBelow(4));
        poll.doc_time_ms = -1;  // always wants the current content
        polled[s].insert(poll.participant_id);
        HttpRequest request;
        request.method = HttpMethod::kPost;
        request.target = "/s/iso" + std::to_string(s) + "/";
        request.body = EncodePollRequest(poll);
        HttpResponse response = host.Route(request);
        EXPECT_EQ(response.status_code, 200);
        EXPECT_NE(response.body.find("Iso" + std::to_string(s)),
                  std::string::npos);
        for (int other = 0; other < 3; ++other) {
          if (other != s) {
            EXPECT_EQ(response.body.find("Iso" + std::to_string(other)),
                      std::string::npos)
                << "session iso" << s << " leaked iso" << other
                << " content";
          }
        }
        break;
      }
    }
  }

  // No session's roster holds a participant that never polled it, and no
  // session's own document moved.
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(sessions[s]->browser->document()->Title(),
              "Iso" + std::to_string(s));
    EXPECT_EQ(sessions[s]->agent->metrics().doc_updates, 1u);
    EXPECT_EQ(sessions[s]->agent->metrics().auth_failures, 0u);
    for (const std::string& pid :
         sessions[s]->agent->ConnectedParticipants()) {
      EXPECT_TRUE(polled[s].contains(pid))
          << "session iso" << s << " holds foreign participant " << pid;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(1, 13));

// --------------------------------------------------------- DOM properties --

class DomPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  // Builds a random but WELL-FORMED tree of depth <= 4. Tags are chosen from
  // the set with no implied-end-tag interactions, so any nesting the DOM can
  // express survives a serialize/parse round trip (p/ul/li combinations can
  // legitimately re-parse differently, as in real browsers).
  std::unique_ptr<Element> RandomTree(Rng* rng, int depth = 0) {
    static const char* kTags[] = {"div", "span", "section", "em", "i", "b"};
    auto element = MakeElement(kTags[rng->NextBelow(std::size(kTags))]);
    size_t attrs = rng->NextBelow(3);
    for (size_t i = 0; i < attrs; ++i) {
      element->SetAttribute(std::string("a") + std::to_string(i),
                            rng->NextToken(rng->NextBelow(8) + 1));
    }
    if (depth < 4) {
      size_t children = rng->NextBelow(4);
      for (size_t i = 0; i < children; ++i) {
        if (rng->NextBelow(3) == 0) {
          element->AppendChild(MakeText(rng->NextToken(rng->NextBelow(12) + 1)));
        } else {
          element->AppendChild(RandomTree(rng, depth + 1));
        }
      }
    }
    return element;
  }
};

TEST_P(DomPropertyTest, CloneSerializesIdentically) {
  Rng rng(GetParam());
  auto tree = RandomTree(&rng);
  auto clone = tree->Clone();
  EXPECT_EQ(SerializeNode(*tree), SerializeNode(*clone));
}

TEST_P(DomPropertyTest, SerializeParseRoundTrip) {
  Rng rng(GetParam() ^ 0xC0DE);
  auto tree = RandomTree(&rng);
  std::string html = SerializeNode(*tree);
  auto nodes = ParseFragment(html);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(SerializeNode(*nodes[0]), html);
}

TEST_P(DomPropertyTest, InnerHtmlSetGetRoundTrip) {
  Rng rng(GetParam() ^ 0xFACE);
  auto tree = RandomTree(&rng);
  std::string inner = SerializeChildren(*tree);
  auto target = MakeElement("div");
  target->SetInnerHtml(inner);
  EXPECT_EQ(target->InnerHtml(), inner);
}

TEST_P(DomPropertyTest, DetachedCloneSharesNoState) {
  Rng rng(GetParam() ^ 0xBEEF);
  auto tree = RandomTree(&rng);
  std::string before = SerializeNode(*tree);
  auto clone = tree->Clone();
  // Scorch the clone.
  clone->AsElement()->SetAttribute("mutated", "yes");
  clone->RemoveAllChildren();
  EXPECT_EQ(SerializeNode(*tree), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace rcb
