// Tests for the paper-discussed extensions: NAT + port forwarding (§3.2.1),
// TLS origins, presence notifications (§5.2.3 feedback), the push
// synchronization model (§3.2.3 alternative), and the mobile profile (§6).
#include <gtest/gtest.h>

#include "src/core/session.h"
#include "src/sites/shop_site.h"
#include "src/sites/site_server.h"

namespace rcb {
namespace {

// ------------------------------------------------------------- NAT / TLS --

class NatTest : public ::testing::Test {
 protected:
  NatTest() : network_(&loop_) {
    network_.AddHost("home-gateway", {});
    network_.AddHost("host-pc", {});
    network_.AddHost("roommate-pc", {});
    network_.AddHost("remote-pc", {});
    network_.SetBehindNat("host-pc", "home-gateway");
    network_.SetBehindNat("roommate-pc", "home-gateway");
  }
  EventLoop loop_;
  Network network_;
};

TEST_F(NatTest, DirectConnectionToNattedHostFails) {
  ASSERT_TRUE(network_.Listen("host-pc", 3000, [](NetEndpoint*) {}).ok());
  auto result = network_.Connect("remote-pc", "host-pc", 3000);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(NatTest, SameLanPeersConnectDirectly) {
  ASSERT_TRUE(network_.Listen("host-pc", 3000, [](NetEndpoint*) {}).ok());
  EXPECT_TRUE(network_.Connect("roommate-pc", "host-pc", 3000).ok());
}

TEST_F(NatTest, PortForwardReachesPrivateListener) {
  bool accepted = false;
  ASSERT_TRUE(network_.Listen("host-pc", 3000, [&](NetEndpoint* endpoint) {
    accepted = true;
    EXPECT_EQ(endpoint->local_host(), "host-pc");
  }).ok());
  network_.AddPortForward("home-gateway", 3000, "host-pc", 3000);
  auto result = network_.Connect("remote-pc", "home-gateway", 3000);
  ASSERT_TRUE(result.ok()) << result.status();
  loop_.Run();
  EXPECT_TRUE(accepted);
}

TEST_F(NatTest, PortForwardWithDifferentPublicPort) {
  ASSERT_TRUE(network_.Listen("host-pc", 3000, [](NetEndpoint*) {}).ok());
  network_.AddPortForward("home-gateway", 8080, "host-pc", 3000);
  EXPECT_TRUE(network_.Connect("remote-pc", "home-gateway", 8080).ok());
  // Unforwarded port on the gateway is still refused.
  EXPECT_FALSE(network_.Connect("remote-pc", "home-gateway", 8081).ok());
}

TEST_F(NatTest, CoBrowsingThroughPortForwarding) {
  // §3.2.1: "a co-browsing host can still allow remote participants to reach
  // a TCP port on a private IP address inside a LAN using port-forwarding".
  network_.AddHost("www.site.test", {});
  SiteServer site(&loop_, &network_, "www.site.test");
  site.ServeStatic("/", "text/html",
                   "<html><head><title>N</title></head><body>x</body></html>");

  Browser host_browser(&loop_, &network_, "host-pc");
  AgentConfig config;
  RcbAgent agent(&host_browser, config);
  ASSERT_TRUE(agent.Start().ok());
  network_.AddPortForward("home-gateway", 3000, "host-pc", 3000);

  Browser participant_browser(&loop_, &network_, "remote-pc");
  AjaxSnippet snippet(&participant_browser, {});
  Status join_status;
  bool joined = false;
  // The participant types the *gateway's* public address.
  snippet.Join(Url::Make("http", "home-gateway", 3000, "/"), [&](Status status) {
    join_status = status;
    joined = true;
  });
  loop_.RunUntilCondition([&] { return joined; });
  ASSERT_TRUE(join_status.ok()) << join_status;

  bool loaded = false;
  host_browser.Navigate(Url::Make("http", "www.site.test", 80, "/"),
                        [&](const Status&, const PageLoadStats&) {
                          loaded = true;
                        });
  loop_.RunUntilCondition([&] { return loaded; });
  loop_.RunUntilCondition(
      [&] { return participant_browser.document()->Title() == "N"; });
  SUCCEED();
}

TEST(TlsTest, TlsHandshakeAddsTwoRtts) {
  EventLoop loop;
  Network network(&loop);
  network.AddHost("client", {});
  network.AddHost("secure.test", {});
  network.SetLatency("client", "secure.test", Duration::Millis(10));
  network.MarkTlsPort("secure.test", 443);
  SimTime plain_accept;
  SimTime tls_accept;
  ASSERT_TRUE(network.Listen("secure.test", 80, [&](NetEndpoint*) {
    plain_accept = loop.now();
  }).ok());
  ASSERT_TRUE(network.Listen("secure.test", 443, [&](NetEndpoint*) {
    tls_accept = loop.now();
  }).ok());
  ASSERT_TRUE(network.Connect("client", "secure.test", 80).ok());
  ASSERT_TRUE(network.Connect("client", "secure.test", 443).ok());
  loop.Run();
  // Plain: accept after one-way 10 ms. TLS: + 2 RTTs (40 ms).
  EXPECT_EQ(plain_accept.millis(), 10);
  EXPECT_EQ(tls_accept.millis(), 50);
}

TEST(TlsTest, HttpsOriginCoBrowsedInCacheMode) {
  // §3.1: "Web contents hosted on HTTP or HTTPS Web servers can all be
  // synchronized"; with cache mode the participant never contacts the
  // HTTPS origin at all.
  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  network.AddHost("participant-pc", {});
  network.AddHost("secure.shop.test", {});
  network.MarkTlsPort("secure.shop.test", 443);
  SiteServer site(&loop, &network, "secure.shop.test", 443);
  site.ServeStatic("/", "text/html",
                   "<html><head><title>Secure</title></head>"
                   "<body><img src=\"/i.png\"></body></html>");
  site.ServeStatic("/i.png", "image/png", "SECRETPIXELS");
  // Participant cannot reach the origin (models a firewalled HTTPS service).
  network.BlockRoute("participant-pc", "secure.shop.test");

  Browser host_browser(&loop, &network, "host-pc");
  AgentConfig config;
  config.cache_mode = true;
  RcbAgent agent(&host_browser, config);
  ASSERT_TRUE(agent.Start().ok());
  Browser participant_browser(&loop, &network, "participant-pc");
  AjaxSnippet snippet(&participant_browser, {});
  bool joined = false;
  snippet.Join(agent.AgentUrl(), [&](Status status) {
    ASSERT_TRUE(status.ok());
    joined = true;
  });
  loop.RunUntilCondition([&] { return joined; });

  bool loaded = false;
  host_browser.Navigate(Url::Make("https", "secure.shop.test", 443, "/"),
                        [&](const Status& status, const PageLoadStats&) {
                          ASSERT_TRUE(status.ok()) << status;
                          loaded = true;
                        });
  loop.RunUntilCondition([&] { return loaded; });

  bool objects_done = false;
  snippet.SetObjectsLoadedListener([&](Duration) { objects_done = true; });
  loop.RunUntilCondition([&] { return objects_done; });
  EXPECT_EQ(participant_browser.document()->Title(), "Secure");
  EXPECT_EQ(snippet.metrics().object_fetch_failures, 0u);
  EXPECT_EQ(snippet.metrics().last_objects_from_host, 1u);
}

// --------------------------------------------------------------- Presence --

class PresenceTest : public ::testing::Test {
 protected:
  PresenceTest() : network_(&loop_) {
    network_.AddHost("host-pc", {});
    network_.AddHost("www.site.test", {});
    site_ = std::make_unique<SiteServer>(&loop_, &network_, "www.site.test");
    site_->ServeStatic("/", "text/html", "<html><body>x</body></html>");
    host_browser_ = std::make_unique<Browser>(&loop_, &network_, "host-pc");
    agent_ = std::make_unique<RcbAgent>(host_browser_.get(), AgentConfig{});
    EXPECT_TRUE(agent_->Start().ok());
  }

  std::unique_ptr<AjaxSnippet> JoinParticipant(const std::string& machine,
                                               Duration interval) {
    network_.AddHost(machine, {});
    browsers_.push_back(std::make_unique<Browser>(&loop_, &network_, machine));
    SnippetConfig config;
    config.poll_interval_override = interval;
    auto snippet =
        std::make_unique<AjaxSnippet>(browsers_.back().get(), config);
    bool joined = false;
    snippet->Join(agent_->AgentUrl(), [&](Status status) {
      EXPECT_TRUE(status.ok());
      joined = true;
    });
    loop_.RunUntilCondition([&] { return joined; });
    return snippet;
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> site_;
  std::unique_ptr<Browser> host_browser_;
  std::unique_ptr<RcbAgent> agent_;
  std::vector<std::unique_ptr<Browser>> browsers_;
};

TEST_F(PresenceTest, JoinNotifiesExistingParticipants) {
  auto first = JoinParticipant("p1-pc", Duration::Millis(200));
  loop_.RunFor(Duration::Millis(500));
  EXPECT_TRUE(first->known_peers().empty());
  auto second = JoinParticipant("p2-pc", Duration::Millis(200));
  loop_.RunUntilCondition([&] { return !first->known_peers().empty(); });
  EXPECT_EQ(first->known_peers().size(), 1u);
  EXPECT_EQ(first->known_peers()[0], second->participant_id());
  // The newcomer doesn't learn about itself.
  loop_.RunFor(Duration::Millis(500));
  EXPECT_TRUE(second->known_peers().empty());
}

TEST_F(PresenceTest, ExplicitLeaveNotifiesOthers) {
  auto first = JoinParticipant("p1-pc", Duration::Millis(200));
  auto second = JoinParticipant("p2-pc", Duration::Millis(200));
  loop_.RunUntilCondition([&] { return first->known_peers().size() == 1; });
  std::string second_pid = second->participant_id();
  second->Leave();
  loop_.RunUntilCondition([&] { return first->known_peers().empty(); });
  EXPECT_EQ(agent_->participant_count(), 1u);
  // The departed pid is gone from the agent's registry too.
  for (const auto& pid : agent_->ConnectedParticipants()) {
    EXPECT_NE(pid, second_pid);
  }
}

TEST_F(PresenceTest, SilentParticipantReapedAndAnnounced) {
  auto first = JoinParticipant("p1-pc", Duration::Millis(200));
  auto second = JoinParticipant("p2-pc", Duration::Millis(200));
  loop_.RunUntilCondition([&] { return first->known_peers().size() == 1; });
  // Second vanishes without a goodbye (crash / abrupt network loss).
  second->AbortWithoutGoodbye();
  // Liveness window is poll_interval * 5 of the AGENT config (1 s default).
  loop_.RunFor(Duration::Seconds(12.0));
  EXPECT_TRUE(first->known_peers().empty());
}

// -------------------------------------------------------------- Push mode --

class PushModeTest : public ::testing::Test {
 protected:
  PushModeTest() : network_(&loop_) {}

  void Start(SessionOptions options) {
    network_.AddHost("www.shop.test", {});
    shop_ = std::make_unique<ShopSite>(&loop_, &network_, "www.shop.test");
    session_ = std::make_unique<CoBrowsingSession>(&loop_, &network_, options);
    ASSERT_TRUE(session_->Start().ok());
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<ShopSite> shop_;
  std::unique_ptr<CoBrowsingSession> session_;
};

TEST_F(PushModeTest, StreamOpensOnJoin) {
  SessionOptions options;
  options.sync_model = SyncModel::kPush;
  Start(options);
  EXPECT_EQ(session_->snippet(0)->sync_model(), SyncModel::kPush);
  EXPECT_TRUE(session_->snippet(0)->stream_open());
  // No poll traffic accumulates while idle.
  uint64_t polls = session_->agent()->metrics().polls_received;
  loop_.RunFor(Duration::Seconds(5.0));
  EXPECT_EQ(session_->agent()->metrics().polls_received, polls);
}

TEST_F(PushModeTest, ContentPushedOnChange) {
  SessionOptions options;
  options.sync_model = SyncModel::kPush;
  Start(options);
  bool loaded = false;
  session_->host_browser()->Navigate(
      Url::Make("http", "www.shop.test", 80, "/"),
      [&](const Status& status, const PageLoadStats&) {
        ASSERT_TRUE(status.ok());
        loaded = true;
      });
  loop_.RunUntilCondition([&] { return loaded; });
  loop_.RunUntilCondition([&] {
    return session_->participant_browser(0)->document()->ById("featured") !=
           nullptr;
  });
  EXPECT_GT(session_->snippet(0)->metrics().stream_parts_received, 0u);
}

TEST_F(PushModeTest, PushLatencyBeatsPollInterval) {
  SessionOptions options;
  options.sync_model = SyncModel::kPush;
  options.poll_interval = Duration::Seconds(1.0);
  Start(options);
  bool loaded = false;
  session_->host_browser()->Navigate(
      Url::Make("http", "www.shop.test", 80, "/"),
      [&](const Status&, const PageLoadStats&) { loaded = true; });
  loop_.RunUntilCondition([&] { return loaded; });
  loop_.RunUntilCondition([&] {
    return session_->snippet(0)->metrics().content_updates > 0;
  });
  // Change a marker and measure push latency.
  SimTime change_at = loop_.now();
  session_->host_browser()->MutateDocument([](Document* document) {
    document->body()->AppendChild(MakeText("pushed"));
  });
  uint64_t updates = session_->snippet(0)->metrics().content_updates;
  loop_.RunUntilCondition([&] {
    return session_->snippet(0)->metrics().content_updates > updates;
  });
  Duration latency = loop_.now() - change_at;
  // Far below the 1 s poll interval: push skips the waiting-for-tick time.
  EXPECT_LT(latency, Duration::Millis(100));
}

TEST_F(PushModeTest, ParticipantActionsFlowInPushMode) {
  SessionOptions options;
  options.sync_model = SyncModel::kPush;
  Start(options);
  bool loaded = false;
  session_->host_browser()->Navigate(
      Url::Make("http", "www.shop.test", 80, "/"),
      [&](const Status&, const PageLoadStats&) { loaded = true; });
  loop_.RunUntilCondition([&] { return loaded; });
  loop_.RunUntilCondition([&] {
    return session_->participant_browser(0)->document()->ById("searchform") !=
           nullptr;
  });
  Element* form =
      session_->participant_browser(0)->document()->ById("searchform");
  ASSERT_TRUE(session_->snippet(0)->FillFormField(form, "q", "kindle").ok());
  // No PollNow needed: push mode flushes gestures immediately.
  loop_.RunUntilCondition([&] {
    Element* host_form = session_->host_browser()->document()->ById("searchform");
    if (host_form == nullptr) {
      return false;
    }
    bool filled = false;
    host_form->ForEachElement([&](Element* element) {
      if (element->AttrOr("name") == "q" && element->AttrOr("value") == "kindle") {
        filled = true;
        return false;
      }
      return true;
    });
    return filled;
  });
  SUCCEED();
}

TEST_F(PushModeTest, MousePushedToPeersImmediately) {
  SessionOptions options;
  options.sync_model = SyncModel::kPush;
  options.participant_count = 2;
  Start(options);
  std::vector<UserAction> received;
  session_->snippet(1)->SetActionListener(
      [&](const UserAction& action) { received.push_back(action); });
  session_->snippet(0)->SendMouseMove(7, 9);
  loop_.RunUntilCondition([&] { return !received.empty(); });
  EXPECT_EQ(received[0].type, ActionType::kMouseMove);
  EXPECT_EQ(received[0].x, 7);
}

TEST_F(PushModeTest, StreamDropIsDetectedNotRecovered) {
  // The paper prefers polling for reliability (§3.2.3): a dropped stream
  // stays dropped, while polling recovers by construction on the next tick.
  SessionOptions options;
  options.sync_model = SyncModel::kPush;
  Start(options);
  ASSERT_TRUE(session_->snippet(0)->stream_open());
  // Kill the agent (host side closes every connection).
  session_->agent()->Stop();
  loop_.RunFor(Duration::Seconds(2.0));
  EXPECT_FALSE(session_->snippet(0)->stream_open());
  EXPECT_EQ(session_->snippet(0)->metrics().stream_drops, 1u);
}

TEST_F(PushModeTest, StreamRequestRejectedInPollMode) {
  SessionOptions options;
  options.sync_model = SyncModel::kPoll;
  Start(options);
  // Hand-roll a stream request against a poll-mode agent.
  network_.AddHost("prober", {});
  Browser prober(&loop_, &network_, "prober");
  bool done = false;
  int code = 0;
  prober.Fetch(HttpMethod::kGet,
               Url::Make("http", "host-pc", 3000, "/stream", "pid=p1"), "", "",
               [&](FetchResult result) {
                 code = result.status.ok() ? result.response.status_code : -1;
                 done = true;
               });
  loop_.RunUntilCondition([&] { return done; });
  EXPECT_EQ(code, 400);
}

// ----------------------------------------------------------------- Mobile --

TEST(MobileProfileTest, SessionWorksOnHandheldHost) {
  EventLoop loop;
  Network network(&loop);
  NetworkProfile mobile = MobileProfile();
  EXPECT_EQ(mobile.host_interface.uplink_bps, 12'000'000);

  network.AddHost("www.site.test", {});
  SiteServer site(&loop, &network, "www.site.test");
  site.ServeStatic("/", "text/html",
                   "<html><head><title>M</title></head><body>m</body></html>");
  SessionOptions options;
  options.profile = mobile;
  CoBrowsingSession session(&loop, &network, options);
  ASSERT_TRUE(session.Start().ok());
  auto stats = session.CoNavigate(Url::Make("http", "www.site.test", 80, "/"));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(session.participant_browser(0)->document()->Title(), "M");
  // Wi-Fi handheld host: slower than wired LAN, still well under a second.
  EXPECT_GT(stats->participant_content_time[0], Duration::Millis(8));
  EXPECT_LT(stats->participant_content_time[0], Duration::Seconds(1.0));
}

}  // namespace
}  // namespace rcb
