// Tests for RCB-Agent request processing (Fig. 2), the timestamp mechanism,
// cached-object serving, HMAC authentication, and action policies — driven
// over the simulated network with raw HTTP requests.
#include <gtest/gtest.h>

#include "src/browser/object_cache.h"
#include "src/core/content_generator.h"
#include "src/core/rcb_agent.h"
#include "src/crypto/hmac.h"
#include "src/delta/patch_codec.h"
#include "src/sites/corpus.h"
#include "src/sites/site_server.h"

namespace rcb {
namespace {

class AgentTest : public ::testing::Test {
 protected:
  AgentTest() : network_(&loop_) {
    network_.AddHost("host-pc", {});
    network_.AddHost("participant-pc", {});
    network_.AddHost("www.origin.test", {});
    origin_ = std::make_unique<SiteServer>(&loop_, &network_, "www.origin.test");
    origin_->ServeStatic("/", "text/html",
                         "<html><head><title>Origin</title></head>"
                         "<body><img src=\"/a.png\"><p id=\"p\">v1</p>"
                         "<form id=\"f\" action=\"/submit\" method=\"post\">"
                         "<input name=\"q\" value=\"\"></form>"
                         "<a id=\"l\" href=\"/next\">next</a></body></html>");
    origin_->ServeStatic("/a.png", "image/png", "PNGDATA");
    origin_->ServeStatic("/next", "text/html",
                         "<html><head><title>Next</title></head>"
                         "<body><p>page2</p></body></html>");
    origin_->Route("/submit", [this](const HttpRequest& request) {
      last_submit_body_ = request.body;
      return HttpResponse::Ok("text/html",
                              "<html><head><title>Submitted</title></head>"
                              "<body><p>thanks</p></body></html>");
    });
    host_browser_ = std::make_unique<Browser>(&loop_, &network_, "host-pc");
    participant_ = std::make_unique<Browser>(&loop_, &network_, "participant-pc");
  }

  void StartAgent(AgentConfig config = {}) {
    agent_ = std::make_unique<RcbAgent>(host_browser_.get(), config);
    ASSERT_TRUE(agent_->Start().ok());
  }

  void HostNavigate(const std::string& path = "/") {
    bool done = false;
    Status status;
    host_browser_->Navigate(Url::Make("http", "www.origin.test", 80, path),
                            [&](const Status& s, const PageLoadStats&) {
                              status = s;
                              done = true;
                            });
    loop_.RunUntilCondition([&] { return done; });
    ASSERT_TRUE(status.ok()) << status;
  }

  // Raw fetch from the participant machine.
  FetchResult Fetch(HttpMethod method, const Url& url, std::string body = "",
                    std::string content_type = "") {
    FetchResult out;
    bool done = false;
    participant_->Fetch(method, url, std::move(body), std::move(content_type),
                        [&](FetchResult result) {
                          out = std::move(result);
                          done = true;
                        });
    loop_.RunUntilCondition([&] { return done; });
    return out;
  }

  // Sends a poll request, optionally signing it with `key`.
  FetchResult Poll(const PollRequest& poll, const std::string& key = "") {
    std::string body = EncodePollRequest(poll);
    Url url = agent_->AgentUrl();
    if (!key.empty()) {
      std::string mac = HmacSha256Hex(key, "POST /\n" + body);
      url = Url::Make("http", "host-pc", agent_->config().port, "/",
                      "hmac=" + mac);
    }
    return Fetch(HttpMethod::kPost, url, body,
                 "application/x-www-form-urlencoded");
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> origin_;
  std::unique_ptr<Browser> host_browser_;
  std::unique_ptr<Browser> participant_;
  std::unique_ptr<RcbAgent> agent_;
  std::string last_submit_body_;
};

TEST_F(AgentTest, StartStopLifecycle) {
  StartAgent();
  EXPECT_TRUE(agent_->running());
  EXPECT_FALSE(agent_->Start().ok());  // double start rejected
  agent_->Stop();
  EXPECT_FALSE(agent_->running());
  // Port is released: a new agent can bind it.
  RcbAgent again(host_browser_.get(), {});
  EXPECT_TRUE(again.Start().ok());
}

TEST_F(AgentTest, AgentUrlShape) {
  AgentConfig config;
  config.port = 3000;
  StartAgent(config);
  EXPECT_EQ(agent_->AgentUrl().ToString(), "http://host-pc:3000/");
}

TEST_F(AgentTest, NewConnectionReturnsInitialPage) {
  StartAgent();
  FetchResult result = Fetch(HttpMethod::kGet, agent_->AgentUrl());
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.response.status_code, 200);
  EXPECT_EQ(result.response.headers.Get("Content-Type").value(), "text/html");
  auto page = ParseDocument(result.response.body);
  // The page embeds Ajax-Snippet and the participant configuration.
  Element* script = page->FindFirst("script");
  ASSERT_NE(script, nullptr);
  EXPECT_EQ(script->id(), "rcb-snippet");
  EXPECT_NE(script->TextContent().find("rcbPoll"), std::string::npos);
  bool has_pid = false;
  for (Element* meta : page->FindAll("meta")) {
    if (meta->AttrOr("name") == "rcb-pid") {
      has_pid = true;
      EXPECT_FALSE(meta->AttrOr("content").empty());
    }
  }
  EXPECT_TRUE(has_pid);
  EXPECT_EQ(agent_->metrics().new_connections, 1u);
}

TEST_F(AgentTest, DistinctPidsPerConnection) {
  StartAgent();
  FetchResult a = Fetch(HttpMethod::kGet, agent_->AgentUrl());
  FetchResult b = Fetch(HttpMethod::kGet, agent_->AgentUrl());
  EXPECT_NE(a.response.body, b.response.body);
}

TEST_F(AgentTest, UnknownPathIs404) {
  StartAgent();
  FetchResult result =
      Fetch(HttpMethod::kGet, Url::Make("http", "host-pc", 3000, "/bogus"));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.response.status_code, 404);
}

TEST_F(AgentTest, PollBeforeHostHasPageIsEmpty) {
  StartAgent();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  FetchResult result = Poll(poll);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.response.status_code, 200);
  EXPECT_TRUE(result.response.body.empty());
  EXPECT_EQ(agent_->metrics().polls_empty, 1u);
}

TEST_F(AgentTest, PollAfterNavigationCarriesContent) {
  StartAgent();
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  FetchResult result = Poll(poll);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.response.headers.Get("Content-Type").value(),
            "application/xml");
  auto snapshot = ParseSnapshotXml(result.response.body);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_TRUE(snapshot->has_content);
  ASSERT_TRUE(snapshot->body.has_value());
  EXPECT_NE(snapshot->body->inner_html.find("v1"), std::string::npos);
  EXPECT_EQ(agent_->metrics().polls_with_content, 1u);
}

TEST_F(AgentTest, TimestampSuppressesUnchangedContent) {
  StartAgent();
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  FetchResult first = Poll(poll);
  auto snapshot = ParseSnapshotXml(first.response.body);
  ASSERT_TRUE(snapshot.ok());
  // Second poll carries the received timestamp -> no content resent.
  poll.doc_time_ms = snapshot->doc_time_ms;
  FetchResult second = Poll(poll);
  EXPECT_TRUE(second.response.body.empty());
}

TEST_F(AgentTest, DocumentChangeBumpsTimestamp) {
  StartAgent();
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  auto first = ParseSnapshotXml(Poll(poll).response.body);
  ASSERT_TRUE(first.ok());

  host_browser_->MutateDocument([](Document* document) {
    Element* p = document->ById("p");
    p->RemoveAllChildren();
    p->AppendChild(MakeText("v2"));
  });

  poll.doc_time_ms = first->doc_time_ms;
  auto second = ParseSnapshotXml(Poll(poll).response.body);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->doc_time_ms, first->doc_time_ms);
  EXPECT_NE(second->body->inner_html.find("v2"), std::string::npos);
}

TEST_F(AgentTest, SnapshotGeneratedOnceAndReused) {
  StartAgent();
  HostNavigate();
  for (int i = 0; i < 5; ++i) {
    PollRequest poll;
    poll.participant_id = "p" + std::to_string(i);
    poll.doc_time_ms = -1;
    Poll(poll);
  }
  // One generation serves all five participants (§4.1.2).
  EXPECT_EQ(agent_->metrics().generations, 1u);
  EXPECT_EQ(agent_->metrics().snapshot_reuses, 4u);
}

TEST_F(AgentTest, ObjectRequestServedFromCache) {
  AgentConfig config;
  config.cache_mode = true;
  StartAgent(config);
  HostNavigate();  // host cached /a.png during the load
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  auto snapshot = ParseSnapshotXml(Poll(poll).response.body);
  ASSERT_TRUE(snapshot.ok());
  const std::string& body = snapshot->body->inner_html;
  size_t pos = body.find("/obj/");
  ASSERT_NE(pos, std::string::npos) << body;
  size_t end = body.find('"', pos);
  std::string path = body.substr(pos, end - pos);

  FetchResult object =
      Fetch(HttpMethod::kGet, Url::Make("http", "host-pc", 3000, path));
  ASSERT_TRUE(object.status.ok());
  EXPECT_EQ(object.response.status_code, 200);
  EXPECT_EQ(object.response.body, "PNGDATA");
  EXPECT_EQ(object.response.headers.Get("Content-Type").value(), "image/png");
  EXPECT_EQ(agent_->metrics().object_requests, 1u);
  EXPECT_EQ(agent_->metrics().object_bytes_served, 7u);
}

TEST_F(AgentTest, ObjectRequestUnknownKey404) {
  StartAgent();
  FetchResult result =
      Fetch(HttpMethod::kGet, Url::Make("http", "host-pc", 3000, "/obj/ck-404"));
  EXPECT_EQ(result.response.status_code, 404);
}

TEST_F(AgentTest, ObjectRequestRejectedWhenCacheModeOff) {
  AgentConfig config;
  config.cache_mode = false;
  StartAgent(config);
  HostNavigate();
  FetchResult result =
      Fetch(HttpMethod::kGet, Url::Make("http", "host-pc", 3000, "/obj/ck-1"));
  EXPECT_EQ(result.response.status_code, 404);
}

TEST_F(AgentTest, AuthRejectsUnsignedAndWrongKey) {
  AgentConfig config;
  config.session_key = "topsecretkey";
  StartAgent(config);
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  // Unsigned.
  EXPECT_EQ(Poll(poll).response.status_code, 403);
  // Wrong key.
  EXPECT_EQ(Poll(poll, "wrongkey").response.status_code, 403);
  EXPECT_EQ(agent_->metrics().auth_failures, 2u);
  // Correct key.
  FetchResult good = Poll(poll, "topsecretkey");
  EXPECT_EQ(good.response.status_code, 200);
  EXPECT_FALSE(good.response.body.empty());
}

TEST_F(AgentTest, AuthCoversBodyTampering) {
  AgentConfig config;
  config.session_key = "topsecretkey";
  StartAgent(config);
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  std::string body = EncodePollRequest(poll);
  std::string mac = HmacSha256Hex("topsecretkey", "POST /\n" + body);
  // Tamper with the body after signing.
  std::string tampered = body + "&actions=type%3Dclick%26target%3D0";
  FetchResult result =
      Fetch(HttpMethod::kPost,
            Url::Make("http", "host-pc", 3000, "/", "hmac=" + mac), tampered,
            "application/x-www-form-urlencoded");
  EXPECT_EQ(result.response.status_code, 403);
}

TEST_F(AgentTest, MalformedPollIs400) {
  StartAgent();
  FetchResult result = Fetch(HttpMethod::kPost, agent_->AgentUrl(),
                             "garbage-without-pid", "text/plain");
  EXPECT_EQ(result.response.status_code, 400);
}

TEST_F(AgentTest, ParticipantClickNavigatesHost) {
  StartAgent();
  HostNavigate();
  // Find the anchor's rcb id on the live document enumeration.
  auto interactive = ContentGenerator::InteractiveElements(host_browser_->document());
  int anchor_index = -1;
  for (size_t i = 0; i < interactive.size(); ++i) {
    if (interactive[i]->tag_name() == "a") {
      anchor_index = static_cast<int>(i);
    }
  }
  ASSERT_GE(anchor_index, 0);

  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = 0;
  UserAction click;
  click.type = ActionType::kClick;
  click.target = anchor_index;
  poll.actions.push_back(click);
  Poll(poll);
  loop_.Run();  // let the host navigation finish
  EXPECT_EQ(host_browser_->document()->Title(), "Next");
  EXPECT_EQ(agent_->metrics().actions_applied, 1u);
}

TEST_F(AgentTest, ParticipantFormFillMergedIntoHostForm) {
  StartAgent();
  HostNavigate();
  auto interactive = ContentGenerator::InteractiveElements(host_browser_->document());
  int form_index = -1;
  for (size_t i = 0; i < interactive.size(); ++i) {
    if (interactive[i]->tag_name() == "form") {
      form_index = static_cast<int>(i);
    }
  }
  ASSERT_GE(form_index, 0);

  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = 0;
  UserAction fill;
  fill.type = ActionType::kFormFill;
  fill.target = form_index;
  fill.fields = {{"q", "co-filled value"}};
  poll.actions.push_back(fill);
  Poll(poll);

  Element* input = host_browser_->document()->ById("f")->FindFirst("input");
  EXPECT_EQ(input->AttrOr("value"), "co-filled value");
}

TEST_F(AgentTest, ParticipantFormSubmitReachesOrigin) {
  StartAgent();
  HostNavigate();
  auto interactive = ContentGenerator::InteractiveElements(host_browser_->document());
  int form_index = -1;
  for (size_t i = 0; i < interactive.size(); ++i) {
    if (interactive[i]->tag_name() == "form") {
      form_index = static_cast<int>(i);
    }
  }
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = 0;
  UserAction submit;
  submit.type = ActionType::kFormSubmit;
  submit.target = form_index;
  submit.fields = {{"q", "from participant"}};
  poll.actions.push_back(submit);
  Poll(poll);
  loop_.Run();
  EXPECT_EQ(last_submit_body_, "q=from%20participant");
  EXPECT_EQ(host_browser_->document()->Title(), "Submitted");
}

TEST_F(AgentTest, ConfirmPolicyHoldsActions) {
  AgentConfig config;
  config.policies.click = ActionPolicy::kConfirm;
  StartAgent(config);
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = 0;
  auto interactive = ContentGenerator::InteractiveElements(host_browser_->document());
  int anchor_index = -1;
  for (size_t i = 0; i < interactive.size(); ++i) {
    if (interactive[i]->tag_name() == "a") {
      anchor_index = static_cast<int>(i);
    }
  }
  ASSERT_GE(anchor_index, 0);
  UserAction click;
  click.type = ActionType::kClick;
  click.target = anchor_index;
  poll.actions.push_back(click);
  Poll(poll);
  // Held, not applied.
  EXPECT_EQ(host_browser_->document()->Title(), "Origin");
  ASSERT_EQ(agent_->pending_actions().size(), 1u);
  EXPECT_EQ(agent_->metrics().actions_held, 1u);
  // Host approves.
  ASSERT_TRUE(agent_->ApprovePending(0).ok());
  loop_.Run();
  EXPECT_EQ(host_browser_->document()->Title(), "Next");
  EXPECT_TRUE(agent_->pending_actions().empty());
  EXPECT_FALSE(agent_->ApprovePending(0).ok());
}

TEST_F(AgentTest, DenyPolicyDropsActions) {
  AgentConfig config;
  config.policies.form_submit = ActionPolicy::kDeny;
  StartAgent(config);
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = 0;
  UserAction submit;
  submit.type = ActionType::kFormSubmit;
  submit.target = 0;
  poll.actions.push_back(submit);
  Poll(poll);
  loop_.Run();
  EXPECT_EQ(host_browser_->document()->Title(), "Origin");
  EXPECT_EQ(agent_->metrics().actions_denied, 1u);
}

TEST_F(AgentTest, RejectPendingDiscards) {
  AgentConfig config;
  config.policies.navigate = ActionPolicy::kConfirm;
  StartAgent(config);
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = 0;
  UserAction navigate;
  navigate.type = ActionType::kNavigate;
  navigate.data = "http://www.origin.test/next";
  poll.actions.push_back(navigate);
  Poll(poll);
  ASSERT_EQ(agent_->pending_actions().size(), 1u);
  ASSERT_TRUE(agent_->RejectPending(0).ok());
  loop_.Run();
  EXPECT_EQ(host_browser_->document()->Title(), "Origin");
  EXPECT_EQ(agent_->metrics().actions_denied, 1u);
}

TEST_F(AgentTest, MouseMovesBroadcastToOtherParticipants) {
  StartAgent();
  HostNavigate();
  // p1 and p2 poll once to register.
  for (const char* pid : {"p1", "p2"}) {
    PollRequest poll;
    poll.participant_id = pid;
    poll.doc_time_ms = -1;
    Poll(poll);
  }
  // p1 moves the mouse.
  PollRequest move_poll;
  move_poll.participant_id = "p1";
  move_poll.doc_time_ms = 1'000'000'000;  // up to date
  UserAction mouse;
  mouse.type = ActionType::kMouseMove;
  mouse.x = 10;
  mouse.y = 20;
  move_poll.actions.push_back(mouse);
  Poll(move_poll);

  // p2's next poll carries the broadcast; p1's does not.
  PollRequest p2_poll;
  p2_poll.participant_id = "p2";
  p2_poll.doc_time_ms = 1'000'000'000;
  auto p2_snapshot = ParseSnapshotXml(Poll(p2_poll).response.body);
  ASSERT_TRUE(p2_snapshot.ok());
  ASSERT_EQ(p2_snapshot->user_actions.size(), 1u);
  EXPECT_EQ(p2_snapshot->user_actions[0].type, ActionType::kMouseMove);
  EXPECT_EQ(p2_snapshot->user_actions[0].origin, "p1");
  EXPECT_EQ(p2_snapshot->user_actions[0].x, 10);

  PollRequest p1_poll;
  p1_poll.participant_id = "p1";
  p1_poll.doc_time_ms = 1'000'000'000;
  EXPECT_TRUE(Poll(p1_poll).response.body.empty());
}

TEST_F(AgentTest, HostBroadcastReachesAllParticipants) {
  StartAgent();
  HostNavigate();
  for (const char* pid : {"p1", "p2"}) {
    PollRequest poll;
    poll.participant_id = pid;
    poll.doc_time_ms = -1;
    Poll(poll);
  }
  UserAction mouse;
  mouse.type = ActionType::kMouseMove;
  mouse.x = 5;
  mouse.y = 6;
  agent_->BroadcastAction(mouse);
  for (const char* pid : {"p1", "p2"}) {
    PollRequest poll;
    poll.participant_id = pid;
    poll.doc_time_ms = 1'000'000'000;
    auto snapshot = ParseSnapshotXml(Poll(poll).response.body);
    ASSERT_TRUE(snapshot.ok());
    ASSERT_EQ(snapshot->user_actions.size(), 1u);
    EXPECT_EQ(snapshot->user_actions[0].origin, "host");
  }
}

TEST_F(AgentTest, ConnectedParticipantsTracksLiveness) {
  StartAgent();
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  Poll(poll);
  EXPECT_EQ(agent_->ConnectedParticipants(), std::vector<std::string>{"p1"});
  // After a long silence the participant is no longer "connected".
  loop_.RunFor(Duration::Seconds(30.0));
  EXPECT_TRUE(agent_->ConnectedParticipants().empty());
}

TEST_F(AgentTest, StatusPageShowsRosterAndMetrics) {
  StartAgent();
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p7";
  poll.doc_time_ms = -1;
  Poll(poll);

  FetchResult result =
      Fetch(HttpMethod::kGet, Url::Make("http", "host-pc", 3000, "/status"));
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.response.status_code, 200);
  auto page = ParseDocument(result.response.body);
  EXPECT_EQ(page->Title(), "RCB status");
  Element* table = page->ById("participants");
  ASSERT_NE(table, nullptr);
  EXPECT_NE(table->OuterHtml().find("p7"), std::string::npos);
  Element* metrics = page->ById("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->TextContent().find("generations 1"), std::string::npos);
  EXPECT_NE(page->ById("mode")->TextContent().find("cache / poll"),
            std::string::npos);
}

TEST_F(AgentTest, PerParticipantCacheModes) {
  // §4.1.2: "allow different participant browsers to use different modes".
  AgentConfig config;
  config.participant_cache_mode = [](const std::string& pid) {
    return pid == "cached-one";
  };
  StartAgent(config);
  HostNavigate();

  PollRequest poll;
  poll.doc_time_ms = -1;
  poll.participant_id = "cached-one";
  auto cached_snapshot = ParseSnapshotXml(Poll(poll).response.body);
  ASSERT_TRUE(cached_snapshot.ok());
  EXPECT_NE(cached_snapshot->body->inner_html.find("/obj/"), std::string::npos);

  poll.participant_id = "origin-one";
  auto origin_snapshot = ParseSnapshotXml(Poll(poll).response.body);
  ASSERT_TRUE(origin_snapshot.ok());
  EXPECT_EQ(origin_snapshot->body->inner_html.find("/obj/"), std::string::npos);
  EXPECT_NE(origin_snapshot->body->inner_html.find("http://www.origin.test/"),
            std::string::npos);

  // One generation per mode; further pollers of either mode reuse.
  EXPECT_EQ(agent_->metrics().generations, 2u);
  poll.participant_id = "cached-two";
  Poll(poll);
  EXPECT_EQ(agent_->metrics().generations, 2u);
  EXPECT_GE(agent_->metrics().snapshot_reuses, 1u);

  // Object requests are served because at least one participant is in cache
  // mode.
  const std::string& body = cached_snapshot->body->inner_html;
  size_t pos = body.find("/obj/");
  size_t end = body.find('"', pos);
  FetchResult object = Fetch(
      HttpMethod::kGet,
      Url::Make("http", "host-pc", 3000, body.substr(pos, end - pos)));
  EXPECT_EQ(object.response.status_code, 200);
}

TEST_F(AgentTest, SignedResumeReauthenticatesAndForcesResync) {
  AgentConfig config;
  config.session_key = "topsecretkey";
  StartAgent(config);
  HostNavigate();
  // p1 joins and catches up.
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  auto snapshot = ParseSnapshotXml(Poll(poll, "topsecretkey").response.body);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();

  // Mid-session reconnect: the snippet re-handshakes with a signed
  // GET /?resume=p1 (the MAC covers method + URI minus the hmac parameter).
  std::string mac = HmacSha256Hex("topsecretkey", "GET /?resume=p1\n");
  FetchResult resumed =
      Fetch(HttpMethod::kGet,
            Url::Make("http", "host-pc", 3000, "/", "resume=p1&hmac=" + mac));
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_EQ(resumed.response.status_code, 200);
  EXPECT_EQ(agent_->metrics().reconnects, 1u);
  EXPECT_EQ(agent_->metrics().auth_failures, 0u);
  // The initial page keeps the same participant identity.
  auto page = ParseDocument(resumed.response.body);
  bool same_pid = false;
  for (Element* meta : page->FindAll("meta")) {
    if (meta->AttrOr("name") == "rcb-pid") {
      same_pid = meta->AttrOr("content") == "p1";
    }
  }
  EXPECT_TRUE(same_pid);

  // After the gap the participant's DOM is untrusted: its first poll claims
  // nothing (-1, resync) and is served the full snapshot again.
  poll.doc_time_ms = -1;
  poll.resync = true;
  poll.seq = 1;
  auto full = ParseSnapshotXml(Poll(poll, "topsecretkey").response.body);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_TRUE(full->has_content);
  EXPECT_EQ(agent_->metrics().resyncs, 1u);
}

TEST_F(AgentTest, UnsignedOrForgedResumeRejected) {
  AgentConfig config;
  config.session_key = "topsecretkey";
  StartAgent(config);
  // Unsigned resume.
  FetchResult unsigned_resume = Fetch(
      HttpMethod::kGet, Url::Make("http", "host-pc", 3000, "/", "resume=p1"));
  EXPECT_EQ(unsigned_resume.response.status_code, 403);
  // Forged MAC.
  std::string forged = HmacSha256Hex("wrongkey", "GET /?resume=p1\n");
  FetchResult forged_resume =
      Fetch(HttpMethod::kGet,
            Url::Make("http", "host-pc", 3000, "/", "resume=p1&hmac=" + forged));
  EXPECT_EQ(forged_resume.response.status_code, 403);
  EXPECT_EQ(agent_->metrics().auth_failures, 2u);
  EXPECT_EQ(agent_->metrics().reconnects, 0u);
}

TEST_F(AgentTest, ReplayedStalePollSeqRejected) {
  AgentConfig config;
  config.session_key = "topsecretkey";
  StartAgent(config);
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  poll.seq = 1;
  EXPECT_EQ(Poll(poll, "topsecretkey").response.status_code, 200);
  poll.seq = 2;
  poll.doc_time_ms = 0;
  EXPECT_EQ(Poll(poll, "topsecretkey").response.status_code, 200);
  EXPECT_EQ(agent_->metrics().auth_failures, 0u);

  // A replay of the seq=2 poll — valid signature, stale sequence — must be
  // rejected without being applied.
  FetchResult replayed = Poll(poll, "topsecretkey");
  EXPECT_EQ(replayed.response.status_code, 403);
  // And an older seq likewise.
  poll.seq = 1;
  EXPECT_EQ(Poll(poll, "topsecretkey").response.status_code, 403);
  EXPECT_EQ(agent_->metrics().auth_failures, 2u);

  // The next genuine poll proceeds.
  poll.seq = 3;
  EXPECT_EQ(Poll(poll, "topsecretkey").response.status_code, 200);
}

// ------------------------------------------------- overload protection ----

TEST_F(AgentTest, ConnectionCapRejectsExcessWith503) {
  AgentConfig config;
  config.limits.max_connections = 1;
  StartAgent(config);
  // First participant occupies the single connection slot (kept alive by the
  // browser's persistent-connection pool).
  FetchResult first = Fetch(HttpMethod::kGet, agent_->AgentUrl());
  EXPECT_EQ(first.response.status_code, 200);

  network_.AddHost("second-pc", {});
  Browser second(&loop_, &network_, "second-pc");
  FetchResult rejected;
  bool done = false;
  second.Fetch(HttpMethod::kGet, agent_->AgentUrl(), "", "",
               [&](FetchResult result) {
                 rejected = std::move(result);
                 done = true;
               });
  loop_.RunUntilCondition([&] { return done; });
  ASSERT_TRUE(rejected.status.ok());
  EXPECT_EQ(rejected.response.status_code, 503);
  EXPECT_TRUE(rejected.response.headers.Get("Retry-After").has_value());
  EXPECT_EQ(agent_->metrics().connections_rejected, 1u);

  // The admitted participant is unaffected: its persistent connection keeps
  // serving polls.
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  EXPECT_EQ(Poll(poll).response.status_code, 200);
}

TEST_F(AgentTest, PollTokenBucketRefillsOverTime) {
  AgentConfig config;
  config.limits.poll_rate_per_sec = 1.0;
  config.limits.poll_burst = 1.0;
  // This test pins the exact whole-second hint; jitter has its own coverage.
  config.limits.retry_after_jitter = Duration::Zero();
  StartAgent(config);
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  // The bucket starts full (burst 1): the first poll drains it.
  EXPECT_EQ(Poll(poll).response.status_code, 200);
  // An immediate second poll is over rate: 429 with a whole-second hint.
  FetchResult limited = Poll(poll);
  EXPECT_EQ(limited.response.status_code, 429);
  ASSERT_TRUE(limited.response.headers.Get("Retry-After").has_value());
  EXPECT_EQ(limited.response.headers.Get("Retry-After").value(), "1");
  EXPECT_EQ(agent_->metrics().polls_rate_limited, 1u);
  // After a full refill period the bucket holds a token again.
  loop_.RunFor(Duration::Seconds(1.1));
  EXPECT_EQ(Poll(poll).response.status_code, 200);
  EXPECT_EQ(agent_->metrics().polls_rate_limited, 1u);
}

TEST_F(AgentTest, PushModeCoalescesBurstsDropOldest) {
  AgentConfig config;
  config.sync_model = SyncModel::kPush;
  StartAgent(config);
  HostNavigate();
  // Hold a raw push stream so document changes schedule push flushes.
  auto stream = network_.Connect("participant-pc", "host-pc", 3000);
  ASSERT_TRUE(stream.ok());
  (*stream)->Send("GET /stream?pid=p1 HTTP/1.1\r\n\r\n");
  loop_.RunUntilCondition([&] { return agent_->stream_count() == 1; });
  loop_.RunFor(Duration::Millis(10));  // flush the navigation's push
  uint64_t shed_before = agent_->metrics().snapshots_shed;
  // Two document changes in the same event-loop turn: one flush is scheduled,
  // the superseded intermediate snapshot is shed (drop-oldest).
  host_browser_->MutateDocument([](Document*) {});
  host_browser_->MutateDocument([](Document*) {});
  EXPECT_EQ(agent_->metrics().snapshots_shed, shed_before + 1);
  loop_.RunFor(Duration::Millis(10));
  // Once the pending flush ran, new changes schedule fresh flushes again.
  host_browser_->MutateDocument([](Document*) {});
  EXPECT_EQ(agent_->metrics().snapshots_shed, shed_before + 1);
}

TEST_F(AgentTest, FullOutboxRejectsNewestBroadcasts) {
  AgentConfig config;
  config.limits.max_outbox_actions = 2;
  StartAgent(config);
  HostNavigate();
  // p2 joins first so it has an outbox to receive p1's broadcasts.
  PollRequest join2;
  join2.participant_id = "p2";
  join2.doc_time_ms = -1;
  auto snapshot = ParseSnapshotXml(Poll(join2).response.body);
  ASSERT_TRUE(snapshot.ok());

  // p1 sends four pointer moves; only the first two fit p2's outbox.
  PollRequest poll1;
  poll1.participant_id = "p1";
  poll1.doc_time_ms = snapshot->doc_time_ms;
  for (int i = 0; i < 4; ++i) {
    UserAction move;
    move.type = ActionType::kMouseMove;
    move.x = 10 * (i + 1);
    move.y = 20;
    poll1.actions.push_back(move);
  }
  EXPECT_EQ(Poll(poll1).response.status_code, 200);
  EXPECT_EQ(agent_->metrics().actions_shed, 2u);

  PollRequest poll2;
  poll2.participant_id = "p2";
  poll2.doc_time_ms = snapshot->doc_time_ms;
  auto delivered = ParseSnapshotXml(Poll(poll2).response.body);
  ASSERT_TRUE(delivered.ok());
  ASSERT_EQ(delivered->user_actions.size(), 2u);
  // Reject-newest: the oldest gestures survived, in order.
  EXPECT_EQ(delivered->user_actions[0].x, 10);
  EXPECT_EQ(delivered->user_actions[1].x, 20);
}

TEST_F(AgentTest, OversizedPollBodyGets413) {
  AgentConfig config;
  config.limits.max_request_body_bytes = 32;
  StartAgent(config);
  PollRequest poll;
  poll.participant_id = std::string(64, 'p');  // body well over the cap
  poll.doc_time_ms = -1;
  FetchResult result = Poll(poll);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.response.status_code, 413);
  EXPECT_EQ(agent_->metrics().oversized_rejected, 1u);
}

TEST_F(AgentTest, SlowLorisConnectionReapedByReadDeadline) {
  AgentConfig config;
  config.limits.idle_read_timeout = Duration::Seconds(2.0);
  StartAgent(config);
  network_.AddHost("attacker", {});
  auto endpoint = network_.Connect("attacker", "host-pc", 3000);
  ASSERT_TRUE(endpoint.ok());
  // A request head that never completes: the read deadline closes it.
  (*endpoint)->Send("POST / HTTP/1.1\r\nContent-Le");
  loop_.RunFor(Duration::Seconds(3.0));
  EXPECT_EQ(agent_->metrics().idle_read_timeouts, 1u);
  // The agent still serves well-behaved clients afterwards.
  FetchResult ok = Fetch(HttpMethod::kGet, agent_->AgentUrl());
  EXPECT_EQ(ok.response.status_code, 200);
}

TEST(ObjectCacheLruTest, EvictsLeastRecentlyUsedWithinBudget) {
  ObjectCache cache;
  cache.set_byte_budget(30);
  Url a = Url::Make("http", "x.test", 80, "/a");
  Url b = Url::Make("http", "x.test", 80, "/b");
  Url c = Url::Make("http", "x.test", 80, "/c");
  Url d = Url::Make("http", "x.test", 80, "/d");
  cache.Put(a, "text/plain", std::string(10, 'a'));
  cache.Put(b, "text/plain", std::string(10, 'b'));
  cache.Put(c, "text/plain", std::string(10, 'c'));
  EXPECT_EQ(cache.total_bytes(), 30u);
  // Touch `a`: it becomes most-recently-used, so `b` is now the LRU entry.
  EXPECT_NE(cache.Lookup(a), nullptr);
  cache.Put(d, "text/plain", std::string(10, 'd'));
  EXPECT_TRUE(cache.Contains(a));
  EXPECT_FALSE(cache.Contains(b));
  EXPECT_TRUE(cache.Contains(c));
  EXPECT_TRUE(cache.Contains(d));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.evicted_bytes(), 10u);
  EXPECT_EQ(cache.total_bytes(), 30u);
}

TEST(ObjectCacheLruTest, NewestEntrySurvivesEvenAloneOverBudget) {
  ObjectCache cache;
  cache.set_byte_budget(8);
  Url a = Url::Make("http", "x.test", 80, "/a");
  Url big = Url::Make("http", "x.test", 80, "/big");
  cache.Put(a, "text/plain", "aaaa");
  cache.Put(big, "text/plain", std::string(64, 'B'));
  EXPECT_FALSE(cache.Contains(a));
  EXPECT_TRUE(cache.Contains(big));  // never evict the entry just inserted
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(AgentTest, MetricsEndpointServesRegistry) {
  StartAgent();
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  Poll(poll);

  FetchResult result =
      Fetch(HttpMethod::kGet, Url::Make("http", "host-pc", 3000, "/metrics"));
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.response.status_code, 200);
  EXPECT_EQ(result.response.headers.Get("Content-Type"),
            "text/plain; version=0.0.4; charset=utf-8");
  const std::string& body = result.response.body;
  // Every pre-existing AgentMetrics counter is exported under rcb_agent_*.
  for (const char* name :
       {"rcb_agent_polls_received", "rcb_agent_polls_with_content",
        "rcb_agent_polls_empty", "rcb_agent_object_requests",
        "rcb_agent_object_bytes_served", "rcb_agent_new_connections",
        "rcb_agent_auth_failures", "rcb_agent_generations",
        "rcb_agent_snapshot_reuses", "rcb_agent_actions_applied",
        "rcb_agent_actions_held", "rcb_agent_actions_denied",
        "rcb_agent_poll_timeouts", "rcb_agent_reconnects",
        "rcb_agent_resyncs", "rcb_agent_participants_reaped",
        "rcb_agent_connections_rejected", "rcb_agent_participants_rejected",
        "rcb_agent_polls_rate_limited", "rcb_agent_actions_rate_limited",
        "rcb_agent_actions_shed", "rcb_agent_snapshots_shed",
        "rcb_agent_idle_read_timeouts", "rcb_agent_oversized_rejected",
        "rcb_agent_snapshot_bytes_raw", "rcb_agent_snapshot_bytes_escaped"}) {
    EXPECT_NE(body.find(name), std::string::npos) << name;
  }
  // Live values: the poll above registered a participant and forced a
  // generation.
  EXPECT_NE(body.find("rcb_agent_polls_received 1\n"), std::string::npos);
  EXPECT_NE(body.find("rcb_agent_generations 1\n"), std::string::npos);
  // Cache and gauge families.
  EXPECT_NE(body.find("rcb_cache_hits"), std::string::npos);
  EXPECT_NE(body.find("rcb_cache_bytes"), std::string::npos);
  EXPECT_NE(body.find("rcb_agent_participants 1\n"), std::string::npos);
  // Fig. 3 stage histograms, one series per stage.
  for (const char* stage : {"clone", "absolutize", "cache_rewrite",
                            "event_rewrite", "extract", "serialize"}) {
    std::string series =
        std::string("rcb_agent_gen_stage_us_count{stage=\"") + stage + "\"} 1";
    EXPECT_NE(body.find(series), std::string::npos) << series;
  }
}

TEST_F(AgentTest, MetricsEndpointAuthenticatedLikePolls) {
  AgentConfig config;
  config.session_key = "topsecretkey";
  StartAgent(config);
  HostNavigate();

  // Unsigned scrape: rejected, counted.
  FetchResult unsigned_result =
      Fetch(HttpMethod::kGet, Url::Make("http", "host-pc", 3000, "/metrics"));
  EXPECT_EQ(unsigned_result.response.status_code, 403);
  EXPECT_EQ(agent_->metrics().auth_failures, 1u);

  // Signed scrape: the MAC covers "GET /metrics\n" (empty body).
  std::string mac = HmacSha256Hex("topsecretkey", "GET /metrics\n");
  FetchResult signed_result = Fetch(
      HttpMethod::kGet,
      Url::Make("http", "host-pc", 3000, "/metrics", "hmac=" + mac));
  EXPECT_EQ(signed_result.response.status_code, 200);
  EXPECT_NE(signed_result.response.body.find("rcb_agent_auth_failures 1\n"),
            std::string::npos);
}

TEST_F(AgentTest, MetricsSimViewOmitsWallFamilies) {
  StartAgent();
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  Poll(poll);

  FetchResult full =
      Fetch(HttpMethod::kGet, Url::Make("http", "host-pc", 3000, "/metrics"));
  FetchResult sim = Fetch(
      HttpMethod::kGet,
      Url::Make("http", "host-pc", 3000, "/metrics", "view=sim"));
  ASSERT_EQ(full.response.status_code, 200);
  ASSERT_EQ(sim.response.status_code, 200);
  // Wall-provenance families (CPU timings) appear only in the full view.
  EXPECT_NE(full.response.body.find("rcb_agent_gen_stage_us"),
            std::string::npos);
  EXPECT_NE(full.response.body.find("rcb_agent_hmac_verify_us"),
            std::string::npos);
  EXPECT_EQ(sim.response.body.find("rcb_agent_gen_stage_us"),
            std::string::npos);
  EXPECT_EQ(sim.response.body.find("rcb_agent_last_generation_us"),
            std::string::npos);
  // Sim families appear in both.
  EXPECT_NE(sim.response.body.find("rcb_agent_polls_received"),
            std::string::npos);
  EXPECT_NE(sim.response.body.find("rcb_agent_snapshot_bytes_bucket"),
            std::string::npos);
}

TEST_F(AgentTest, SnapshotEscapeBytePairTracked) {
  StartAgent();
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  FetchResult result = Poll(poll);
  ASSERT_EQ(result.response.status_code, 200);

  const AgentMetrics& metrics = agent_->metrics();
  EXPECT_GT(metrics.snapshot_bytes_raw, 0u);
  // escape() only ever grows the payload.
  EXPECT_GE(metrics.snapshot_bytes_escaped, metrics.snapshot_bytes_raw);
  double ratio = static_cast<double>(metrics.snapshot_bytes_escaped) /
                 static_cast<double>(metrics.snapshot_bytes_raw);
  EXPECT_GE(ratio, 1.0);
  EXPECT_LE(ratio, 2.5);
}

// The paper's transmission sizes absorb escape() inflation (§5.1.2 M2): on
// Fig. 3 snapshots of the Table 1 corpus pages the CDATA payload grows by
// roughly 1.4-1.8x.
TEST(SnapshotEscapeInflationTest, CorpusPagesInflateAsExpected) {
  for (const char* name : {"google.com", "facebook.com", "amazon.com"}) {
    const SiteSpec* spec = FindSite(name);
    ASSERT_NE(spec, nullptr);
    EventLoop loop;
    Network network(&loop);
    network.AddHost(spec->host, {});
    network.AddHost("host-pc", {});
    auto server = InstallSite(&loop, &network, *spec);
    Browser browser(&loop, &network, "host-pc");
    bool done = false;
    browser.Navigate(Url::Make("http", spec->host, 80, "/"),
                     [&](const Status&, const PageLoadStats&) { done = true; });
    loop.RunUntilCondition([&] { return done; });

    ContentGenerator generator(&browser);
    ContentGenOptions options;
    options.cache_mode = true;
    options.agent_url = Url::Make("http", "host-pc", 3000, "/");
    GenerationResult result = generator.Generate(1, options);
    SnapshotSerializeStats stats;
    std::string xml = SerializeSnapshotXml(result.snapshot, &stats);
    ASSERT_GT(stats.payload_raw_bytes, 0u);
    // escape() alone grows the CDATA payload (quotes, newlines, slashes)...
    double escape_ratio = static_cast<double>(stats.payload_escaped_bytes) /
                          static_cast<double>(stats.payload_raw_bytes);
    EXPECT_GE(escape_ratio, 1.15) << name << " escape ratio " << escape_ratio;
    EXPECT_LE(escape_ratio, 1.85) << name << " escape ratio " << escape_ratio;
    // ...and together with the XML envelope the snapshot lands at roughly
    // 1.4-1.8x the original page (the inflation Fig. 4 transmissions absorb;
    // bench_table1_processing reports the full-corpus distribution).
    double snapshot_ratio =
        static_cast<double>(xml.size()) / 1024.0 / spec->page_kb;
    EXPECT_GE(snapshot_ratio, 1.35) << name << " snapshot " << snapshot_ratio;
    EXPECT_LE(snapshot_ratio, 1.85) << name << " snapshot " << snapshot_ratio;
  }
}

TEST_F(AgentTest, StaleActionTargetIgnored) {
  StartAgent();
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = 0;
  UserAction click;
  click.type = ActionType::kClick;
  click.target = 9999;
  poll.actions.push_back(click);
  FetchResult result = Poll(poll);
  EXPECT_EQ(result.response.status_code, 200);  // poll succeeds, action dropped
  EXPECT_EQ(host_browser_->document()->Title(), "Origin");
}

// ---- Delta-snapshot capability negotiation (src/delta) -------------------

// Replays a fixed scenario — initial poll, host mutation, follow-up poll —
// on a fresh simulated stack and returns the two poll response bodies. The
// simulation is deterministic, so two replays that should behave identically
// must produce identical bytes.
std::vector<std::string> ReplayPollScenario(bool agent_delta,
                                            bool advertise_patch) {
  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  network.AddHost("participant-pc", {});
  network.AddHost("www.origin.test", {});
  SiteServer origin(&loop, &network, "www.origin.test");
  // The page carries enough filler that a one-op patch (whose fixed header
  // includes two 64-hex digests) is comfortably under the snapshot-size
  // cutoff and actually gets served as a patch.
  std::string page =
      "<html><head><title>Origin</title></head>"
      "<body><p id=\"p\">v1</p>";
  for (int i = 0; i < 20; ++i) {
    page += "<p>filler paragraph number " + std::to_string(i) +
            " keeps the document comfortably large</p>";
  }
  page += "</body></html>";
  origin.ServeStatic("/", "text/html", page);
  Browser host(&loop, &network, "host-pc");
  Browser participant(&loop, &network, "participant-pc");
  AgentConfig config;
  config.enable_delta = agent_delta;
  RcbAgent agent(&host, config);
  EXPECT_TRUE(agent.Start().ok());

  bool done = false;
  host.Navigate(Url::Make("http", "www.origin.test", 80, "/"),
                [&](const Status&, const PageLoadStats&) { done = true; });
  loop.RunUntilCondition([&] { return done; });

  auto poll_once = [&](int64_t doc_time) {
    PollRequest poll;
    poll.participant_id = "p1";
    poll.doc_time_ms = doc_time;
    poll.patch = advertise_patch;
    FetchResult out;
    bool fetched = false;
    participant.Fetch(HttpMethod::kPost, agent.AgentUrl(),
                      EncodePollRequest(poll),
                      "application/x-www-form-urlencoded",
                      [&](FetchResult result) {
                        out = std::move(result);
                        fetched = true;
                      });
    loop.RunUntilCondition([&] { return fetched; });
    return out.response.body;
  };

  std::vector<std::string> bodies;
  bodies.push_back(poll_once(-1));
  auto first = ParseSnapshotXml(bodies[0]);
  EXPECT_TRUE(first.ok());
  host.MutateDocument([](Document* document) {
    Element* p = document->ById("p");
    p->RemoveAllChildren();
    p->AppendChild(MakeText("v2"));
  });
  bodies.push_back(poll_once(first.ok() ? first->doc_time_ms : -1));
  return bodies;
}

TEST_F(AgentTest, DeltaCapabilityDowngradeIsByteIdentical) {
  // Baseline: delta off on both sides.
  std::vector<std::string> baseline = ReplayPollScenario(false, false);
  // A participant that does not advertise patch support against a
  // delta-enabled agent gets the baseline bytes, exactly.
  EXPECT_EQ(ReplayPollScenario(true, false), baseline);
  // An advertising participant against a delta-disabled agent too: the agent
  // ignores the capability field.
  EXPECT_EQ(ReplayPollScenario(false, true), baseline);
  // Only when both sides opt in does the second response become a patch.
  std::vector<std::string> delta = ReplayPollScenario(true, true);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0], baseline[0]);  // no base yet: full snapshot either way
  EXPECT_TRUE(delta::LooksLikePatchXml(delta[1]));
  EXPECT_LT(delta[1].size(), baseline[1].size());
}

// Same deterministic replay, but toggling the trace capability: the agent
// only ever *reads* trace=, so response bytes must stay byte-identical in
// all four combinations, and causal span ids must appear in the agent's
// trace ring exactly when both sides opt in.
std::pair<std::vector<std::string>, bool> ReplayTraceScenario(
    bool agent_trace, bool send_trace) {
  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  network.AddHost("participant-pc", {});
  network.AddHost("www.origin.test", {});
  SiteServer origin(&loop, &network, "www.origin.test");
  origin.ServeStatic("/", "text/html",
                     "<html><head><title>Origin</title></head>"
                     "<body><p id=\"p\">v1</p></body></html>");
  Browser host(&loop, &network, "host-pc");
  Browser participant(&loop, &network, "participant-pc");
  AgentConfig config;
  config.enable_trace = agent_trace;
  RcbAgent agent(&host, config);
  EXPECT_TRUE(agent.Start().ok());

  bool done = false;
  host.Navigate(Url::Make("http", "www.origin.test", 80, "/"),
                [&](const Status&, const PageLoadStats&) { done = true; });
  loop.RunUntilCondition([&] { return done; });

  uint64_t seq = 0;
  auto poll_once = [&](int64_t doc_time) {
    PollRequest poll;
    poll.participant_id = "p1";
    poll.doc_time_ms = doc_time;
    if (send_trace) {
      poll.trace = "p1-" + std::to_string(++seq);
    }
    FetchResult out;
    bool fetched = false;
    participant.Fetch(HttpMethod::kPost, agent.AgentUrl(),
                      EncodePollRequest(poll),
                      "application/x-www-form-urlencoded",
                      [&](FetchResult result) {
                        out = std::move(result);
                        fetched = true;
                      });
    loop.RunUntilCondition([&] { return fetched; });
    return out.response.body;
  };

  std::vector<std::string> bodies;
  bodies.push_back(poll_once(-1));
  auto first = ParseSnapshotXml(bodies[0]);
  EXPECT_TRUE(first.ok());
  host.MutateDocument([](Document* document) {
    Element* p = document->ById("p");
    p->RemoveAllChildren();
    p->AppendChild(MakeText("v2"));
  });
  bodies.push_back(poll_once(first.ok() ? first->doc_time_ms : -1));

  bool saw_causal = false;
  for (const obs::TraceEvent& event : agent.trace_log().Events()) {
    if (!event.trace_id.empty()) {
      saw_causal = true;
    }
  }
  return {bodies, saw_causal};
}

TEST_F(AgentTest, TraceCapabilityDowngradeIsByteIdentical) {
  auto [baseline, baseline_causal] = ReplayTraceScenario(false, false);
  auto [agent_only, agent_only_causal] = ReplayTraceScenario(true, false);
  auto [snippet_only, snippet_only_causal] = ReplayTraceScenario(false, true);
  auto [both, both_causal] = ReplayTraceScenario(true, true);
  // Tracing never changes a single response byte, whichever side has it on.
  EXPECT_EQ(agent_only, baseline);
  EXPECT_EQ(snippet_only, baseline);
  EXPECT_EQ(both, baseline);
  // Causal spans appear in the agent ring only when both sides opt in.
  EXPECT_FALSE(baseline_causal);
  EXPECT_FALSE(agent_only_causal);
  EXPECT_FALSE(snippet_only_causal);
  EXPECT_TRUE(both_causal);
}

// Same deterministic replay, toggling the streamed-transport capability
// (DESIGN.md §15). Returns the two FULL serialized responses — headers
// included — plus their bodies, so byte identity covers the RCB-Transport
// header, not just the payload.
std::pair<std::vector<std::string>, std::vector<std::string>>
ReplayStreamScenario(bool agent_stream, uint32_t advertise_stream) {
  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  network.AddHost("participant-pc", {});
  network.AddHost("www.origin.test", {});
  SiteServer origin(&loop, &network, "www.origin.test");
  origin.ServeStatic("/", "text/html",
                     "<html><head><title>Origin</title></head>"
                     "<body><p id=\"p\">v1</p></body></html>");
  Browser host(&loop, &network, "host-pc");
  Browser participant(&loop, &network, "participant-pc");
  AgentConfig config;
  config.transport.enable_stream = agent_stream;
  RcbAgent agent(&host, config);
  EXPECT_TRUE(agent.Start().ok());

  bool done = false;
  host.Navigate(Url::Make("http", "www.origin.test", 80, "/"),
                [&](const Status&, const PageLoadStats&) { done = true; });
  loop.RunUntilCondition([&] { return done; });

  auto poll_once = [&](int64_t doc_time) {
    PollRequest poll;
    poll.participant_id = "p1";
    poll.doc_time_ms = doc_time;
    poll.stream = advertise_stream;
    FetchResult out;
    bool fetched = false;
    participant.Fetch(HttpMethod::kPost, agent.AgentUrl(),
                      EncodePollRequest(poll),
                      "application/x-www-form-urlencoded",
                      [&](FetchResult result) {
                        out = std::move(result);
                        fetched = true;
                      });
    loop.RunUntilCondition([&] { return fetched; });
    return out.response;
  };

  std::vector<std::string> serialized;
  std::vector<std::string> bodies;
  HttpResponse first = poll_once(-1);
  serialized.push_back(first.Serialize());
  bodies.push_back(first.body);
  auto snapshot = ParseSnapshotXml(first.body);
  EXPECT_TRUE(snapshot.ok());
  host.MutateDocument([](Document* document) {
    Element* p = document->ById("p");
    p->RemoveAllChildren();
    p->AppendChild(MakeText("v2"));
  });
  HttpResponse second = poll_once(snapshot.ok() ? snapshot->doc_time_ms : -1);
  serialized.push_back(second.Serialize());
  bodies.push_back(second.body);
  return {serialized, bodies};
}

TEST_F(AgentTest, StreamCapabilityDowngradeIsByteIdentical) {
  // Baseline: transport off on both sides. The comparison is over FULL
  // serialized responses, so a stray header would fail it.
  auto [baseline, baseline_bodies] = ReplayStreamScenario(false, 0);
  // Agent upgraded, snippet silent — a pre-transport client sees the exact
  // pre-transport bytes.
  EXPECT_EQ(ReplayStreamScenario(true, 0).first, baseline);
  // Snippet advertises against a transport-less agent: the capability field
  // is read and ignored, response bytes untouched.
  EXPECT_EQ(ReplayStreamScenario(false, 2).first, baseline);
  EXPECT_EQ(ReplayStreamScenario(false, 1).first, baseline);
  // Only when both sides opt in does the grant header appear — and the
  // bodies still match the baseline byte for byte.
  auto [framed, framed_bodies] = ReplayStreamScenario(true, 2);
  EXPECT_NE(framed, baseline);
  EXPECT_EQ(framed_bodies, baseline_bodies);
  ASSERT_EQ(framed.size(), 2u);
  EXPECT_NE(framed[0].find("RCB-Transport: frames; hb="), std::string::npos);
  auto [longpoll, longpoll_bodies] = ReplayStreamScenario(true, 1);
  EXPECT_EQ(longpoll_bodies, baseline_bodies);
  EXPECT_NE(longpoll[0].find("RCB-Transport: longpoll; hold="),
            std::string::npos);
}

TEST_F(AgentTest, ResyncPollGetsFullSnapshotDespitePatchCapability) {
  AgentConfig config;
  config.enable_delta = true;
  StartAgent(config);
  HostNavigate();
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  poll.patch = true;
  auto first = ParseSnapshotXml(Poll(poll).response.body);
  ASSERT_TRUE(first.ok());

  host_browser_->MutateDocument([](Document* document) {
    document->body()->AppendChild(MakeText("more"));
  });
  // A recovering participant (resync=1) must receive the full snapshot even
  // though it advertises patch support and the agent has the base cached.
  poll.doc_time_ms = first->doc_time_ms;
  poll.resync = true;
  std::string body = Poll(poll).response.body;
  EXPECT_FALSE(delta::LooksLikePatchXml(body));
  EXPECT_TRUE(ParseSnapshotXml(body).ok());
  EXPECT_EQ(agent_->metrics().patches_served, 0u);
  EXPECT_EQ(agent_->metrics().resyncs, 1u);
}

TEST_F(AgentTest, PatchServedOnlyWhenBaseIsKnown) {
  AgentConfig config;
  config.enable_delta = true;
  StartAgent(config);
  HostNavigate();
  // Advance sim time so document versions are well above zero — the test acks
  // "base - 7" below, which must stay a plausible (non-negative) timestamp.
  loop_.RunFor(Duration::Seconds(1.0));
  // Grow the document so the one-op patch below beats the size cutoff.
  host_browser_->MutateDocument([](Document* document) {
    for (int i = 0; i < 20; ++i) {
      std::unique_ptr<Element> p = MakeElement("p");
      p->AppendChild(MakeText("filler paragraph " + std::to_string(i) +
                              " keeps the snapshot comfortably large"));
      document->body()->AppendChild(std::move(p));
    }
  });
  PollRequest poll;
  poll.participant_id = "p1";
  poll.doc_time_ms = -1;
  poll.patch = true;
  auto first = ParseSnapshotXml(Poll(poll).response.body);
  ASSERT_TRUE(first.ok());

  host_browser_->MutateDocument([](Document* document) {
    document->body()->AppendChild(MakeText("more"));
  });
  // Acking a version the agent never produced: no base tree, so the agent
  // falls back to the full snapshot and counts the reason.
  poll.doc_time_ms = first->doc_time_ms - 7;
  std::string body = Poll(poll).response.body;
  EXPECT_FALSE(delta::LooksLikePatchXml(body));
  EXPECT_EQ(agent_->metrics().patches_served, 0u);
  EXPECT_EQ(agent_->metrics().patch_fallback_no_base, 1u);

  // Acking the real base: the same document change now travels as a patch.
  poll.doc_time_ms = first->doc_time_ms;
  body = Poll(poll).response.body;
  EXPECT_TRUE(delta::LooksLikePatchXml(body));
  EXPECT_EQ(agent_->metrics().patches_served, 1u);
}

}  // namespace
}  // namespace rcb
