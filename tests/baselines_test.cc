// Tests for the co-browsing baselines: URL sharing (and its two failure
// modes from §1) and the proxy-based architecture from §2.
#include <gtest/gtest.h>

#include "src/baselines/proxy_cobrowse.h"
#include "src/baselines/url_sharing.h"
#include "src/core/session.h"
#include "src/sites/corpus.h"
#include "src/sites/maps_site.h"
#include "src/sites/shop_site.h"

namespace rcb {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : network_(&loop_) {
    network_.AddHost("host-pc", {});
    network_.AddHost("participant-pc", {});
  }

  Status Navigate(Browser* browser, const Url& url) {
    Status out;
    bool done = false;
    browser->Navigate(url, [&](const Status& status, const PageLoadStats&) {
      out = status;
      done = true;
    });
    loop_.RunUntilCondition([&] { return done; });
    return out;
  }

  EventLoop loop_;
  Network network_;
};

TEST_F(BaselinesTest, UrlSharingWorksOnStaticPublicPages) {
  network_.AddHost("www.static.test", {});
  SiteServer site(&loop_, &network_, "www.static.test");
  site.ServeStatic("/", "text/html",
                   "<html><head><title>S</title></head>"
                   "<body><p>same for everyone</p></body></html>");
  Browser host(&loop_, &network_, "host-pc");
  Browser participant(&loop_, &network_, "participant-pc");
  ASSERT_TRUE(Navigate(&host, Url::Make("http", "www.static.test", 80, "/")).ok());

  UrlSharingCoBrowse sharing(&loop_, &host, &participant);
  auto result = sharing.ShareCurrentUrl();
  ASSERT_TRUE(result.participant_status.ok());
  EXPECT_TRUE(result.content_matches);
  EXPECT_GT(result.participant_load_time, Duration::Zero());
}

TEST_F(BaselinesTest, UrlSharingFailsOnSessionProtectedPages) {
  network_.AddHost("www.shop.test", {});
  ShopSite shop(&loop_, &network_, "www.shop.test");
  Browser host(&loop_, &network_, "host-pc");
  Browser participant(&loop_, &network_, "participant-pc");

  // Host establishes a session and fills a cart.
  ASSERT_TRUE(Navigate(&host, Url::Make("http", "www.shop.test", 80, "/")).ok());
  ASSERT_TRUE(
      Navigate(&host, Url::Make("http", "www.shop.test", 80, "/product/mba13"))
          .ok());
  bool done = false;
  ASSERT_TRUE(host.SubmitForm(host.document()->ById("addform"),
                              [&](const Status&, const PageLoadStats&) {
                                done = true;
                              })
                  .ok());
  loop_.RunUntilCondition([&] { return done; });
  ASSERT_NE(host.document()->ById("cartlist"), nullptr);

  // Sharing the cart URL gives the participant a sign-in page, not the cart.
  UrlSharingCoBrowse sharing(&loop_, &host, &participant);
  auto result = sharing.ShareCurrentUrl();
  ASSERT_TRUE(result.participant_status.ok());
  EXPECT_FALSE(result.content_matches);
  EXPECT_NE(participant.document()->ById("signin"), nullptr);
  EXPECT_EQ(participant.document()->ById("cartlist"), nullptr);
}

TEST_F(BaselinesTest, UrlSharingMissesAjaxUpdates) {
  network_.AddHost("maps.test", {});
  MapsSite maps(&loop_, &network_, "maps.test");
  Browser host(&loop_, &network_, "host-pc");
  Browser participant(&loop_, &network_, "participant-pc");
  MapsApp app(&host);
  bool done = false;
  app.Open(maps.PageUrl(), [&](Status) { done = true; });
  loop_.RunUntilCondition([&] { return done; });
  done = false;
  app.Search("cartier fifth avenue", [&](Status) { done = true; });
  loop_.RunUntilCondition([&] { return done; });

  // The URL never changed, so sharing it shows the participant the default
  // map view — not the host's searched view.
  UrlSharingCoBrowse sharing(&loop_, &host, &participant);
  auto result = sharing.ShareCurrentUrl();
  ASSERT_TRUE(result.participant_status.ok());
  EXPECT_FALSE(result.content_matches);
  auto [x, y] = MapsSite::Geocode("cartier fifth avenue");
  EXPECT_EQ(host.document()->ById("map")->AttrOr("data-x"), std::to_string(x));
  EXPECT_EQ(participant.document()->ById("map")->AttrOr("data-x"), "1000");
}

TEST_F(BaselinesTest, RcbSucceedsWhereUrlSharingFails) {
  // The same session-protected flow through RCB: the participant gets the
  // host's cart page content.
  EventLoop loop;
  Network network(&loop);
  network.AddHost("www.shop.test", {});
  ShopSite shop(&loop, &network, "www.shop.test");
  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Millis(500);
  CoBrowsingSession session(&loop, &network, options);
  ASSERT_TRUE(session.Start().ok());
  ASSERT_TRUE(
      session.CoNavigate(Url::Make("http", "www.shop.test", 80, "/product/mba13"))
          .ok());
  Browser* host = session.host_browser();
  bool done = false;
  ASSERT_TRUE(host->SubmitForm(host->document()->ById("addform"),
                               [&](const Status&, const PageLoadStats&) {
                                 done = true;
                               })
                  .ok());
  loop.RunUntilCondition([&] { return done; });
  ASSERT_TRUE(session.WaitForSync().ok());
  EXPECT_NE(session.participant_browser(0)->document()->ById("cartlist"),
            nullptr);
}

TEST_F(BaselinesTest, ProxyCoBrowseSynchronizesMembers) {
  network_.AddHost("cobrowse-proxy", {});
  network_.AddHost("www.static.test", {});
  SiteServer site(&loop_, &network_, "www.static.test");
  site.ServeStatic("/", "text/html",
                   "<html><head><title>P</title></head>"
                   "<body><p>proxied</p></body></html>");
  CoBrowseProxy proxy(&loop_, &network_, "cobrowse-proxy");

  Browser leader(&loop_, &network_, "host-pc");
  Browser follower(&loop_, &network_, "participant-pc");
  ProxyCoBrowseClient leader_client(&leader, proxy.ProxyUrl(),
                                    Duration::Millis(500));
  ProxyCoBrowseClient follower_client(&follower, proxy.ProxyUrl(),
                                      Duration::Millis(500));
  leader_client.Start();
  follower_client.Start();

  bool navigated = false;
  leader_client.Navigate(Url::Make("http", "www.static.test", 80, "/"),
                         [&](Status status) {
                           ASSERT_TRUE(status.ok());
                           navigated = true;
                         });
  loop_.RunUntilCondition([&] { return navigated; });
  loop_.RunUntilCondition([&] {
    return leader_client.updates_received() > 0 &&
           follower_client.updates_received() > 0;
  });
  // Both members display the identical proxied copy.
  EXPECT_EQ(leader.document()->Title(), "P");
  EXPECT_EQ(follower.document()->Title(), "P");
  EXPECT_EQ(proxy.origin_fetches(), 1u);
  // Every member's copy was relayed through the proxy (trust/traffic cost).
  EXPECT_GT(proxy.bytes_relayed(), 0u);
  leader_client.Stop();
  follower_client.Stop();
}

TEST_F(BaselinesTest, ProxyIsSinglePointOfFailure) {
  network_.AddHost("cobrowse-proxy", {});
  network_.AddHost("www.static.test", {});
  SiteServer site(&loop_, &network_, "www.static.test");
  site.ServeStatic("/", "text/html", "<html><body>x</body></html>");
  auto proxy = std::make_unique<CoBrowseProxy>(&loop_, &network_, "cobrowse-proxy");
  Url proxy_url = proxy->ProxyUrl();
  Browser leader(&loop_, &network_, "host-pc");

  // Kill the proxy; navigation requests now fail even though the origin is
  // fine — the third-party dependency RCB avoids.
  proxy.reset();
  ProxyCoBrowseClient client(&leader, proxy_url, Duration::Millis(500));
  bool done = false;
  Status navigate_status;
  client.Navigate(Url::Make("http", "www.static.test", 80, "/"),
                  [&](Status status) {
                    navigate_status = status;
                    done = true;
                  });
  loop_.RunUntilCondition([&] { return done; });
  EXPECT_FALSE(navigate_status.ok());
}

}  // namespace
}  // namespace rcb
