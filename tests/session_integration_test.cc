// End-to-end co-browsing sessions over the full stack: LAN/WAN profiles,
// the Table 1 corpus, multi-participant fan-out, and the two §5.2 scenarios
// (maps meeting-spot coordination, shop co-shopping).
#include <gtest/gtest.h>

#include "src/core/session.h"
#include "src/net/profiles.h"
#include "src/sites/corpus.h"
#include "src/sites/maps_site.h"
#include "src/sites/shop_site.h"

namespace rcb {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : network_(&loop_) {}

  void InstallCorpusSite(const std::string& name, const NetworkProfile& profile,
                         const SessionOptions& options) {
    const SiteSpec* spec = FindSite(name);
    ASSERT_NE(spec, nullptr);
    AddOriginServer(&network_, profile, spec->host, spec->server_bps,
                    spec->server_latency, options.host_machine,
                    options.participant_machine_prefix + "-1");
    servers_.push_back(InstallSite(&loop_, &network_, *spec));
    // Additional participants get the same latency to the origin.
    for (size_t i = 2; i <= options.participant_count; ++i) {
      network_.SetLatency(options.participant_machine_prefix + "-" +
                              std::to_string(i),
                          spec->host,
                          spec->server_latency + profile.access_latency);
    }
  }

  EventLoop loop_;
  Network network_;
  std::vector<std::unique_ptr<SiteServer>> servers_;
};

TEST_F(SessionTest, LanSessionSyncsCorpusSite) {
  SessionOptions options;
  options.profile = LanProfile();
  InstallCorpusSite("google.com", options.profile, options);
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  EXPECT_EQ(session.agent()->participant_count(), 1u);

  auto stats = session.CoNavigate(Url::Make("http", "www.google.com", 80, "/"));
  ASSERT_TRUE(stats.ok()) << stats.status();
  // LAN: M2 (sync from host) far below M1 (download from origin) — Fig. 6.
  EXPECT_GT(stats->host_html_time, Duration::Zero());
  EXPECT_GT(stats->participant_content_time[0], Duration::Zero());
  EXPECT_LT(stats->participant_content_time[0], stats->host_html_time);
  // Participant page matches.
  EXPECT_EQ(session.participant_browser(0)->document()->Title(),
            "google.com - homepage");
}

TEST_F(SessionTest, LanCacheModeObjectsFasterThanOrigin) {
  // Fig. 8: M4 (objects from host cache over the LAN) < M3 (from origin).
  Url url = Url::Make("http", "www.yahoo.com", 80, "/");

  Duration m3;
  {
    EventLoop loop;
    Network network(&loop);
    SessionOptions options;
    options.profile = LanProfile();
    options.cache_mode = false;
    const SiteSpec* spec = FindSite("yahoo.com");
    AddOriginServer(&network, options.profile, spec->host, spec->server_bps,
                    spec->server_latency, options.host_machine,
                    options.participant_machine_prefix + "-1");
    auto server = InstallSite(&loop, &network, *spec);
    CoBrowsingSession session(&loop, &network, options);
    ASSERT_TRUE(session.Start().ok());
    auto stats = session.CoNavigate(url);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats->participant_objects_from_host[0], 0u);
    m3 = stats->participant_objects_time[0];
  }
  Duration m4;
  {
    EventLoop loop;
    Network network(&loop);
    SessionOptions options;
    options.profile = LanProfile();
    options.cache_mode = true;
    const SiteSpec* spec = FindSite("yahoo.com");
    AddOriginServer(&network, options.profile, spec->host, spec->server_bps,
                    spec->server_latency, options.host_machine,
                    options.participant_machine_prefix + "-1");
    auto server = InstallSite(&loop, &network, *spec);
    CoBrowsingSession session(&loop, &network, options);
    ASSERT_TRUE(session.Start().ok());
    auto stats = session.CoNavigate(url);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_GT(stats->participant_objects_from_host[0], 0u);
    m4 = stats->participant_objects_time[0];
  }
  EXPECT_LT(m4, m3);
}

TEST_F(SessionTest, WanSessionStillSyncs) {
  SessionOptions options;
  options.profile = WanProfile();
  InstallCorpusSite("facebook.com", options.profile, options);
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  auto stats =
      session.CoNavigate(Url::Make("http", "www.facebook.com", 80, "/"));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(session.participant_browser(0)->document()->Title(),
            "facebook.com - homepage");
  // WAN M2 is materially larger than LAN M2 (384 Kbps uplink at the host).
  EXPECT_GT(stats->participant_content_time[0], Duration::Millis(100));
}

TEST_F(SessionTest, MultiParticipantFanOut) {
  SessionOptions options;
  options.profile = LanProfile();
  options.participant_count = 4;
  InstallCorpusSite("apple.com", options.profile, options);
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  EXPECT_EQ(session.agent()->participant_count(), 4u);
  auto stats = session.CoNavigate(Url::Make("http", "www.apple.com", 80, "/"));
  ASSERT_TRUE(stats.ok()) << stats.status();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(session.participant_browser(i)->document()->Title(),
              "apple.com - homepage")
        << "participant " << i;
  }
  // The snapshot is generated once and reused for all four (§4.1.2).
  EXPECT_EQ(session.agent()->metrics().generations, 1u);
  EXPECT_GE(session.agent()->metrics().snapshot_reuses, 3u);
}

TEST_F(SessionTest, AuthenticatedSessionWorks) {
  SessionOptions options;
  options.profile = LanProfile();
  options.enable_auth = true;
  InstallCorpusSite("adobe.com", options.profile, options);
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  EXPECT_FALSE(session.session_key().empty());
  auto stats = session.CoNavigate(Url::Make("http", "www.adobe.com", 80, "/"));
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(session.agent()->metrics().auth_failures, 0u);
}

TEST_F(SessionTest, SequentialNavigationsTrackHost) {
  SessionOptions options;
  options.profile = LanProfile();
  InstallCorpusSite("google.com", options.profile, options);
  InstallCorpusSite("apple.com", options.profile, options);
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  ASSERT_TRUE(
      session.CoNavigate(Url::Make("http", "www.google.com", 80, "/")).ok());
  EXPECT_EQ(session.participant_browser(0)->document()->Title(),
            "google.com - homepage");
  ASSERT_TRUE(
      session.CoNavigate(Url::Make("http", "www.apple.com", 80, "/")).ok());
  EXPECT_EQ(session.participant_browser(0)->document()->Title(),
            "apple.com - homepage");
}

// ---- §5.2.1: coordinating a meeting spot via the maps service ------------

TEST_F(SessionTest, MapsScenarioEndToEnd) {
  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Millis(500);
  network_.AddHost("maps.test", {.uplink_bps = 10'000'000, .downlink_bps = 0});
  MapsSite maps(&loop_, &network_, "maps.test");
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());

  // Bob (host) opens the map page; Alice (participant) receives it.
  auto stats = session.CoNavigate(maps.PageUrl());
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_NE(session.participant_browser(0)->document()->ById("map"), nullptr);

  // Bob searches; the Ajax update must reach Alice though the URL is
  // unchanged.
  MapsApp app(session.host_browser());
  // MapsApp was not used for the initial open; align its state.
  bool done = false;
  app.Open(maps.PageUrl(), [&](Status) { done = true; });
  loop_.RunUntilCondition([&] { return done; });
  ASSERT_TRUE(session.WaitForSync().ok());

  done = false;
  Status search_status;
  app.Search("653 5th Ave, New York", [&](Status status) {
    search_status = status;
    done = true;
  });
  loop_.RunUntilCondition([&] { return done; });
  ASSERT_TRUE(search_status.ok());
  ASSERT_TRUE(session.WaitForSync().ok());

  auto [x, y] = MapsSite::Geocode("653 5th Ave, New York");
  Element* alice_map = session.participant_browser(0)->document()->ById("map");
  ASSERT_NE(alice_map, nullptr);
  EXPECT_EQ(alice_map->AttrOr("data-x"), std::to_string(x));
  EXPECT_EQ(alice_map->AttrOr("data-y"), std::to_string(y));

  // Bob zooms; Alice follows.
  done = false;
  app.ZoomIn([&](Status) { done = true; });
  loop_.RunUntilCondition([&] { return done; });
  ASSERT_TRUE(session.WaitForSync().ok());
  EXPECT_EQ(session.participant_browser(0)->document()->ById("map")->AttrOr(
                "data-z"),
            "13");

  // Street view flash appears for Alice too.
  done = false;
  app.ShowStreetView([&](Status) { done = true; });
  loop_.RunUntilCondition([&] { return done; });
  ASSERT_TRUE(session.WaitForSync().ok());
  EXPECT_NE(session.participant_browser(0)->document()->ById("svflash"),
            nullptr);
  EXPECT_NE(session.participant_browser(0)
                ->document()
                ->ById("svcaption")
                ->TextContent()
                .find("Cartier"),
            std::string::npos);
}

// ---- §5.2.2: online co-shopping ------------------------------------------

TEST_F(SessionTest, ShopScenarioEndToEnd) {
  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Millis(500);
  network_.AddHost("www.shop.test", {.uplink_bps = 10'000'000, .downlink_bps = 0});
  ShopSite shop(&loop_, &network_, "www.shop.test");
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  Browser* bob = session.host_browser();
  Browser* alice_browser = session.participant_browser(0);
  AjaxSnippet* alice = session.snippet(0);

  // Bob browses to the shop (session cookie lands on Bob's browser only).
  ASSERT_TRUE(
      session.CoNavigate(Url::Make("http", "www.shop.test", 80, "/")).ok());
  // Alice sees the shop page although she has no cookies for the shop.
  EXPECT_EQ(alice_browser->cookies().CountFor(
                Url::Make("http", "www.shop.test", 80, "/")),
            0u);
  EXPECT_NE(alice_browser->document()->ById("featured"), nullptr);

  // Alice searches from her browser: the action routes through Bob.
  Element* search_form = alice_browser->document()->ById("searchform");
  ASSERT_NE(search_form, nullptr);
  ASSERT_TRUE(alice->FillFormField(search_form, "q", "macbook air").ok());
  ASSERT_TRUE(alice->SubmitForm(search_form).ok());
  alice->PollNow();
  // Wait until the search-results page reaches Alice through the poll loop.
  loop_.RunUntilCondition([&] {
    Element* hits = alice_browser->document()->ById("hitcount");
    return hits != nullptr && hits->TextContent() == "2 results";
  });
  EXPECT_EQ(bob->document()->ById("hitcount")->TextContent(), "2 results");

  // Alice picks the 13-inch MacBook Air: clicks its product link.
  Element* link = nullptr;
  alice_browser->document()->ForEachElement([&](Element* element) {
    if (element->tag_name() == "a" &&
        element->AttrOr("href").find("/product/mba13") != std::string::npos) {
      link = element;
      return false;
    }
    return true;
  });
  ASSERT_NE(link, nullptr);
  ASSERT_TRUE(alice->ClickElement(link).ok());
  alice->PollNow();
  loop_.RunUntilCondition(
      [&] { return alice_browser->document()->ById("addform") != nullptr; });
  ASSERT_NE(bob->document()->ById("addform"), nullptr);

  // Bob adds to cart and proceeds to checkout.
  bool done = false;
  ASSERT_TRUE(bob->SubmitForm(bob->document()->ById("addform"),
                              [&](const Status&, const PageLoadStats&) {
                                done = true;
                              })
                  .ok());
  loop_.RunUntilCondition([&] { return done; });
  ASSERT_NE(bob->document()->ById("cartlist"), nullptr);
  done = false;
  bob->Navigate(Url::Make("http", "www.shop.test", 80, "/checkout"),
                [&](const Status&, const PageLoadStats&) { done = true; });
  loop_.RunUntilCondition([&] { return done; });
  ASSERT_NE(bob->document()->ById("shipform"), nullptr);
  ASSERT_TRUE(session.WaitForSync().ok());

  // Alice co-fills the shipping form from her side.
  Element* ship_form = alice_browser->document()->ById("shipform");
  ASSERT_NE(ship_form, nullptr);
  ASSERT_TRUE(alice->FillFormField(ship_form, "fullname", "Alice C.").ok());
  ASSERT_TRUE(alice->FillFormField(ship_form, "street", "653 5th Ave").ok());
  ASSERT_TRUE(alice->FillFormField(ship_form, "city", "New York").ok());
  ASSERT_TRUE(alice->FillFormField(ship_form, "state", "NY").ok());
  ASSERT_TRUE(alice->FillFormField(ship_form, "zip", "10022").ok());
  ASSERT_TRUE(alice->FillFormField(ship_form, "phone", "555-0100").ok());
  alice->PollNow();
  loop_.RunUntilCondition([&] {
    Element* host_form = bob->document()->ById("shipform");
    if (host_form == nullptr) {
      return false;
    }
    Element* field = nullptr;
    host_form->ForEachElement([&](Element* element) {
      if (element->AttrOr("name") == "phone") {
        field = element;
        return false;
      }
      return true;
    });
    return field != nullptr && field->AttrOr("value") == "555-0100";
  });

  // Bob finishes checkout with Alice's data.
  done = false;
  ASSERT_TRUE(bob->SubmitForm(bob->document()->ById("shipform"),
                              [&](const Status&, const PageLoadStats&) {
                                done = true;
                              })
                  .ok());
  loop_.RunUntilCondition([&] { return done; });
  ASSERT_NE(bob->document()->ById("confirm"), nullptr);
  EXPECT_NE(bob->document()->ById("shipto")->TextContent().find("New York"),
            std::string::npos);

  // The confirmation page reaches Alice too (session-protected content she
  // could never load by URL).
  ASSERT_TRUE(session.WaitForSync().ok());
  EXPECT_NE(alice_browser->document()->ById("confirm"), nullptr);
}

TEST_F(SessionTest, FullCorpusTour) {
  // §3.3: "users can visit different websites and collaboratively browse and
  // operate on as many webpages as they like" — the host tours all 20 Table 1
  // homepages in one session; the participant follows each.
  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Millis(500);
  std::vector<std::unique_ptr<SiteServer>> servers;
  for (const SiteSpec& spec : Table1Sites()) {
    AddOriginServer(&network_, options.profile, spec.host, spec.server_bps,
                    spec.server_latency, options.host_machine,
                    options.participant_machine_prefix + "-1");
    servers.push_back(InstallSite(&loop_, &network_, spec));
  }
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  for (const SiteSpec& spec : Table1Sites()) {
    auto stats = session.CoNavigate(Url::Make("http", spec.host, 80, "/"));
    ASSERT_TRUE(stats.ok()) << spec.name << ": " << stats.status();
    EXPECT_EQ(session.participant_browser(0)->document()->Title(),
              spec.name + " - homepage");
    EXPECT_EQ(session.snippet(0)->metrics().object_fetch_failures, 0u)
        << spec.name;
  }
  // 20 pages -> 20 generations, one content update per page.
  EXPECT_EQ(session.agent()->metrics().generations, 20u);
  EXPECT_EQ(session.snippet(0)->metrics().content_updates, 20u);
}

TEST_F(SessionTest, FramesetPageSynchronizedEndToEnd) {
  // Fig. 4's docFrameSet/docNoFrames path over the full stack.
  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Millis(500);
  network_.AddHost("frames.test", {.uplink_bps = 10'000'000, .downlink_bps = 0});
  SiteServer site(&loop_, &network_, "frames.test");
  site.ServeStatic("/", "text/html",
                   "<html><head><title>Frames</title></head>"
                   "<frameset cols=\"30%,70%\">"
                   "<frame src=\"/nav.html\" name=\"nav\">"
                   "<frame src=\"/content.html\" name=\"content\">"
                   "</frameset>"
                   "<noframes><p>frames required</p></noframes></html>");
  site.ServeStatic("/nav.html", "text/html",
                   "<html><body><a href=\"/content.html\">go</a></body></html>");
  site.ServeStatic("/content.html", "text/html",
                   "<html><body><h1>inside frame</h1></body></html>");
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  auto stats = session.CoNavigate(Url::Make("http", "frames.test", 80, "/"));
  ASSERT_TRUE(stats.ok()) << stats.status();

  Document* participant_doc = session.participant_browser(0)->document();
  EXPECT_EQ(participant_doc->Title(), "Frames");
  Element* frameset = participant_doc->frameset();
  ASSERT_NE(frameset, nullptr);
  EXPECT_EQ(frameset->AttrOr("cols"), "30%,70%");
  auto frames = frameset->FindAll("frame");
  ASSERT_EQ(frames.size(), 2u);
  // Frame URLs were absolutized by the Fig. 3 pipeline (to the origin or to
  // the agent in cache mode).
  for (Element* frame : frames) {
    EXPECT_TRUE(IsAbsoluteUrl(frame->AttrOr("src"))) << frame->AttrOr("src");
  }
  EXPECT_NE(participant_doc->noframes(), nullptr);
  EXPECT_EQ(participant_doc->body(), nullptr);
}

TEST_F(SessionTest, WaitForSyncTimesOutWhenParticipantCannotPoll) {
  SessionOptions options;
  options.profile = LanProfile();
  InstallCorpusSite("google.com", options.profile, options);
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  ASSERT_TRUE(
      session.CoNavigate(Url::Make("http", "www.google.com", 80, "/")).ok());
  session.snippet(0)->Leave();
  // Host changes after the participant left.
  session.host_browser()->MutateDocument([](Document* document) {
    document->body()->AppendChild(MakeText("more"));
  });
  EXPECT_FALSE(session.WaitForSync(Duration::Seconds(5.0)).ok());
}

}  // namespace
}  // namespace rcb
