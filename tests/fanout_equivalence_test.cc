// Property test: shared-snapshot broadcast fan-out is equivalent to the
// per-participant pipeline.
//
// A hosted session serves N pollers with mixed capabilities (patch= and
// trace= on or off per snippet) from one broadcast buffer per doc_time. For
// random seeded mutation schedules, every participant's applied DOM must be
// byte-identical (canonical-tree digest) to what a session running the whole
// pipeline for just that one participant produces — fan-out sharing is an
// amortization, never a behavior change.
#include <gtest/gtest.h>

#include "src/core/ajax_snippet.h"
#include "src/delta/tree_diff.h"
#include "src/host/rcb_host.h"
#include "src/html/parser.h"
#include "src/util/rand.h"

namespace rcb {
namespace {

struct ParticipantCaps {
  bool enable_delta = false;
  bool enable_trace = false;
};

constexpr int kMutations = 6;
constexpr uint16_t kBasePort = 3000;

// One deterministic small mutation drawn from `rng`: a text edit, an
// attribute write, or an element insertion — the paper's motivating small
// updates, exercising both the patch path and its fallbacks.
void ApplyMutation(Browser* browser, Rng* rng, int step) {
  uint64_t kind = rng->NextBelow(3);
  uint64_t value = rng->NextBelow(1000);
  browser->MutateDocument([&](Document* document) {
    Element* status = document->ById("status");
    ASSERT_NE(status, nullptr);
    switch (kind) {
      case 0:
        status->RemoveAllChildren();
        status->AppendChild(
            MakeText("tick " + std::to_string(step) + "." + std::to_string(value)));
        break;
      case 1:
        document->body()->SetAttribute("data-step",
                                       std::to_string(step * 1000 + value));
        break;
      default: {
        auto div = MakeElement("div");
        div->SetAttribute("id", "m" + std::to_string(step));
        div->AppendChild(MakeText("item " + std::to_string(value)));
        document->body()->AppendChild(std::move(div));
        break;
      }
    }
  });
}

// Runs one hosted session with `caps.size()` participants and the seeded
// mutation schedule; returns each participant's final canonical DOM digest
// (plus the hosted agent's metrics via out-params for shape assertions).
std::vector<std::string> RunSchedule(uint64_t seed,
                                     const std::vector<ParticipantCaps>& caps,
                                     AgentMetrics* agent_metrics = nullptr) {
  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  for (size_t i = 0; i < caps.size(); ++i) {
    std::string machine = "p-pc-" + std::to_string(i + 1);
    network.AddHost(machine, {});
    network.SetLatency("host-pc", machine, Duration::Millis(1));
  }

  HostConfig host_config;
  host_config.base_port = kBasePort;
  RcbHost host(&loop, &network, host_config);
  EXPECT_TRUE(host.Start().ok());
  AgentConfig agent_config;
  agent_config.session_key = "equiv-key";
  agent_config.poll_interval = Duration::Millis(100);
  agent_config.enable_delta = true;  // per-poller capability negotiation
  agent_config.enable_trace = true;
  auto session = host.CreateSession("equiv", agent_config);
  EXPECT_TRUE(session.ok());

  // A page large enough that a one-element patch beats the 0.6 size cutoff,
  // so the schedule genuinely exercises the delta path for patch= pollers.
  std::string html = "<html><head><title>Equiv</title></head>"
                     "<body><p id=\"status\">start</p>";
  for (int i = 0; i < 24; ++i) {
    html += "<p class=\"filler\">the quick brown fox jumps over the lazy dog "
            "paragraph " + std::to_string(i) + "</p>";
  }
  html += "</body></html>";
  (*session)->browser->ReplaceDocument(
      ParseDocument(html),
      Url::Make("http", "host-pc", (*session)->port, "/doc"));

  struct Participant {
    std::unique_ptr<Browser> browser;
    std::unique_ptr<AjaxSnippet> snippet;
  };
  std::vector<Participant> participants(caps.size());
  size_t joined = 0;
  for (size_t i = 0; i < caps.size(); ++i) {
    participants[i].browser = std::make_unique<Browser>(
        &loop, &network, "p-pc-" + std::to_string(i + 1));
    SnippetConfig config;
    config.session_key = "equiv-key";
    config.fetch_objects = false;
    config.enable_delta = caps[i].enable_delta;
    config.enable_trace = caps[i].enable_trace;
    participants[i].snippet = std::make_unique<AjaxSnippet>(
        participants[i].browser.get(), config);
    participants[i].snippet->Join((*session)->agent->AgentUrl(),
                                  [&](Status status) {
                                    EXPECT_TRUE(status.ok()) << status;
                                    ++joined;
                                  });
  }
  EXPECT_TRUE(loop.RunUntilCondition([&] { return joined == caps.size(); }));

  // The schedule fires at absolute simulated instants, so every run of the
  // same seed — whatever its participant mix — stamps identical document
  // versions (doc_time is the sim clock).
  Rng rng(seed);
  const SimTime epoch;  // t=0
  for (int step = 0; step < kMutations; ++step) {
    SimTime fire = epoch + Duration::Millis(1000 + 400 * step);
    loop.Schedule(fire - loop.now(), [&, step] {
      ApplyMutation((*session)->browser.get(), &rng, step);
    });
  }

  // Every participant must converge on the final version.
  const int64_t final_doc_time_ms = 1000 + 400 * (kMutations - 1);
  auto all_synced = [&] {
    for (auto& participant : participants) {
      if (participant.snippet->doc_time_ms() < final_doc_time_ms) {
        return false;
      }
    }
    return true;
  };
  EXPECT_TRUE(loop.RunUntilCondition(all_synced));

  if (agent_metrics != nullptr) {
    *agent_metrics = (*session)->agent->metrics();
  }
  std::vector<std::string> digests;
  digests.reserve(caps.size());
  for (auto& participant : participants) {
    digests.push_back(delta::TreeDigest(
        *delta::CanonicalizeDocument(*participant.browser->document())));
  }
  return digests;
}

class FanoutEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FanoutEquivalenceTest, BroadcastMatchesPerParticipantPipeline) {
  uint64_t seed = GetParam();
  // Mixed capabilities: always one full-featured and one bare poller, the
  // rest drawn from the seed.
  Rng caps_rng(seed ^ 0xCAB5);
  std::vector<ParticipantCaps> caps = {{true, true}, {false, false}};
  for (int i = 0; i < 2; ++i) {
    caps.push_back(
        {caps_rng.NextBelow(2) == 1, caps_rng.NextBelow(2) == 1});
  }

  AgentMetrics hosted_metrics;
  std::vector<std::string> hosted = RunSchedule(seed, caps, &hosted_metrics);

  // Whatever its capabilities, every participant applied the same DOM.
  for (size_t i = 1; i < hosted.size(); ++i) {
    EXPECT_EQ(hosted[i], hosted[0]) << "participant " << i << " diverged";
  }

  // Each participant alone reproduces its hosted result bit-for-bit: the
  // broadcast buffer changed nothing but the work count.
  for (size_t i = 0; i < caps.size(); ++i) {
    AgentMetrics solo_metrics;
    std::vector<std::string> solo = RunSchedule(seed, {caps[i]}, &solo_metrics);
    ASSERT_EQ(solo.size(), 1u);
    EXPECT_EQ(solo[0], hosted[i]) << "participant " << i << " (delta="
                                  << caps[i].enable_delta
                                  << " trace=" << caps[i].enable_trace << ")";
    // Generate-once held in both runs: versions were generated once each,
    // regardless of poller count.
    EXPECT_EQ(hosted_metrics.generations, solo_metrics.generations);
  }

  // The schedule exercised the mix: the pipeline ran far fewer times than it
  // sent content, and the delta path actually served patches to the
  // capability-advertising pollers.
  EXPECT_GT(hosted_metrics.polls_with_content, hosted_metrics.generations);
  EXPECT_GT(hosted_metrics.patches_served, 0u);
  EXPECT_GT(hosted_metrics.snapshot_reuses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FanoutEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace rcb
