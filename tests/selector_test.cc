// Tests for the CSS-selector-lite query engine.
#include <gtest/gtest.h>

#include "src/html/parser.h"
#include "src/html/selector.h"

namespace rcb {
namespace {

class SelectorTest : public ::testing::Test {
 protected:
  SelectorTest() {
    doc_ = ParseDocument(
        "<html><body>"
        "<div id=\"main\" class=\"page wide\">"
        "  <form id=\"f\" class=\"checkout\" method=\"post\" action=\"/go\">"
        "    <input name=\"q\" type=\"text\" value=\"v\">"
        "    <input name=\"s\" type=\"submit\">"
        "  </form>"
        "  <ul class=\"nav\">"
        "    <li class=\"item first\"><a href=\"/1\">one</a></li>"
        "    <li class=\"item\"><a href=\"/2\">two</a></li>"
        "  </ul>"
        "  <div class=\"inner\"><span id=\"deep\">deep</span></div>"
        "</div>"
        "<p class=\"page\">outside</p>"
        "</body></html>");
  }
  std::unique_ptr<Document> doc_;
};

TEST_F(SelectorTest, TagSelector) {
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "li").size(), 2u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "input").size(), 2u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "table").size(), 0u);
}

TEST_F(SelectorTest, TagCaseInsensitive) {
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "LI").size(), 2u);
}

TEST_F(SelectorTest, IdSelector) {
  Element* main = QuerySelector(doc_.get(), "#main");
  ASSERT_NE(main, nullptr);
  EXPECT_EQ(main->tag_name(), "div");
  EXPECT_EQ(QuerySelector(doc_.get(), "#nonexistent"), nullptr);
}

TEST_F(SelectorTest, ClassSelector) {
  EXPECT_EQ(QuerySelectorAll(doc_.get(), ".item").size(), 2u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), ".first").size(), 1u);
  // Multi-valued class attributes match each token.
  EXPECT_EQ(QuerySelectorAll(doc_.get(), ".page").size(), 2u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), ".wide").size(), 1u);
}

TEST_F(SelectorTest, UniversalSelector) {
  // Everything, including html/head/body.
  EXPECT_GT(QuerySelectorAll(doc_.get(), "*").size(), 10u);
}

TEST_F(SelectorTest, AttributePresence) {
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "[href]").size(), 2u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "[method]").size(), 1u);
}

TEST_F(SelectorTest, AttributeValue) {
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "[type=submit]").size(), 1u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "[type=\"text\"]").size(), 1u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "[type='text']").size(), 1u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "[type=radio]").size(), 0u);
}

TEST_F(SelectorTest, CompoundSelector) {
  EXPECT_NE(QuerySelector(doc_.get(), "form.checkout#f[method=post]"), nullptr);
  EXPECT_EQ(QuerySelector(doc_.get(), "form.checkout[method=get]"), nullptr);
  EXPECT_EQ(QuerySelector(doc_.get(), "span.checkout"), nullptr);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "li.item.first").size(), 1u);
}

TEST_F(SelectorTest, DescendantCombinator) {
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "ul a").size(), 2u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "#main a").size(), 2u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "form a").size(), 0u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "div div span").size(), 1u);
}

TEST_F(SelectorTest, ChildCombinator) {
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "ul > li").size(), 2u);
  // <a> is a grandchild of <ul>, not a child.
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "ul > a").size(), 0u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "li > a").size(), 2u);
}

TEST_F(SelectorTest, MixedCombinators) {
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "#main ul > li a").size(), 2u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "body > div span").size(), 1u);
}

TEST_F(SelectorTest, ChildCombinatorNeedsBacktracking) {
  // div.outer > div span: the span's NEAREST div ancestor (.inner) is not a
  // child of .outer's parent chain in the right way — the matcher must try
  // the farther candidate.
  auto doc = ParseDocument(
      "<html><body><section id=\"s\">"
      "<div class=\"a\"><div class=\"b\"><span id=\"x\">x</span></div></div>"
      "</section></body></html>");
  // section > div span: nearest div of span is .b whose parent is .a (a div,
  // not section); the .a candidate's parent IS section. Greedy fails; the
  // backtracking matcher succeeds.
  EXPECT_NE(QuerySelector(doc.get(), "section > div span"), nullptr);
}

TEST_F(SelectorTest, Grouping) {
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "ul, form").size(), 2u);
  EXPECT_EQ(QuerySelectorAll(doc_.get(), "#deep, .first, bogus").size(), 2u);
}

TEST_F(SelectorTest, MatchesSingleElement) {
  auto selector = Selector::Parse("li.item");
  ASSERT_TRUE(selector.ok());
  Element* li = QuerySelector(doc_.get(), ".first");
  ASSERT_NE(li, nullptr);
  EXPECT_TRUE(selector->Matches(*li));
  EXPECT_FALSE(selector->Matches(*QuerySelector(doc_.get(), "#main")));
}

TEST_F(SelectorTest, ParseErrors) {
  EXPECT_FALSE(Selector::Parse("").ok());
  EXPECT_FALSE(Selector::Parse("   ").ok());
  EXPECT_FALSE(Selector::Parse("div >").ok());
  EXPECT_FALSE(Selector::Parse("> div").ok());
  EXPECT_FALSE(Selector::Parse("div[unterminated").ok());
  EXPECT_FALSE(Selector::Parse("div..x").ok());
  EXPECT_FALSE(Selector::Parse("#").ok());
  EXPECT_FALSE(Selector::Parse("div[]").ok());
  EXPECT_FALSE(Selector::Parse("div{}").ok());
}

TEST_F(SelectorTest, OneShotHelpersSwallowParseErrors) {
  EXPECT_TRUE(QuerySelectorAll(doc_.get(), ">>bad<<").empty());
  EXPECT_EQ(QuerySelector(doc_.get(), ">>bad<<"), nullptr);
}

TEST_F(SelectorTest, WorksOnSubtrees) {
  Element* form = QuerySelector(doc_.get(), "#f");
  ASSERT_NE(form, nullptr);
  EXPECT_EQ(QuerySelectorAll(form, "input").size(), 2u);
  EXPECT_EQ(QuerySelectorAll(form, "li").size(), 0u);
}

TEST_F(SelectorTest, SelectorTextPreserved) {
  auto selector = Selector::Parse("ul > li.item");
  ASSERT_TRUE(selector.ok());
  EXPECT_EQ(selector->text(), "ul > li.item");
}

}  // namespace
}  // namespace rcb
