// Tests for Ajax-Snippet: joining, the poll loop, the Fig. 5 apply
// procedure, action queueing, and supplementary-object fetching.
#include <gtest/gtest.h>

#include "src/core/ajax_snippet.h"
#include "src/core/rcb_agent.h"
#include "src/sites/site_server.h"

namespace rcb {
namespace {

class SnippetTest : public ::testing::Test {
 protected:
  SnippetTest() : network_(&loop_) {
    network_.AddHost("host-pc", {});
    network_.AddHost("participant-pc", {});
    network_.AddHost("www.origin.test", {});
    network_.SetLatency("host-pc", "participant-pc", Duration::Millis(1));
    origin_ = std::make_unique<SiteServer>(&loop_, &network_, "www.origin.test");
    origin_->ServeStatic("/", "text/html",
                         "<html><head><title>Page1</title>"
                         "<style>.s{}</style></head>"
                         "<body class=\"c1\"><img src=\"/a.png\">"
                         "<p id=\"p\">content1</p>"
                         "<form id=\"f\" action=\"/go\" method=\"get\">"
                         "<input name=\"q\" value=\"\"></form>"
                         "<a id=\"l\" href=\"/two\">two</a></body></html>");
    origin_->ServeStatic("/a.png", "image/png", "PNG1");
    origin_->ServeStatic("/two", "text/html",
                         "<html><head><title>Page2</title></head>"
                         "<body><p>content2</p></body></html>");
    origin_->Route("/go", [](const HttpRequest& request) {
      return HttpResponse::Ok(
          "text/html", "<html><head><title>Searched:" +
                           request.QueryParams()["q"] +
                           "</title></head><body><p>results</p></body></html>");
    });
    host_browser_ = std::make_unique<Browser>(&loop_, &network_, "host-pc");
    participant_browser_ =
        std::make_unique<Browser>(&loop_, &network_, "participant-pc");
  }

  void StartAgent(AgentConfig config = {}) {
    agent_ = std::make_unique<RcbAgent>(host_browser_.get(), config);
    ASSERT_TRUE(agent_->Start().ok());
  }

  void HostNavigate(const std::string& path = "/") {
    bool done = false;
    host_browser_->Navigate(Url::Make("http", "www.origin.test", 80, path),
                            [&](const Status&, const PageLoadStats&) {
                              done = true;
                            });
    loop_.RunUntilCondition([&] { return done; });
  }

  Status Join(SnippetConfig config = {}) {
    snippet_ = std::make_unique<AjaxSnippet>(participant_browser_.get(), config);
    Status out;
    bool done = false;
    snippet_->Join(agent_->AgentUrl(), [&](Status status) {
      out = status;
      done = true;
    });
    loop_.RunUntilCondition([&] { return done; });
    return out;
  }

  // Runs until the participant holds content version >= the agent's.
  void WaitForUpdate() {
    loop_.RunUntilCondition([&] {
      return snippet_->doc_time_ms() >= 0 &&
             snippet_->metrics().content_updates > 0;
    });
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> origin_;
  std::unique_ptr<Browser> host_browser_;
  std::unique_ptr<Browser> participant_browser_;
  std::unique_ptr<RcbAgent> agent_;
  std::unique_ptr<AjaxSnippet> snippet_;
};

TEST_F(SnippetTest, JoinLoadsInitialPageAndReadsConfig) {
  AgentConfig config;
  config.poll_interval = Duration::Millis(500);
  StartAgent(config);
  ASSERT_TRUE(Join().ok());
  EXPECT_TRUE(snippet_->joined());
  EXPECT_FALSE(snippet_->participant_id().empty());
  EXPECT_EQ(snippet_->poll_interval(), Duration::Millis(500));
  // Initial page rendered on the participant browser.
  EXPECT_EQ(participant_browser_->document()->Title(),
            "RCB co-browsing session");
}

TEST_F(SnippetTest, JoinFailsWhenAgentUnreachable) {
  StartAgent();
  agent_->Stop();
  AjaxSnippet snippet(participant_browser_.get(), {});
  Status out;
  bool done = false;
  snippet.Join(Url::Make("http", "host-pc", 3000, "/"), [&](Status status) {
    out = status;
    done = true;
  });
  loop_.RunUntilCondition([&] { return done; });
  EXPECT_FALSE(out.ok());
  EXPECT_FALSE(snippet.joined());
}

TEST_F(SnippetTest, ContentSynchronizedAfterHostNavigation) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  WaitForUpdate();
  Document* doc = participant_browser_->document();
  EXPECT_EQ(doc->Title(), "Page1");
  EXPECT_EQ(doc->ById("p")->TextContent(), "content1");
  // Body attributes copied.
  EXPECT_EQ(doc->body()->AttrOr("class"), "c1");
  EXPECT_GT(snippet_->metrics().content_updates, 0u);
  EXPECT_GT(snippet_->metrics().last_content_download, Duration::Zero());
}

TEST_F(SnippetTest, SnippetScriptSurvivesApply) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  WaitForUpdate();
  // Fig. 5 step 1: the snippet keeps itself in the head across updates.
  Element* head = participant_browser_->document()->head();
  ASSERT_NE(head, nullptr);
  Element* script = nullptr;
  for (Element* child : head->ChildElements()) {
    if (child->tag_name() == "script" && child->id() == "rcb-snippet") {
      script = child;
    }
  }
  EXPECT_NE(script, nullptr);
  // And the host page's own head children are present too.
  EXPECT_NE(head->ChildByTag("title"), nullptr);
  EXPECT_NE(head->ChildByTag("style"), nullptr);
}

TEST_F(SnippetTest, RepeatedPollsNoChangeAreEmpty) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  WaitForUpdate();
  uint64_t updates = snippet_->metrics().content_updates;
  loop_.RunFor(Duration::Seconds(5.0));
  EXPECT_EQ(snippet_->metrics().content_updates, updates);
  EXPECT_GT(snippet_->metrics().empty_responses, 2u);
}

TEST_F(SnippetTest, IdlePollsAreCountedAsWastedWithByteTotals) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  WaitForUpdate();
  // Classic polling with no streamed transport in play: every empty round
  // trip is pure idle tax and must be accounted (DESIGN.md §15).
  uint64_t wasted_before = snippet_->metrics().wasted_polls;
  uint64_t bytes_before = snippet_->metrics().wasted_poll_bytes;
  loop_.RunFor(Duration::Seconds(5.0));
  uint64_t wasted = snippet_->metrics().wasted_polls - wasted_before;
  EXPECT_GT(wasted, 2u);
  EXPECT_EQ(snippet_->metrics().wasted_polls, snippet_->metrics().empty_responses);
  // Each wasted poll carries at least its request line + form body + the
  // empty 200 response — well over 50 bytes of pure overhead.
  EXPECT_GT(snippet_->metrics().wasted_poll_bytes - bytes_before, wasted * 50);

  // A content-bearing poll is NOT wasted: mutate and re-check.
  uint64_t wasted_total = snippet_->metrics().wasted_polls;
  host_browser_->MutateDocument([](Document* document) {
    document->body()->SetAttribute("data-live", "1");
  });
  loop_.RunUntilCondition([&] {
    return participant_browser_->document()->body()->AttrOr("data-live") == "1";
  });
  // The poll that delivered the mutation did not bump the wasted counter
  // (intervening empty polls may have).
  EXPECT_LE(snippet_->metrics().wasted_polls - wasted_total, 2u);
  EXPECT_LT(snippet_->metrics().wasted_polls,
            snippet_->metrics().polls_sent);
}

TEST_F(SnippetTest, SecondNavigationReplacesContent) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate("/");
  WaitForUpdate();
  HostNavigate("/two");
  loop_.RunUntilCondition(
      [&] { return participant_browser_->document()->Title() == "Page2"; });
  EXPECT_EQ(participant_browser_->document()->ById("p"), nullptr);
  EXPECT_NE(participant_browser_->document()->body()->TextContent().find(
                "content2"),
            std::string::npos);
}

TEST_F(SnippetTest, DynamicMutationSynchronized) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  WaitForUpdate();
  host_browser_->MutateDocument([](Document* document) {
    Element* p = document->ById("p");
    p->RemoveAllChildren();
    p->AppendChild(MakeText("ajax-updated"));
  });
  loop_.RunUntilCondition([&] {
    Element* p = participant_browser_->document()->ById("p");
    return p != nullptr && p->TextContent() == "ajax-updated";
  });
  SUCCEED();
}

TEST_F(SnippetTest, SupplementaryObjectsFetchedNonCacheMode) {
  AgentConfig config;
  config.cache_mode = false;
  StartAgent(config);
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  bool objects_done = false;
  snippet_->SetObjectsLoadedListener([&](Duration) { objects_done = true; });
  loop_.RunUntilCondition([&] { return objects_done; });
  EXPECT_EQ(snippet_->metrics().last_object_count, 1u);
  EXPECT_EQ(snippet_->metrics().last_objects_from_host, 0u);  // origin-served
  EXPECT_EQ(snippet_->metrics().object_fetch_failures, 0u);
}

TEST_F(SnippetTest, SupplementaryObjectsFetchedFromHostInCacheMode) {
  AgentConfig config;
  config.cache_mode = true;
  StartAgent(config);
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  bool objects_done = false;
  snippet_->SetObjectsLoadedListener([&](Duration) { objects_done = true; });
  loop_.RunUntilCondition([&] { return objects_done; });
  EXPECT_EQ(snippet_->metrics().last_object_count, 1u);
  EXPECT_EQ(snippet_->metrics().last_objects_from_host, 1u);  // agent-served
  EXPECT_EQ(snippet_->metrics().object_fetch_failures, 0u);
  EXPECT_GT(agent_->metrics().object_requests, 0u);
}

TEST_F(SnippetTest, CacheModeWorksWithoutOriginConnectivity) {
  // The participant cannot reach the origin at all (§3.1 step 8 benefit).
  network_.BlockRoute("participant-pc", "www.origin.test");
  AgentConfig config;
  config.cache_mode = true;
  StartAgent(config);
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  bool objects_done = false;
  snippet_->SetObjectsLoadedListener([&](Duration) { objects_done = true; });
  loop_.RunUntilCondition([&] { return objects_done; });
  EXPECT_EQ(snippet_->metrics().object_fetch_failures, 0u);
  EXPECT_EQ(participant_browser_->document()->Title(), "Page1");
}

TEST_F(SnippetTest, NonCacheModeFailsWithoutOriginConnectivity) {
  network_.BlockRoute("participant-pc", "www.origin.test");
  AgentConfig config;
  config.cache_mode = false;
  StartAgent(config);
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  bool objects_done = false;
  snippet_->SetObjectsLoadedListener([&](Duration) { objects_done = true; });
  loop_.RunUntilCondition([&] { return objects_done; });
  EXPECT_GT(snippet_->metrics().object_fetch_failures, 0u);
}

TEST_F(SnippetTest, ClickQueuedAndAppliedOnHost) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  WaitForUpdate();
  Element* anchor = participant_browser_->document()->ById("l");
  ASSERT_NE(anchor, nullptr);
  // The synchronized element carries the rewritten handler + rcb id.
  EXPECT_EQ(anchor->AttrOr("onclick"), "return rcbClick(this)");
  ASSERT_TRUE(snippet_->ClickElement(anchor).ok());
  snippet_->PollNow();
  loop_.RunUntilCondition(
      [&] { return host_browser_->document()->Title() == "Page2"; });
  // ... and the new page flows back to the participant.
  loop_.RunUntilCondition(
      [&] { return participant_browser_->document()->Title() == "Page2"; });
  SUCCEED();
}

TEST_F(SnippetTest, ClickOnNonSynchronizedElementFails) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  // Initial page elements carry no data-rcb-id.
  Element* form = participant_browser_->document()->ById("rcb-join");
  ASSERT_NE(form, nullptr);
  EXPECT_EQ(snippet_->ClickElement(form).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(snippet_->ClickElement(nullptr).ok());
}

TEST_F(SnippetTest, FormCoFillFlowsToHost) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  WaitForUpdate();
  Element* form = participant_browser_->document()->ById("f");
  ASSERT_NE(form, nullptr);
  ASSERT_TRUE(snippet_->FillFormField(form, "q", "participant text").ok());
  // Local echo.
  EXPECT_EQ(form->FindFirst("input")->AttrOr("value"), "participant text");
  snippet_->PollNow();
  loop_.RunUntilCondition([&] {
    Element* host_form = host_browser_->document()->ById("f");
    return host_form != nullptr &&
           host_form->FindFirst("input")->AttrOr("value") == "participant text";
  });
  SUCCEED();
}

TEST_F(SnippetTest, FormSubmitFromParticipantNavigatesHost) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  WaitForUpdate();
  Element* form = participant_browser_->document()->ById("f");
  ASSERT_TRUE(snippet_->FillFormField(form, "q", "find me").ok());
  ASSERT_TRUE(snippet_->SubmitForm(form).ok());
  snippet_->PollNow();
  loop_.RunUntilCondition(
      [&] { return host_browser_->document()->Title() == "Searched:find me"; });
  SUCCEED();
}

TEST_F(SnippetTest, RequestNavigateDrivesHost) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  WaitForUpdate();
  snippet_->RequestNavigate("http://www.origin.test/two");
  snippet_->PollNow();
  loop_.RunUntilCondition(
      [&] { return host_browser_->document()->Title() == "Page2"; });
  SUCCEED();
}

TEST_F(SnippetTest, MouseMirroredToOtherParticipant) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  network_.AddHost("participant-pc-2", {});
  Browser browser2(&loop_, &network_, "participant-pc-2");
  AjaxSnippet snippet2(&browser2, {});
  bool joined2 = false;
  snippet2.Join(agent_->AgentUrl(), [&](Status) { joined2 = true; });
  loop_.RunUntilCondition([&] { return joined2; });

  std::vector<UserAction> received;
  snippet2.SetActionListener(
      [&](const UserAction& action) { received.push_back(action); });

  snippet_->SendMouseMove(42, 17);
  snippet_->PollNow();
  loop_.RunUntilCondition([&] { return !received.empty(); });
  EXPECT_EQ(received[0].type, ActionType::kMouseMove);
  EXPECT_EQ(received[0].x, 42);
  EXPECT_EQ(received[0].origin, snippet_->participant_id());
}

TEST_F(SnippetTest, AuthenticatedSessionEndToEnd) {
  AgentConfig agent_config;
  agent_config.session_key = "sharedsessionkey";
  StartAgent(agent_config);
  SnippetConfig snippet_config;
  snippet_config.session_key = "sharedsessionkey";
  ASSERT_TRUE(Join(snippet_config).ok());
  HostNavigate();
  WaitForUpdate();
  EXPECT_EQ(participant_browser_->document()->Title(), "Page1");
  EXPECT_EQ(snippet_->metrics().auth_rejections, 0u);
  EXPECT_EQ(agent_->metrics().auth_failures, 0u);
}

TEST_F(SnippetTest, WrongKeyRejectedByAgent) {
  AgentConfig agent_config;
  agent_config.session_key = "rightkey";
  StartAgent(agent_config);
  SnippetConfig snippet_config;
  snippet_config.session_key = "wrongkey";
  ASSERT_TRUE(Join(snippet_config).ok());  // initial page is unauthenticated
  HostNavigate();
  loop_.RunFor(Duration::Seconds(3.0));
  EXPECT_GT(snippet_->metrics().auth_rejections, 0u);
  EXPECT_EQ(snippet_->metrics().content_updates, 0u);
  EXPECT_NE(participant_browser_->document()->Title(), "Page1");
}

TEST_F(SnippetTest, LeaveStopsPolling) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  WaitForUpdate();
  uint64_t polls = snippet_->metrics().polls_sent;
  snippet_->Leave();
  EXPECT_FALSE(snippet_->joined());
  loop_.RunFor(Duration::Seconds(5.0));
  // Exactly one extra request: the fire-and-forget goodbye.
  EXPECT_EQ(snippet_->metrics().polls_sent, polls + 1);
}

TEST_F(SnippetTest, PollIntervalOverrideRespected) {
  StartAgent();  // agent advertises 1 s
  SnippetConfig config;
  config.poll_interval_override = Duration::Millis(200);
  ASSERT_TRUE(Join(config).ok());
  EXPECT_EQ(snippet_->poll_interval(), Duration::Millis(200));
  HostNavigate();
  WaitForUpdate();
  uint64_t polls_before = snippet_->metrics().polls_sent;
  loop_.RunFor(Duration::Seconds(2.0));
  // ~10 polls in 2 s at 200 ms (allowing response-time slack).
  uint64_t polls = snippet_->metrics().polls_sent - polls_before;
  EXPECT_GE(polls, 7u);
  EXPECT_LE(polls, 11u);
}

TEST_F(SnippetTest, ApplyMeasuresM6) {
  StartAgent();
  ASSERT_TRUE(Join().ok());
  HostNavigate();
  WaitForUpdate();
  EXPECT_GE(snippet_->metrics().last_apply_time.micros(), 0);
  EXPECT_LT(snippet_->metrics().last_apply_time, Duration::Seconds(1.0));
  EXPECT_GE(snippet_->metrics().total_apply_time,
            snippet_->metrics().last_apply_time);
}

}  // namespace
}  // namespace rcb
