// Unit tests for SHA-256, HMAC-SHA256 (standard test vectors), and session
// key generation.
#include <gtest/gtest.h>

#include "src/crypto/hmac.h"
#include "src/crypto/session_key.h"
#include "src/crypto/sha256.h"
#include "src/util/base64.h"

namespace rcb {
namespace {

// FIPS 180-4 / NIST example vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::HexDigest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::HexDigest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::HexDigest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(chunk);
  }
  auto digest = hasher.Finish();
  EXPECT_EQ(HexEncode(std::string(reinterpret_cast<const char*>(digest.data()),
                                  digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  std::string message = "The quick brown fox jumps over the lazy dog";
  Sha256 hasher;
  for (char c : message) {
    hasher.Update(std::string_view(&c, 1));
  }
  auto digest = hasher.Finish();
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(digest.data()),
                        digest.size()),
            Sha256::Digest(message));
}

TEST(Sha256Test, BoundaryLengths) {
  // Padding edge cases: 55, 56, 63, 64, 65 byte messages.
  for (size_t n : {55u, 56u, 63u, 64u, 65u}) {
    std::string message(n, 'x');
    Sha256 streaming;
    streaming.Update(message.substr(0, n / 2));
    streaming.Update(message.substr(n / 2));
    auto digest = streaming.Finish();
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(digest.data()),
                          digest.size()),
              Sha256::Digest(message))
        << "length " << n;
  }
}

// RFC 4231 HMAC-SHA256 test vectors.
TEST(HmacTest, Rfc4231Case1) {
  std::string key(20, '\x0b');
  EXPECT_EQ(HmacSha256Hex(key, "Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HmacSha256Hex("Jefe", "what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  std::string key(20, '\xaa');
  std::string message(50, '\xdd');
  EXPECT_EQ(HmacSha256Hex(key, message),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  std::string key(131, '\xaa');
  EXPECT_EQ(HmacSha256Hex(key, "Test Using Larger Than Block-Size Key - "
                               "Hash Key First"),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  EXPECT_NE(HmacSha256Hex("key1", "message"), HmacSha256Hex("key2", "message"));
  EXPECT_NE(HmacSha256Hex("key", "message1"), HmacSha256Hex("key", "message2"));
}

TEST(ConstantTimeEqualsTest, Basics) {
  EXPECT_TRUE(ConstantTimeEquals("", ""));
  EXPECT_TRUE(ConstantTimeEquals("abc", "abc"));
  EXPECT_FALSE(ConstantTimeEquals("abc", "abd"));
  EXPECT_FALSE(ConstantTimeEquals("abc", "ab"));
  EXPECT_FALSE(ConstantTimeEquals("ab", "abc"));
  EXPECT_FALSE(ConstantTimeEquals("", "x"));
}

TEST(SessionKeyTest, GeneratesDistinctTypableKeys) {
  SessionKeyGenerator generator(42);
  std::string k1 = generator.Generate();
  std::string k2 = generator.Generate();
  EXPECT_EQ(k1.size(), 20u);
  EXPECT_NE(k1, k2);
  for (char c : k1) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'));
  }
}

TEST(SessionKeyTest, DeterministicPerSeed) {
  SessionKeyGenerator a(7);
  SessionKeyGenerator b(7);
  EXPECT_EQ(a.Generate(), b.Generate());
}

}  // namespace
}  // namespace rcb
