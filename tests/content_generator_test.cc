// Tests for the Fig. 3 content-generation pipeline.
#include <gtest/gtest.h>

#include "src/core/content_generator.h"
#include "src/sites/site_server.h"

namespace rcb {
namespace {

class ContentGeneratorTest : public ::testing::Test {
 protected:
  ContentGeneratorTest() : network_(&loop_) {
    network_.AddHost("host-pc", {});
    network_.AddHost("www.origin.test", {});
    server_ = std::make_unique<SiteServer>(&loop_, &network_, "www.origin.test");
    browser_ = std::make_unique<Browser>(&loop_, &network_, "host-pc");
  }

  void Load(const std::string& html,
            const std::map<std::string, std::string>& objects = {}) {
    server_->ServeStatic("/", "text/html", html);
    for (const auto& [path, body] : objects) {
      server_->ServeStatic(path, "application/octet-stream", body);
    }
    bool done = false;
    Status status;
    browser_->Navigate(Url::Make("http", "www.origin.test", 80, "/"),
                       [&](const Status& s, const PageLoadStats&) {
                         status = s;
                         done = true;
                       });
    loop_.RunUntilCondition([&] { return done; });
    ASSERT_TRUE(status.ok()) << status;
  }

  GenerationResult Generate(bool cache_mode) {
    ContentGenerator generator(browser_.get());
    ContentGenOptions options;
    options.cache_mode = cache_mode;
    options.agent_url = Url::Make("http", "host-pc", 3000, "/");
    return generator.Generate(1000, options);
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> server_;
  std::unique_ptr<Browser> browser_;
};

TEST_F(ContentGeneratorTest, ExtractsHeadAndBody) {
  Load("<html><head><title>T</title><meta name=\"a\" content=\"b\">"
       "<style>.x{}</style></head>"
       "<body class=\"main\"><p>hello</p></body></html>");
  GenerationResult result = Generate(/*cache_mode=*/false);
  const Snapshot& snapshot = result.snapshot;
  EXPECT_TRUE(snapshot.has_content);
  EXPECT_EQ(snapshot.doc_time_ms, 1000);
  ASSERT_EQ(snapshot.head_children.size(), 3u);
  EXPECT_EQ(snapshot.head_children[0].tag, "title");
  EXPECT_EQ(snapshot.head_children[0].inner_html, "T");
  EXPECT_EQ(snapshot.head_children[1].tag, "meta");
  EXPECT_EQ(snapshot.head_children[2].tag, "style");
  EXPECT_EQ(snapshot.head_children[2].inner_html, ".x{}");
  ASSERT_TRUE(snapshot.body.has_value());
  EXPECT_EQ(snapshot.body->tag, "body");
  EXPECT_NE(snapshot.body->inner_html.find("<p>hello</p>"), std::string::npos);
  // body attributes preserved.
  bool saw_class = false;
  for (const auto& [name, value] : snapshot.body->attributes) {
    if (name == "class" && value == "main") {
      saw_class = true;
    }
  }
  EXPECT_TRUE(saw_class);
}

TEST_F(ContentGeneratorTest, RelativeUrlsAbsolutized) {
  Load("<html><body><img src=\"/img/a.png\"><img src=\"b.png\">"
       "<a href=\"../up\">l</a>"
       "<img src=\"http://other.test/c.png\"></body></html>",
       {{"/img/a.png", "A"}, {"/b.png", "B"}});
  GenerationResult result = Generate(/*cache_mode=*/false);
  const std::string& body = result.snapshot.body->inner_html;
  EXPECT_NE(body.find("src=\"http://www.origin.test/img/a.png\""),
            std::string::npos);
  EXPECT_NE(body.find("src=\"http://www.origin.test/b.png\""), std::string::npos);
  EXPECT_NE(body.find("href=\"http://www.origin.test/up\""), std::string::npos);
  // Already-absolute URL untouched.
  EXPECT_NE(body.find("src=\"http://other.test/c.png\""), std::string::npos);
  EXPECT_EQ(result.urls_absolutized, 3u);
}

TEST_F(ContentGeneratorTest, CacheModeRewritesCachedObjectsOnly) {
  Load("<html><body><img src=\"/img/a.png\">"
       "<img src=\"http://uncached.test/x.png\">"
       "<a href=\"/nav\">n</a></body></html>",
       {{"/img/a.png", "A"}});
  GenerationResult result = Generate(/*cache_mode=*/true);
  const std::string& body = result.snapshot.body->inner_html;
  // Cached image now points at the agent.
  EXPECT_NE(body.find("src=\"http://host-pc:3000/obj/"), std::string::npos);
  // Uncached image still points at its origin.
  EXPECT_NE(body.find("src=\"http://uncached.test/x.png\""), std::string::npos);
  // Navigation links are never cache-rewritten.
  EXPECT_NE(body.find("href=\"http://www.origin.test/nav\""), std::string::npos);
  EXPECT_EQ(result.urls_cache_rewritten, 1u);
}

TEST_F(ContentGeneratorTest, NonCacheModeLeavesOriginUrls) {
  Load("<html><body><img src=\"/img/a.png\"></body></html>",
       {{"/img/a.png", "A"}});
  GenerationResult result = Generate(/*cache_mode=*/false);
  EXPECT_EQ(result.urls_cache_rewritten, 0u);
  EXPECT_EQ(result.snapshot.body->inner_html.find("host-pc:3000"),
            std::string::npos);
}

TEST_F(ContentGeneratorTest, CacheRewrittenKeyResolvesInCache) {
  Load("<html><body><img src=\"/img/a.png\"></body></html>",
       {{"/img/a.png", "PIXELDATA"}});
  GenerationResult result = Generate(/*cache_mode=*/true);
  const std::string& body = result.snapshot.body->inner_html;
  size_t pos = body.find("/obj/");
  ASSERT_NE(pos, std::string::npos);
  size_t end = body.find('"', pos);
  std::string key = body.substr(pos + 5, end - pos - 5);
  const CacheEntry* entry = browser_->cache().LookupByKey(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->body, "PIXELDATA");
}

TEST_F(ContentGeneratorTest, EventAttributesRewritten) {
  Load("<html><body>"
       "<form id=\"f\" action=\"/go\"><input name=\"q\" value=\"\">"
       "<input type=\"submit\" name=\"s\" value=\"Go\"></form>"
       "<a href=\"/x\" id=\"l\">link</a>"
       "<button id=\"b\">press</button>"
       "</body></html>");
  GenerationResult result = Generate(/*cache_mode=*/false);
  const std::string& body = result.snapshot.body->inner_html;
  EXPECT_NE(body.find("onsubmit=\"return rcbSubmit(this)\""), std::string::npos);
  EXPECT_NE(body.find("onclick=\"return rcbClick(this)\""), std::string::npos);
  EXPECT_NE(body.find("onchange=\"rcbFill(this)\""), std::string::npos);
  // All five interactive elements got ids 0..4 in pre-order.
  EXPECT_EQ(result.interactive_elements, 5u);
  EXPECT_NE(body.find("data-rcb-id=\"0\""), std::string::npos);
  EXPECT_NE(body.find("data-rcb-id=\"4\""), std::string::npos);
}

TEST_F(ContentGeneratorTest, HostDocumentNotMutated) {
  Load("<html><body><form action=\"/go\"><input name=\"q\" value=\"\"></form>"
       "<img src=\"/img/a.png\"></body></html>",
       {{"/img/a.png", "A"}});
  std::string before = browser_->document()->body()->OuterHtml();
  Generate(/*cache_mode=*/true);
  std::string after = browser_->document()->body()->OuterHtml();
  // The Fig. 3 pipeline works on a clone; the live page must be untouched.
  EXPECT_EQ(before, after);
  EXPECT_EQ(before.find("data-rcb-id"), std::string::npos);
}

TEST_F(ContentGeneratorTest, InteractiveEnumerationConsistentWithLiveDoc) {
  Load("<html><body><a href=\"/1\">1</a>"
       "<form action=\"/f\"><input name=\"x\" value=\"\"></form>"
       "<a href=\"/2\">2</a></body></html>");
  GenerationResult result = Generate(/*cache_mode=*/false);
  // The clone enumeration order must match the live-document enumeration the
  // agent uses when resolving participant action targets.
  auto live = ContentGenerator::InteractiveElements(browser_->document());
  ASSERT_EQ(live.size(), result.interactive_elements);
  EXPECT_EQ(live[0]->tag_name(), "a");
  EXPECT_EQ(live[1]->tag_name(), "form");
  EXPECT_EQ(live[2]->tag_name(), "input");
  EXPECT_EQ(live[3]->tag_name(), "a");
}

TEST_F(ContentGeneratorTest, AnchorWithoutHrefNotInteractive) {
  Element with_href("a");
  with_href.SetAttribute("href", "/x");
  Element without_href("a");
  EXPECT_TRUE(ContentGenerator::IsInteractive(with_href));
  EXPECT_FALSE(ContentGenerator::IsInteractive(without_href));
}

TEST_F(ContentGeneratorTest, FramesetExtraction) {
  Load("<html><head><title>F</title></head>"
       "<frameset rows=\"*\"><frame src=\"/fa.html\"></frameset>"
       "<noframes><p>n</p></noframes></html>");
  GenerationResult result = Generate(/*cache_mode=*/false);
  EXPECT_FALSE(result.snapshot.body.has_value());
  ASSERT_TRUE(result.snapshot.frameset.has_value());
  EXPECT_NE(result.snapshot.frameset->inner_html.find(
                "src=\"http://www.origin.test/fa.html\""),
            std::string::npos);
  ASSERT_TRUE(result.snapshot.noframes.has_value());
}

TEST_F(ContentGeneratorTest, EmptyBrowserYieldsNoContent) {
  Browser empty(&loop_, &network_, "host-pc");
  ContentGenerator generator(&empty);
  ContentGenOptions options;
  GenerationResult result = generator.Generate(1, options);
  EXPECT_FALSE(result.snapshot.has_content);
}

TEST_F(ContentGeneratorTest, PerObjectCacheModeFilter) {
  // §4.1.2: "allow different objects on the same webpage to use different
  // modes" — here, images via the host cache, stylesheets from the origin.
  Load("<html><head><link rel=\"stylesheet\" href=\"/s.css\"></head>"
       "<body><img src=\"/img/a.png\"></body></html>",
       {{"/s.css", "css"}, {"/img/a.png", "A"}});
  ContentGenerator generator(browser_.get());
  ContentGenOptions options;
  options.cache_mode = true;
  options.agent_url = Url::Make("http", "host-pc", 3000, "/");
  options.cache_object_filter = [](const Url&, const std::string& kind) {
    return kind == "image";
  };
  GenerationResult result = generator.Generate(1, options);
  EXPECT_EQ(result.urls_cache_rewritten, 1u);
  const std::string& body = result.snapshot.body->inner_html;
  EXPECT_NE(body.find("src=\"http://host-pc:3000/obj/"), std::string::npos);
  // The stylesheet stayed on the origin: check the head payload.
  bool stylesheet_on_origin = false;
  for (const auto& child : result.snapshot.head_children) {
    for (const auto& [name, value] : child.attributes) {
      if (name == "href" && value == "http://www.origin.test/s.css") {
        stylesheet_on_origin = true;
      }
    }
  }
  EXPECT_TRUE(stylesheet_on_origin);
}

TEST_F(ContentGeneratorTest, WallTimeMeasured) {
  Load("<html><body><p>x</p></body></html>");
  GenerationResult result = Generate(/*cache_mode=*/false);
  // Real CPU time: non-negative and sane (< 1 s for a trivial page).
  EXPECT_GE(result.wall_time.micros(), 0);
  EXPECT_LT(result.wall_time, Duration::Seconds(1.0));
}

}  // namespace
}  // namespace rcb
