// Streamed-sync transport (src/transport, DESIGN.md §15): frame codec and
// adaptive-poll unit tests, plus end-to-end negotiation over full sessions —
// framed push, long-poll parking, heartbeat-timeout recovery through the
// signed resume, capacity-capped downgrade, and adaptive polling.
#include <gtest/gtest.h>

#include "src/core/session.h"
#include "src/html/dom.h"
#include "src/net/fault_injector.h"
#include "src/net/profiles.h"
#include "src/sites/site_server.h"
#include "src/transport/adaptive_poll.h"
#include "src/transport/capabilities.h"
#include "src/transport/frame.h"

namespace rcb {
namespace {

using transport::AdaptivePollConfig;
using transport::AdaptivePollPolicy;
using transport::EncodeFrame;
using transport::FormatTransportGrant;
using transport::Frame;
using transport::FrameParser;
using transport::FrameType;
using transport::GrantMode;
using transport::ParseTransportGrant;
using transport::TransportGrant;

// ------------------------------------------------------- frame codec ------

Frame MakeFrame(FrameType type, uint64_t seq, std::string body) {
  Frame frame;
  frame.type = type;
  frame.seq = seq;
  frame.body = std::move(body);
  return frame;
}

TEST(FrameCodecTest, RoundTripsAllTypesWithoutKey) {
  FrameParser parser("");
  parser.Append(EncodeFrame(MakeFrame(FrameType::kHello, 1, "hb=5000"), ""));
  parser.Append(EncodeFrame(MakeFrame(FrameType::kData, 2, "<xml/>"), ""));
  parser.Append(EncodeFrame(MakeFrame(FrameType::kHeartbeat, 3, ""), ""));

  auto hello = parser.Next();
  ASSERT_TRUE(hello.ok());
  ASSERT_TRUE(hello->has_value());
  EXPECT_EQ((*hello)->type, FrameType::kHello);
  EXPECT_EQ((*hello)->seq, 1u);
  EXPECT_EQ((*hello)->body, "hb=5000");

  auto data = parser.Next();
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(data->has_value());
  EXPECT_EQ((*data)->type, FrameType::kData);
  EXPECT_EQ((*data)->body, "<xml/>");

  auto hb = parser.Next();
  ASSERT_TRUE(hb.ok());
  ASSERT_TRUE(hb->has_value());
  EXPECT_EQ((*hb)->type, FrameType::kHeartbeat);
  EXPECT_TRUE((*hb)->body.empty());

  auto none = parser.Next();
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
  EXPECT_EQ(parser.frames_parsed(), 3u);
  EXPECT_EQ(parser.last_seq(), 3u);
}

TEST(FrameCodecTest, ParsesArbitraryTcpFragmentation) {
  std::string wire;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    wire += EncodeFrame(
        MakeFrame(FrameType::kData, seq, "payload-" + std::to_string(seq)),
        "key");
  }
  // Worst-case fragmentation: one byte per Append.
  FrameParser parser("key");
  size_t frames = 0;
  for (char c : wire) {
    parser.Append(std::string_view(&c, 1));
    while (true) {
      auto frame = parser.Next();
      ASSERT_TRUE(frame.ok()) << frame.status();
      if (!frame->has_value()) {
        break;
      }
      ++frames;
      EXPECT_EQ((*frame)->body, "payload-" + std::to_string((*frame)->seq));
    }
  }
  EXPECT_EQ(frames, 5u);
}

TEST(FrameCodecTest, MacCoversTypeSeqAndBody) {
  std::string good = EncodeFrame(MakeFrame(FrameType::kData, 1, "body"), "k1");
  // Same frame, different key: the MAC hex differs.
  EXPECT_NE(good, EncodeFrame(MakeFrame(FrameType::kData, 1, "body"), "k2"));

  // Tampering with the body is caught, and the error is sticky.
  std::string tampered = good;
  tampered[tampered.find("body")] = 'B';
  FrameParser parser("k1");
  parser.Append(tampered);
  auto frame = parser.Next();
  EXPECT_FALSE(frame.ok());
  parser.Append(good);
  EXPECT_FALSE(parser.Next().ok()) << "frame errors must be sticky";
}

TEST(FrameCodecTest, KeyedStreamRejectsUnsignedFrames) {
  FrameParser parser("secret");
  parser.Append(EncodeFrame(MakeFrame(FrameType::kData, 1, "x"), ""));
  EXPECT_FALSE(parser.Next().ok());
}

TEST(FrameCodecTest, RejectsReplayedOrRegressingSequence) {
  FrameParser parser("key");
  parser.Append(EncodeFrame(MakeFrame(FrameType::kData, 5, "a"), "key"));
  auto first = parser.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  // Replaying seq 5 (or anything below it) is the poll path's anti-replay
  // discipline applied to frames.
  parser.Append(EncodeFrame(MakeFrame(FrameType::kData, 5, "a"), "key"));
  EXPECT_FALSE(parser.Next().ok());
}

TEST(FrameCodecTest, RejectsMalformedAndOversizedHeaders) {
  {
    FrameParser parser("");
    parser.Append("HTTP/1.1 200 OK\r\n");
    EXPECT_FALSE(parser.Next().ok());
  }
  {
    FrameParser parser("");
    parser.Append("RCBF1 data 1 99999999999\r\n");
    EXPECT_FALSE(parser.Next().ok()) << "body length above kMaxBodyBytes";
  }
  {
    FrameParser parser("");
    parser.Append("RCBF1 bogus 1 0\r\n\r\n");
    EXPECT_FALSE(parser.Next().ok()) << "unknown frame type";
  }
}

TEST(TransportGrantTest, FormatsAndParsesBothModes) {
  TransportGrant frames;
  frames.mode = GrantMode::kFrames;
  frames.heartbeat_ms = 5000;
  auto parsed = ParseTransportGrant(FormatTransportGrant(frames));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mode, GrantMode::kFrames);
  EXPECT_EQ(parsed->heartbeat_ms, 5000);

  TransportGrant longpoll;
  longpoll.mode = GrantMode::kLongPoll;
  longpoll.hold_ms = 10000;
  parsed = ParseTransportGrant(FormatTransportGrant(longpoll));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mode, GrantMode::kLongPoll);
  EXPECT_EQ(parsed->hold_ms, 10000);

  // Anything malformed downgrades (nullopt), never errors.
  EXPECT_FALSE(ParseTransportGrant("").has_value());
  EXPECT_FALSE(ParseTransportGrant("websocket; hb=1").has_value());
}

// ----------------------------------------------------- adaptive policy ----

TEST(AdaptivePollPolicyTest, GrowsAfterThresholdCapsAndSnapsBack) {
  AdaptivePollConfig config;
  config.base = Duration::Millis(250);
  config.max = Duration::Seconds(2.0);
  config.growth = 2.0;
  config.idle_threshold = 2;
  AdaptivePollPolicy policy(config);

  EXPECT_EQ(policy.Current(), Duration::Millis(250));
  policy.OnEmpty();
  // Tolerated at base below the `idle_threshold` streak.
  EXPECT_EQ(policy.Current(), Duration::Millis(250));
  policy.OnEmpty();
  EXPECT_EQ(policy.Current(), Duration::Millis(500));
  policy.OnEmpty();
  EXPECT_EQ(policy.Current(), Duration::Millis(1000));
  policy.OnEmpty();
  EXPECT_EQ(policy.Current(), Duration::Seconds(2.0));
  policy.OnEmpty();
  EXPECT_EQ(policy.Current(), Duration::Seconds(2.0)) << "capped at max";

  policy.OnActivity();
  EXPECT_EQ(policy.Current(), Duration::Millis(250));
  EXPECT_EQ(policy.idle_streak(), 0u);
  EXPECT_EQ(policy.snapbacks(), 1u);
  // Snapping back while already at base is not a snap-back event.
  policy.OnActivity();
  EXPECT_EQ(policy.snapbacks(), 1u);
}

// ------------------------------------------------- end-to-end sessions ----

// One host + N participants on a simulated network with a trivial origin
// page, all transport knobs taken from the caller's SessionOptions.
class TransportSessionTest : public ::testing::Test {
 protected:
  TransportSessionTest() : network_(&loop_) {
    network_.AddHost("www.site.test", {});
    site_ = std::make_unique<SiteServer>(&loop_, &network_, "www.site.test");
    site_->ServeStatic("/", "text/html",
                       "<html><head><title>T</title></head>"
                       "<body><p id=\"p\">v1</p></body></html>");
  }

  SessionOptions BaseOptions() {
    SessionOptions options;
    options.profile = LanProfile();
    options.enable_auth = true;
    options.poll_interval = Duration::Millis(250);
    return options;
  }

  void NavigateHost(CoBrowsingSession* session) {
    bool loaded = false;
    session->host_browser()->Navigate(
        Url::Make("http", "www.site.test", 80, "/"),
        [&](const Status& status, const PageLoadStats&) {
          ASSERT_TRUE(status.ok()) << status;
          loaded = true;
        });
    loop_.RunUntilCondition([&] { return loaded; });
    ASSERT_TRUE(session->WaitForSync().ok());
  }

  void MutateHost(CoBrowsingSession* session, const std::string& marker) {
    session->host_browser()->MutateDocument([&](Document* document) {
      auto element = MakeElement("div");
      element->SetAttribute("id", marker);
      document->body()->AppendChild(std::move(element));
    });
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> site_;
};

TEST_F(TransportSessionTest, FramedStreamPushesUpdatesWithoutPolling) {
  SessionOptions options = BaseOptions();
  options.enable_transport = true;
  options.snippet_stream_mode = transport::kStreamFrames;
  options.transport_heartbeat = Duration::Seconds(1.0);
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  NavigateHost(&session);

  // The first granted poll upgraded to a held framed stream.
  ASSERT_TRUE(loop_.RunUntilCondition([&] { return session.snippet(0)->frames_open(); }));
  EXPECT_EQ(session.agent()->framed_stream_count(), 1u);
  EXPECT_EQ(session.agent()->metrics().transport_streams_opened, 1u);

  // While streaming, the poll loop is quiescent: an update arrives as a
  // pushed data frame, not as a poll response.
  uint64_t polls_before = session.snippet(0)->metrics().polls_sent;
  uint64_t frames_before = session.snippet(0)->metrics().frames_received;
  MutateHost(&session, "framed-marker");
  ASSERT_TRUE(session.WaitForSync().ok());
  EXPECT_NE(session.participant_browser(0)->document()->ById("framed-marker"),
            nullptr);
  EXPECT_EQ(session.snippet(0)->metrics().polls_sent, polls_before);
  EXPECT_GT(session.snippet(0)->metrics().frames_received, frames_before);
  EXPECT_GT(session.agent()->metrics().transport_frames_sent, 0u);
  EXPECT_GT(session.agent()->metrics().transport_frame_bytes_sent, 0u);
  // Streaming pays no idle-poll tax.
  EXPECT_EQ(session.snippet(0)->metrics().wasted_polls, 0u);
}

TEST_F(TransportSessionTest, FramedStreamCarriesRemoteActionsPromptly) {
  SessionOptions options = BaseOptions();
  options.participant_count = 2;
  options.enable_transport = true;
  options.snippet_stream_mode = transport::kStreamFrames;
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  NavigateHost(&session);
  ASSERT_TRUE(loop_.RunUntilCondition([&] {
    return session.snippet(0)->frames_open() && session.snippet(1)->frames_open();
  }));

  // Participant 0's gesture fans out to participant 1 over its held stream
  // (actions-only data frame), without waiting for any poll interval.
  uint64_t broadcasts_before = session.snippet(1)->metrics().broadcasts_received;
  session.snippet(0)->SendMouseMove(11, 22);
  ASSERT_TRUE(loop_.RunUntilCondition([&] {
    return session.snippet(1)->metrics().broadcasts_received > broadcasts_before;
  }));
  EXPECT_TRUE(session.snippet(1)->frames_open());
}

TEST_F(TransportSessionTest, IdleFramedStreamStaysAliveOnHeartbeats) {
  SessionOptions options = BaseOptions();
  options.enable_transport = true;
  options.snippet_stream_mode = transport::kStreamFrames;
  options.transport_heartbeat = Duration::Millis(500);
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  NavigateHost(&session);
  ASSERT_TRUE(loop_.RunUntilCondition([&] { return session.snippet(0)->frames_open(); }));

  // Ten seconds of dead air: the stream survives on heartbeats alone.
  loop_.RunFor(Duration::Seconds(10.0));
  EXPECT_TRUE(session.snippet(0)->frames_open());
  EXPECT_GE(session.snippet(0)->metrics().heartbeats_received, 8u);
  EXPECT_GE(session.agent()->metrics().transport_heartbeats_sent, 8u);
  EXPECT_EQ(session.snippet(0)->metrics().heartbeat_timeouts, 0u);
  EXPECT_EQ(session.snippet(0)->metrics().wasted_polls, 0u);
}

TEST_F(TransportSessionTest, DroppedStreamRecoversThroughSignedResume) {
  SessionOptions options = BaseOptions();
  options.enable_transport = true;
  options.snippet_stream_mode = transport::kStreamFrames;
  options.transport_heartbeat = Duration::Millis(500);
  options.poll_timeout = Duration::Seconds(1.0);
  options.reconnect_after = 1;
  options.backoff_base = Duration::Millis(250);
  options.backoff_max = Duration::Seconds(2.0);
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  NavigateHost(&session);
  ASSERT_TRUE(loop_.RunUntilCondition([&] { return session.snippet(0)->frames_open(); }));

  // Black-hole the participant for 5 s: heartbeats stop arriving, the
  // watchdog declares the stream dead, and the recovery ladder runs —
  // reconnect_after=1 sends it straight through the signed resume.
  FaultInjector injector(&network_, /*seed=*/77);
  injector.InjectPartition("participant-pc-1", loop_.now() + Duration::Millis(100),
                           Duration::Seconds(5.0), Duration::Millis(200));
  loop_.Schedule(Duration::Millis(500), [&] { MutateHost(&session, "mid-fault"); });
  loop_.RunFor(Duration::Seconds(20.0));

  const SnippetMetrics& snippet = session.snippet(0)->metrics();
  EXPECT_GE(snippet.heartbeat_timeouts, 1u);
  EXPECT_GE(snippet.transport_stream_failures, 1u);
  EXPECT_GE(snippet.reconnects, 1u);
  // The resume was authenticated, not a fresh unauthenticated join.
  EXPECT_GE(session.agent()->metrics().reconnects, 1u);
  EXPECT_EQ(session.agent()->metrics().auth_failures, 0u);
  // Recovered all the way back onto the streamed transport, content intact.
  EXPECT_TRUE(session.snippet(0)->frames_open());
  EXPECT_FALSE(session.snippet(0)->transport_downgraded());
  EXPECT_NE(session.participant_browser(0)->document()->ById("mid-fault"),
            nullptr);
}

TEST_F(TransportSessionTest, LongPollParksIdlePollsAndFlushesOnChange) {
  SessionOptions options = BaseOptions();
  options.enable_transport = true;
  options.snippet_stream_mode = transport::kStreamLongPoll;
  options.transport_hold = Duration::Seconds(2.0);
  options.poll_timeout = Duration::Seconds(5.0);
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  NavigateHost(&session);

  // Idle period: polls get parked and released empty at the hold deadline
  // instead of bouncing every 250 ms.
  uint64_t polls_at_start = session.snippet(0)->metrics().polls_sent;
  loop_.RunFor(Duration::Seconds(10.0));
  uint64_t idle_polls = session.snippet(0)->metrics().polls_sent - polls_at_start;
  EXPECT_LE(idle_polls, 7u) << "a 2 s hold bounds 10 s of idling to ~5 polls";
  EXPECT_GE(session.agent()->metrics().transport_long_polls_parked, 4u);
  EXPECT_GE(session.agent()->metrics().transport_long_poll_expiries, 4u);
  // Held round trips are not "wasted" — they are the delivery channel.
  EXPECT_EQ(session.snippet(0)->metrics().wasted_polls, 0u);

  // A change releases the parked poll immediately: update-visible latency is
  // decoupled from the base poll interval.
  EXPECT_TRUE(session.snippet(0)->long_poll_active());
  SimTime before = loop_.now();
  MutateHost(&session, "parked-marker");
  ASSERT_TRUE(loop_.RunUntilCondition([&] {
    return session.participant_browser(0)->document()->ById("parked-marker") !=
           nullptr;
  }));
  EXPECT_LT(loop_.now() - before, Duration::Millis(250));
  EXPECT_GE(session.agent()->metrics().transport_long_poll_flushes, 1u);
}

TEST_F(TransportSessionTest, HeldStreamCapDeniesUpgradesGracefully) {
  SessionOptions options = BaseOptions();
  options.participant_count = 3;
  options.enable_transport = true;
  options.snippet_stream_mode = transport::kStreamFrames;
  options.max_held_streams = 1;
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  NavigateHost(&session);

  // Exactly one participant wins the held slot; the others are denied and
  // keep polling — no errors, no stuck clients.
  ASSERT_TRUE(loop_.RunUntilCondition([&] {
    return session.agent()->framed_stream_count() == 1;
  }));
  loop_.RunFor(Duration::Seconds(3.0));
  EXPECT_EQ(session.agent()->framed_stream_count(), 1u);
  EXPECT_GT(session.agent()->metrics().transport_capacity_denials, 0u);

  MutateHost(&session, "cap-marker");
  ASSERT_TRUE(session.WaitForSync().ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NE(session.participant_browser(i)->document()->ById("cap-marker"),
              nullptr)
        << "participant " << i;
  }
}

TEST_F(TransportSessionTest, AdaptivePollingBacksOffIdleAndSnapsBack) {
  SessionOptions options = BaseOptions();
  options.adaptive_poll = true;
  options.adaptive_max = Duration::Seconds(2.0);
  options.adaptive_growth = 2.0;
  options.adaptive_idle_threshold = 2;
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  NavigateHost(&session);

  // Idle: the interval walks 250 ms -> 500 -> 1000 -> 2000 and stays capped.
  loop_.RunFor(Duration::Seconds(15.0));
  EXPECT_EQ(session.snippet(0)->current_poll_interval(), Duration::Seconds(2.0));
  // Still classic polling underneath: the idle tax is counted.
  EXPECT_GT(session.snippet(0)->metrics().wasted_polls, 0u);

  // Activity snaps the cadence back to the base interval.
  MutateHost(&session, "adaptive-marker");
  ASSERT_TRUE(session.WaitForSync(Duration::Seconds(30.0)).ok());
  EXPECT_EQ(session.snippet(0)->current_poll_interval(), Duration::Millis(250));

  uint64_t idle_polls_10s;
  {
    uint64_t before = session.snippet(0)->metrics().polls_sent;
    loop_.RunFor(Duration::Seconds(10.0));
    idle_polls_10s = session.snippet(0)->metrics().polls_sent - before;
  }
  // Mostly at the 2 s cap: far fewer than the 40 polls of a fixed 250 ms
  // cadence over the same window.
  EXPECT_LT(idle_polls_10s, 15u);
}

TEST_F(TransportSessionTest, RepeatedStreamFailuresDowngradeToPolling) {
  SessionOptions options = BaseOptions();
  options.enable_transport = true;
  options.snippet_stream_mode = transport::kStreamFrames;
  options.transport_heartbeat = Duration::Millis(500);
  options.stream_downgrade_after = 2;
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());
  NavigateHost(&session);
  ASSERT_TRUE(loop_.RunUntilCondition([&] { return session.snippet(0)->frames_open(); }));

  // Two long blackouts in a row: each kills the stream via the heartbeat
  // watchdog before any data frame can reset the failure streak, so the
  // snippet writes the transport off and settles on classic polling.
  FaultInjector injector(&network_, /*seed=*/99);
  injector.InjectPartition("participant-pc-1", loop_.now() + Duration::Millis(100),
                           Duration::Seconds(4.0), Duration::Millis(200));
  injector.InjectPartition("participant-pc-1", loop_.now() + Duration::Seconds(5.0),
                           Duration::Seconds(4.0), Duration::Millis(200));
  loop_.RunFor(Duration::Seconds(15.0));

  EXPECT_TRUE(session.snippet(0)->transport_downgraded());
  EXPECT_GE(session.snippet(0)->metrics().transport_downgrades, 1u);
  EXPECT_FALSE(session.snippet(0)->frames_open());

  // Downgraded but healthy: updates still arrive, over plain polls.
  MutateHost(&session, "downgrade-marker");
  ASSERT_TRUE(session.WaitForSync(Duration::Seconds(30.0)).ok());
  EXPECT_NE(
      session.participant_browser(0)->document()->ById("downgrade-marker"),
      nullptr);
  EXPECT_FALSE(session.snippet(0)->frames_open());
  EXPECT_FALSE(session.snippet(0)->long_poll_active());
}

}  // namespace
}  // namespace rcb
