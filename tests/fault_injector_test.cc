// Unit tests for deterministic fault injection: each primitive is checked
// against exact EventLoop timings, and whole scenarios must replay
// bit-identically across runs.
#include <gtest/gtest.h>

#include "src/net/event_loop.h"
#include "src/net/fault_injector.h"
#include "src/net/network.h"
#include "src/net/profiles.h"

namespace rcb {
namespace {

// Hosts "a" and "b", 10 ms apart, unconstrained interfaces: handshake
// completes at 20 ms and each message takes exactly 10 ms of propagation.
class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() : network_(&loop_) {
    network_.AddHost("a", {});
    network_.AddHost("b", {});
    network_.SetLatency("a", "b", Duration::Millis(10));
  }

  // Listens on b:port and connects from a; records arrivals and close times.
  NetEndpoint* Open(uint16_t port) {
    EXPECT_TRUE(network_
                    .Listen("b", port,
                            [this](NetEndpoint* endpoint) {
                              server_ = endpoint;
                              endpoint->SetDataHandler([this](std::string_view) {
                                arrivals_.push_back(loop_.now());
                              });
                              endpoint->SetCloseHandler([this] {
                                server_closed_at_ = loop_.now();
                                ++server_closes_;
                              });
                            })
                    .ok());
    auto client = network_.Connect("a", "b", port);
    EXPECT_TRUE(client.ok());
    (*client)->SetCloseHandler([this] {
      client_closed_at_ = loop_.now();
      ++client_closes_;
    });
    return *client;
  }

  EventLoop loop_;
  Network network_;
  NetEndpoint* server_ = nullptr;
  std::vector<SimTime> arrivals_;
  SimTime server_closed_at_;
  SimTime client_closed_at_;
  int server_closes_ = 0;
  int client_closes_ = 0;
};

TEST_F(FaultInjectorTest, JitterDelaysWithinBoundAndReplaysIdentically) {
  auto run = [](uint64_t seed) {
    EventLoop loop;
    Network network(&loop);
    network.AddHost("a", {});
    network.AddHost("b", {});
    network.SetLatency("a", "b", Duration::Millis(10));
    FaultInjector injector(&network, seed);
    injector.InjectJitter("a", "b", SimTime::FromMicros(0),
                          Duration::Seconds(60.0), Duration::Millis(50));
    std::vector<int64_t> arrivals;
    EXPECT_TRUE(network
                    .Listen("b", 80,
                            [&](NetEndpoint* endpoint) {
                              endpoint->SetDataHandler([&](std::string_view) {
                                arrivals.push_back(loop.now().micros());
                              });
                            })
                    .ok());
    auto client = network.Connect("a", "b", 80);
    EXPECT_TRUE(client.ok());
    for (int i = 0; i < 8; ++i) {
      loop.Schedule(Duration::Millis(100 * (i + 1)),
                    [endpoint = *client] { endpoint->Send("x"); });
    }
    loop.Run();
    return arrivals;
  };

  std::vector<int64_t> first = run(7);
  ASSERT_EQ(first.size(), 8u);
  for (size_t i = 0; i < first.size(); ++i) {
    // Nominal arrival: sent at 100(i+1) ms, +10 ms propagation; jitter adds
    // at most 50 ms on top.
    int64_t nominal = (100 * (static_cast<int64_t>(i) + 1) + 10) * 1000;
    EXPECT_GE(first[i], nominal);
    EXPECT_LE(first[i], nominal + 50'000);
  }
  // Same seed -> bit-identical timeline; different seed -> different draws.
  EXPECT_EQ(run(7), first);
  EXPECT_NE(run(8), first);
}

TEST_F(FaultInjectorTest, LossDelaysEveryNthMessageByRetransmitDelay) {
  FaultInjector injector(&network_, 1);
  injector.InjectLoss("a", "b", SimTime::FromMicros(0), Duration::Seconds(60.0),
                      /*loss_period=*/2, Duration::Millis(200));
  NetEndpoint* client = Open(80);
  for (int i = 0; i < 4; ++i) {
    loop_.Schedule(Duration::Millis(100 * (i + 1)),
                   [client] { client->Send("x"); });
  }
  loop_.Run();
  ASSERT_EQ(arrivals_.size(), 4u);
  // Arrivals record delivery order: the delayed 2nd message (sent 200 ms,
  // +200 ms RTO) lands after the clean 3rd one.
  EXPECT_EQ(arrivals_[0].millis(), 110);        // msg 1, clean
  EXPECT_EQ(arrivals_[1].millis(), 310);        // msg 3, clean
  EXPECT_EQ(arrivals_[2].millis(), 210 + 200);  // msg 2, "lost", one RTO late
  EXPECT_EQ(arrivals_[3].millis(), 410 + 200);  // msg 4, "lost"
  EXPECT_EQ(injector.metrics().messages_lost, 2u);
}

TEST_F(FaultInjectorTest, ResetClosesBothEndsAtExactEventTime) {
  FaultInjector injector(&network_, 1);
  NetEndpoint* client = Open(80);
  injector.InjectReset("a", "b", SimTime::FromMicros(100'000));
  loop_.Run();
  EXPECT_TRUE(client->closed());
  ASSERT_NE(server_, nullptr);
  EXPECT_TRUE(server_->closed());
  EXPECT_EQ(client_closes_, 1);
  EXPECT_EQ(server_closes_, 1);
  EXPECT_EQ(client_closed_at_.millis(), 100);
  EXPECT_EQ(server_closed_at_.millis(), 100);
  EXPECT_EQ(injector.metrics().connections_reset, 1u);
}

TEST_F(FaultInjectorTest, PartitionRefusesConnectsOnlyDuringWindow) {
  FaultInjector injector(&network_, 1);
  injector.InjectPartition("b", SimTime::FromMicros(1'000'000),
                           Duration::Seconds(2.0), Duration::Millis(200));
  ASSERT_TRUE(network_.Listen("b", 80, [](NetEndpoint*) {}).ok());
  EXPECT_TRUE(network_.Connect("a", "b", 80).ok());  // before the window
  bool refused_inside = false;
  loop_.Schedule(Duration::Seconds(2.0), [&] {
    auto attempt = network_.Connect("a", "b", 80);
    refused_inside = !attempt.ok() &&
                     attempt.status().code() == StatusCode::kUnavailable;
  });
  bool ok_after = false;
  loop_.Schedule(Duration::Seconds(4.0),
                 [&] { ok_after = network_.Connect("a", "b", 80).ok(); });
  loop_.Run();
  EXPECT_TRUE(refused_inside);
  EXPECT_TRUE(ok_after);
  EXPECT_EQ(injector.metrics().connects_refused, 1u);
}

TEST_F(FaultInjectorTest, PartitionHoldsInFlightMessagesUntilHealPlusRto) {
  FaultInjector injector(&network_, 1);
  // Blackout from 1 s to 5 s; surviving connections hold their traffic.
  injector.InjectPartition("b", SimTime::FromMicros(1'000'000),
                           Duration::Seconds(4.0), Duration::Millis(200));
  NetEndpoint* client = Open(80);
  loop_.Schedule(Duration::Seconds(2.0), [client] { client->Send("x"); });
  loop_.Run();
  ASSERT_EQ(arrivals_.size(), 1u);
  // Sent at 2 s: nominal delivery 2 s + 10 ms, held for the remaining 3 s of
  // the blackout, then one RTO of retransmission delay.
  EXPECT_EQ(arrivals_[0].millis(), 2000 + 10 + 3000 + 200);
  EXPECT_EQ(injector.metrics().messages_held, 1u);
  EXPECT_FALSE(client->closed());  // partitions hold, they do not reset
}

TEST_F(FaultInjectorTest, BandwidthFlapDegradesThenRestores) {
  network_.SetHostInterface("a", {.uplink_bps = 1'000'000, .downlink_bps = 0});
  FaultInjector injector(&network_, 1);
  // 1 Mbps -> 100 Kbps between 1 s and 10 s.
  FaultEvent flap;
  flap.kind = FaultEvent::Kind::kBandwidthFlap;
  flap.start = SimTime::FromMicros(1'000'000);
  flap.duration = Duration::Seconds(9.0);
  flap.degraded = {.uplink_bps = 100'000, .downlink_bps = 0};
  injector.Install(FaultPlan{"a", "", {flap}});

  NetEndpoint* client = Open(80);
  // 12500 bytes = 0.1 s at 1 Mbps, 1 s at 100 Kbps.
  loop_.Schedule(Duration::Seconds(2.0),
                 [client] { client->Send(std::string(12'500, 'x')); });
  loop_.Schedule(Duration::Seconds(11.0),
                 [client] { client->Send(std::string(12'500, 'y')); });
  loop_.Run();
  ASSERT_EQ(arrivals_.size(), 2u);
  EXPECT_EQ(arrivals_[0].millis(), 2000 + 1000 + 10);  // degraded: 1 s of tx
  EXPECT_EQ(arrivals_[1].millis(), 11000 + 100 + 10);  // restored: 0.1 s
}

TEST_F(FaultInjectorTest, HostScopedPlanMatchesEveryLinkOfTheHost) {
  network_.AddHost("c", {});
  network_.SetLatency("c", "b", Duration::Millis(10));
  FaultInjector injector(&network_, 1);
  injector.InjectPartition("b", SimTime::FromMicros(0), Duration::Seconds(1.0),
                           Duration::Millis(200));
  ASSERT_TRUE(network_.Listen("b", 80, [](NetEndpoint*) {}).ok());
  EXPECT_FALSE(network_.Connect("a", "b", 80).ok());
  EXPECT_FALSE(network_.Connect("c", "b", 80).ok());
  // A link not touching "b" is unaffected.
  ASSERT_TRUE(network_.Listen("c", 81, [](NetEndpoint*) {}).ok());
  EXPECT_TRUE(network_.Connect("a", "c", 81).ok());
}

TEST_F(FaultInjectorTest, ChaosEventScalesWithProfile) {
  FaultEvent lan = ChaosEvent(LanProfile(), FaultEvent::Kind::kLoss,
                              SimTime::FromMicros(0), Duration::Seconds(1.0));
  FaultEvent wan = ChaosEvent(WanProfile(), FaultEvent::Kind::kLoss,
                              SimTime::FromMicros(0), Duration::Seconds(1.0));
  EXPECT_EQ(lan.retransmit_delay, Duration::Millis(200));  // RTO floor
  EXPECT_EQ(wan.retransmit_delay, Duration::Millis(200));  // 4*40 ms under floor
  FaultEvent lan_jitter = ChaosEvent(LanProfile(), FaultEvent::Kind::kJitter,
                                     SimTime::FromMicros(0), Duration::Seconds(1.0));
  FaultEvent wan_jitter = ChaosEvent(WanProfile(), FaultEvent::Kind::kJitter,
                                     SimTime::FromMicros(0), Duration::Seconds(1.0));
  EXPECT_EQ(lan_jitter.max_jitter, Duration::Micros(2000));   // 8 * 250 us
  EXPECT_EQ(wan_jitter.max_jitter, Duration::Millis(320));    // 8 * 40 ms
}

TEST_F(FaultInjectorTest, WholeScenarioIsDeterministicAcrossRuns) {
  auto run = [] {
    EventLoop loop;
    Network network(&loop);
    network.AddHost("a", {});
    network.AddHost("b", {});
    network.SetLatency("a", "b", Duration::Millis(10));
    FaultInjector injector(&network, 99);
    injector.InjectJitter("a", "b", SimTime::FromMicros(0),
                          Duration::Seconds(30.0), Duration::Millis(30));
    injector.InjectLoss("a", "b", SimTime::FromMicros(0),
                        Duration::Seconds(30.0), 3, Duration::Millis(150));
    injector.InjectPartition("b", SimTime::FromMicros(5'000'000),
                             Duration::Seconds(2.0), Duration::Millis(150));
    std::vector<int64_t> arrivals;
    EXPECT_TRUE(network
                    .Listen("b", 80,
                            [&](NetEndpoint* endpoint) {
                              endpoint->SetDataHandler([&](std::string_view) {
                                arrivals.push_back(loop.now().micros());
                              });
                            })
                    .ok());
    auto client = network.Connect("a", "b", 80);
    EXPECT_TRUE(client.ok());
    for (int i = 0; i < 20; ++i) {
      loop.Schedule(Duration::Millis(400 * (i + 1)),
                    [endpoint = *client] { endpoint->Send("tick"); });
    }
    loop.Run();
    return std::make_pair(arrivals, injector.metrics());
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_TRUE(first.second == second.second);
  EXPECT_GT(first.second.messages_jittered, 0u);
  EXPECT_GT(first.second.messages_lost, 0u);
  EXPECT_GT(first.second.messages_held, 0u);
}

}  // namespace
}  // namespace rcb
