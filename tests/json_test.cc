// Tests for the minimal JSON layer (src/util/json.h) and the BENCH_*.json
// schema checker (src/obs/bench_report.h): parse round-trips, strictness on
// malformed documents, report generation, and validator acceptance/rejection.
#include <gtest/gtest.h>

#include "src/obs/bench_report.h"
#include "src/util/json.h"

namespace rcb {
namespace {

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value);
  EXPECT_FALSE(ParseJson("false")->bool_value);
  EXPECT_EQ(ParseJson("42")->number_value, 42.0);
  EXPECT_EQ(ParseJson("-3.5e2")->number_value, -350.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value, "hi");
}

TEST(JsonParseTest, StringEscapes) {
  auto value = ParseJson("\"a\\\"b\\\\c\\n\\t\\u0041\"");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->string_value, "a\"b\\c\n\tA");
}

TEST(JsonParseTest, NestedStructure) {
  auto value = ParseJson(
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}, "e": -0.5})");
  ASSERT_TRUE(value.ok());
  ASSERT_TRUE(value->is_object());
  const JsonValue* a = value->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_EQ(a->items[1].number_value, 2.0);
  EXPECT_EQ(a->items[2].Find("b")->string_value, "x");
  EXPECT_TRUE(value->Find("c")->Find("d")->is_null());
  EXPECT_EQ(value->Find("e")->number_value, -0.5);
  EXPECT_EQ(value->Find("missing"), nullptr);
}

TEST(JsonParseTest, MemberOrderPreserved) {
  auto value = ParseJson(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(value.ok());
  ASSERT_EQ(value->members.size(), 3u);
  EXPECT_EQ(value->members[0].first, "z");
  EXPECT_EQ(value->members[1].first, "a");
  EXPECT_EQ(value->members[2].first, "m");
}

TEST(JsonParseTest, MalformedDocumentsRejected) {
  const char* bad[] = {
      "",              // empty
      "{",             // unterminated object
      "[1, 2",         // unterminated array
      "{\"a\" 1}",     // missing colon
      "{\"a\": 1,}",   // trailing comma
      "[1,, 2]",       // double comma
      "\"unterminated",
      "01",            // leading zero
      "1.",            // bare decimal point
      "nul",           // truncated keyword
      "{'a': 1}",      // single quotes
      "1 2",           // trailing garbage
      "\"bad\\q\"",    // unknown escape
      "\"\\u12g4\"",   // bad unicode escape
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonEscapeTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01", 2)), "a\\u0001");
}

TEST(JsonRoundTripTest, EscapedStringSurvives) {
  std::string original = "quote\" slash\\ newline\n tab\t unicode\x02";
  std::string doc = "\"" + JsonEscape(original) + "\"";
  auto value = ParseJson(doc);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->string_value, original);
}

// ---------------------------------------------------------------------------
// BenchReport + validator
// ---------------------------------------------------------------------------

obs::BenchReport SampleReport() {
  obs::BenchReport report("unit");
  report.SetConfig("profile", "lan");
  report.SetConfig("repetitions", "3");
  report.AddValue("answered", "polls", obs::Provenance::kSim, 12);
  report.AddDistribution("latency_us", "us", obs::Provenance::kWall,
                         {30.0, 10.0, 20.0, 40.0, 50.0});
  return report;
}

TEST(BenchReportTest, GeneratedJsonValidates) {
  std::string json = SampleReport().ToJson();
  auto document = ParseJson(json);
  ASSERT_TRUE(document.ok()) << json;
  EXPECT_TRUE(obs::ValidateBenchReportJson(*document).ok());
  EXPECT_EQ(document->Find("schema_version")->number_value,
            obs::kBenchReportSchemaVersion);
  EXPECT_EQ(document->Find("bench")->string_value, "unit");
}

TEST(BenchReportTest, DistributionStatsAreExactNearestRank) {
  std::string json = SampleReport().ToJson();
  auto document = ParseJson(json);
  ASSERT_TRUE(document.ok());
  const JsonValue* metrics = document->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* latency = nullptr;
  for (const JsonValue& metric : metrics->items) {
    if (metric.Find("name")->string_value == "latency_us") {
      latency = &metric;
    }
  }
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Find("kind")->string_value, "distribution");
  EXPECT_EQ(latency->Find("provenance")->string_value, "wall");
  EXPECT_EQ(latency->Find("count")->number_value, 5.0);
  EXPECT_EQ(latency->Find("min")->number_value, 10.0);
  EXPECT_EQ(latency->Find("max")->number_value, 50.0);
  EXPECT_EQ(latency->Find("p50")->number_value, 30.0);
  EXPECT_EQ(latency->Find("p95")->number_value, 50.0);
  EXPECT_EQ(latency->Find("mean")->number_value, 30.0);
  EXPECT_EQ(latency->Find("sum")->number_value, 150.0);
}

TEST(BenchReportTest, FingerprintTracksConfig) {
  obs::BenchReport a("unit");
  a.SetConfig("profile", "lan");
  obs::BenchReport b("unit");
  b.SetConfig("profile", "lan");
  obs::BenchReport c("unit");
  c.SetConfig("profile", "wan");
  auto fingerprint = [](const obs::BenchReport& report) {
    return ParseJson(report.ToJson())->Find("config_fingerprint")->string_value;
  };
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), fingerprint(c));
  EXPECT_EQ(fingerprint(a).size(), 64u);
}

TEST(BenchReportValidatorTest, RejectsSchemaViolations) {
  // Start from a valid document and break one field at a time.
  const std::string valid = SampleReport().ToJson();
  struct Case {
    const char* what;
    std::string from;
    std::string to;
  };
  const Case cases[] = {
      {"wrong version", "\"schema_version\": 1", "\"schema_version\": 2"},
      {"empty bench", "\"bench\": \"unit\"", "\"bench\": \"\""},
      {"bad provenance", "\"provenance\": \"sim\"",
       "\"provenance\": \"simulated\""},
      {"bad kind", "\"kind\": \"value\"", "\"kind\": \"scalar\""},
      {"non-numeric value", "\"value\": 12", "\"value\": \"12\""},
  };
  for (const Case& test_case : cases) {
    std::string broken = valid;
    size_t at = broken.find(test_case.from);
    ASSERT_NE(at, std::string::npos) << test_case.what;
    broken.replace(at, test_case.from.size(), test_case.to);
    auto document = ParseJson(broken);
    ASSERT_TRUE(document.ok()) << test_case.what;
    EXPECT_FALSE(obs::ValidateBenchReportJson(*document).ok())
        << test_case.what;
  }
  // Fingerprint must be 64 lowercase hex.
  std::string bad_fingerprint = valid;
  size_t at = bad_fingerprint.find("\"config_fingerprint\": \"");
  ASSERT_NE(at, std::string::npos);
  bad_fingerprint[at + 24] = 'X';
  auto document = ParseJson(bad_fingerprint);
  ASSERT_TRUE(document.ok());
  EXPECT_FALSE(obs::ValidateBenchReportJson(*document).ok());

  EXPECT_FALSE(obs::ValidateBenchReportJson(*ParseJson("{}")).ok());
  EXPECT_FALSE(obs::ValidateBenchReportJson(*ParseJson("[]")).ok());
}

}  // namespace
}  // namespace rcb
