// Tests for the live health plane (DESIGN.md §16): the sliding sim-time
// window engine (src/obs/window) against a naive per-event reference, the
// SLO burn-rate evaluator and its multi-window alert edges (src/obs/slo),
// trace exemplars, and the HTTP surfaces — the agent's /health endpoint and
// the host's aggregated /host/health with worst-first ordering and HMAC
// auth. The windowing determinism contract (bit-identical state across two
// identical simulated runs) is pinned here; scripts/ci.sh check_health pins
// the same property end-to-end over the chaos harness.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/core/ajax_snippet.h"
#include "src/crypto/hmac.h"
#include "src/host/rcb_host.h"
#include "src/html/parser.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/slo.h"
#include "src/obs/window.h"
#include "src/util/json.h"

namespace rcb {
namespace {

using obs::CompactWindowConfig;
using obs::FlightRecorder;
using obs::HealthSample;
using obs::HealthScore;
using obs::SessionHealth;
using obs::SlidingWindow;
using obs::SloConfig;
using obs::WindowConfig;
using obs::WindowedCounter;
using obs::WindowedHistogram;

// ---------------------------------------------------------------------------
// SlidingWindow vs a naive reference
// ---------------------------------------------------------------------------

// Keeps every event and answers window queries from first principles using
// the documented granularity contract: the fast window is the in-progress
// fine bucket plus the previous fine_buckets-1; an evicted event stays in
// the slow window while its coarse period is at most coarse_buckets behind
// the current one.
class NaiveWindow {
 public:
  explicit NaiveWindow(const WindowConfig& config) : config_(config) {}

  void Add(size_t lane, uint64_t delta, int64_t sim_now_us) {
    events_.push_back({lane, sim_now_us / config_.fine_bucket_us, delta});
  }

  uint64_t FastSum(size_t lane, int64_t sim_now_us) const {
    int64_t current = sim_now_us / config_.fine_bucket_us;
    int64_t fine_buckets = static_cast<int64_t>(config_.fine_buckets);
    uint64_t sum = 0;
    for (const Event& event : events_) {
      if (event.lane == lane && event.fine_index > current - fine_buckets) {
        sum += event.delta;
      }
    }
    return sum;
  }

  uint64_t SlowSum(size_t lane, int64_t sim_now_us) const {
    int64_t current = sim_now_us / config_.fine_bucket_us;
    int64_t fine_buckets = static_cast<int64_t>(config_.fine_buckets);
    int64_t current_coarse = current / fine_buckets;
    uint64_t sum = 0;
    for (const Event& event : events_) {
      if (event.lane != lane) {
        continue;
      }
      bool in_fast = event.fine_index > current - fine_buckets;
      bool coarse_live =
          current_coarse - event.fine_index / fine_buckets <=
          static_cast<int64_t>(config_.coarse_buckets);
      if (in_fast || coarse_live) {
        sum += event.delta;
      }
    }
    return sum;
  }

 private:
  struct Event {
    size_t lane;
    int64_t fine_index;
    uint64_t delta;
  };
  WindowConfig config_;
  std::vector<Event> events_;
};

// Deterministic 64-bit LCG; no wall randomness anywhere near the windows.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint32_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>(state_ >> 33);
  }

 private:
  uint64_t state_;
};

// Runs a pseudo-random add/query schedule and returns every query result.
std::vector<uint64_t> RunWindowSchedule(const WindowConfig& config,
                                        uint64_t seed, int steps,
                                        NaiveWindow* reference) {
  constexpr size_t kLanes = 3;
  SlidingWindow window(kLanes, config);
  Lcg lcg(seed);
  std::vector<uint64_t> outputs;
  int64_t now_us = 0;
  for (int step = 0; step < steps; ++step) {
    // Irregular gaps: usually 0–7 s (same bucket, next bucket, or a short
    // skip), occasionally a jump past the whole slow window (the clear-all
    // path).
    now_us += lcg.Next() % 7'000'000;
    if (step % 97 == 53) {
      now_us += 400'000'000;  // > slow span: everything held must age out
    }
    size_t lane = lcg.Next() % kLanes;
    uint64_t delta = lcg.Next() % 5;
    window.Add(lane, delta, now_us);
    if (reference != nullptr) {
      reference->Add(lane, delta, now_us);
    }
    if (step % 3 == 0) {
      for (size_t query_lane = 0; query_lane < kLanes; ++query_lane) {
        outputs.push_back(window.FastSum(query_lane, now_us));
        outputs.push_back(window.SlowSum(query_lane, now_us));
        if (reference != nullptr) {
          EXPECT_EQ(outputs[outputs.size() - 2],
                    reference->FastSum(query_lane, now_us))
              << "fast lane " << query_lane << " at t=" << now_us;
          EXPECT_EQ(outputs.back(), reference->SlowSum(query_lane, now_us))
              << "slow lane " << query_lane << " at t=" << now_us;
        }
      }
    }
  }
  return outputs;
}

TEST(SlidingWindowTest, MatchesNaiveReferenceOnPseudoRandomSchedule) {
  NaiveWindow reference(CompactWindowConfig());
  std::vector<uint64_t> outputs =
      RunWindowSchedule(CompactWindowConfig(), 0x5eed, 600, &reference);
  EXPECT_FALSE(outputs.empty());
}

TEST(SlidingWindowTest, DefaultGeometryMatchesNaiveReference) {
  WindowConfig config;  // 60 × 1 s fine, 4 coarse
  NaiveWindow reference(config);
  RunWindowSchedule(config, 0xfeedbeef, 600, &reference);
}

TEST(SlidingWindowTest, IdenticalSchedulesProduceBitIdenticalResults) {
  std::vector<uint64_t> first =
      RunWindowSchedule(CompactWindowConfig(), 0xabcdef, 400, nullptr);
  std::vector<uint64_t> second =
      RunWindowSchedule(CompactWindowConfig(), 0xabcdef, 400, nullptr);
  EXPECT_EQ(first, second);
}

TEST(SlidingWindowTest, JumpBeyondSlowWindowDropsEverything) {
  SlidingWindow window(1, CompactWindowConfig());
  window.Add(0, 7, 0);
  EXPECT_EQ(window.FastSum(0, 0), 7u);
  int64_t far = CompactWindowConfig().slow_window_us() + 10'000'000;
  EXPECT_EQ(window.FastSum(0, far), 0u);
  EXPECT_EQ(window.SlowSum(0, far), 0u);
}

// ---------------------------------------------------------------------------
// WindowedCounter
// ---------------------------------------------------------------------------

TEST(WindowedCounterTest, SampleCumulativeRecordsDeltasAndRebasesOnReset) {
  WindowedCounter counter(CompactWindowConfig());
  counter.SampleCumulative(10, 1'000'000);  // first sample: delta from 0
  EXPECT_EQ(counter.FastSum(1'000'000), 10u);
  counter.SampleCumulative(25, 2'000'000);
  EXPECT_EQ(counter.FastSum(2'000'000), 25u);
  // A cumulative drop (the source counter reset) contributes no delta and
  // re-bases, so the next increase counts from the new baseline.
  counter.SampleCumulative(5, 3'000'000);
  EXPECT_EQ(counter.FastSum(3'000'000), 25u);
  counter.SampleCumulative(8, 4'000'000);
  EXPECT_EQ(counter.FastSum(4'000'000), 28u);
}

TEST(WindowedCounterTest, CountsAgeFromFastIntoSlowWindowThenOut) {
  WindowedCounter counter(CompactWindowConfig());  // 60 s fast / 5 min slow
  counter.Add(3, 0);
  EXPECT_EQ(counter.FastSum(0), 3u);
  EXPECT_EQ(counter.SlowSum(0), 3u);
  EXPECT_EQ(counter.FastSum(65'000'000), 0u);  // aged out of the fast ring
  EXPECT_EQ(counter.SlowSum(65'000'000), 3u);  // folded into its coarse slot
  EXPECT_EQ(counter.SlowSum(290'000'000), 3u);
  EXPECT_EQ(counter.SlowSum(400'000'000), 0u);
}

// ---------------------------------------------------------------------------
// WindowedHistogram
// ---------------------------------------------------------------------------

TEST(WindowedHistogramTest, FastCountOverIsExactAtTheSloBound) {
  // 20 ms is deliberately an exact bound of the compact bound set so the
  // sync_p99 SLO's bad-event count is not bucket-rounded.
  WindowedHistogram histogram(WindowedHistogram::CompactLatencyBoundsUs(),
                              CompactWindowConfig());
  histogram.Record(19'999, 1'000);
  histogram.Record(20'000, 1'000);  // at the target: not a bad event
  histogram.Record(20'001, 1'000);
  histogram.Record(31'623, 1'000);
  histogram.Record(5'000'000, 1'000);
  EXPECT_EQ(histogram.FastCount(1'000), 5u);
  EXPECT_EQ(histogram.FastCountOver(20'000, 1'000), 3u);
  EXPECT_EQ(histogram.SlowCountOver(20'000, 1'000), 3u);
}

TEST(WindowedHistogramTest, PercentilesInterpolateWithinTheRankBucket) {
  WindowedHistogram histogram({10, 100}, CompactWindowConfig());
  EXPECT_EQ(histogram.FastPercentile(99.0, 0), 0.0);  // empty window
  for (int64_t value : {20, 30, 40, 50}) {
    histogram.Record(value, 1'000);
  }
  // All four observations sit in the (10, 100] bucket; ranks interpolate
  // linearly across it: rank k of 4 reports 10 + 90 * k/4.
  EXPECT_DOUBLE_EQ(histogram.FastPercentile(25.0, 1'000), 32.5);
  EXPECT_DOUBLE_EQ(histogram.FastPercentile(50.0, 1'000), 55.0);
  EXPECT_DOUBLE_EQ(histogram.FastPercentile(100.0, 1'000), 100.0);
  // Overflow-bucket ranks clamp to the last bound rather than inventing a
  // value beyond the instrument's range.
  histogram.Record(100'000, 1'000);
  EXPECT_DOUBLE_EQ(histogram.FastPercentile(100.0, 1'000), 100.0);
}

TEST(WindowedHistogramTest, ExemplarsKeepTheRecentWorstPerBucket) {
  WindowedHistogram histogram({10, 100}, CompactWindowConfig());
  histogram.Record(50, 0, "t-first");
  histogram.Record(40, 1'000'000, "t-smaller");  // not worse: incumbent stays
  ASSERT_EQ(histogram.Exemplars().size(), 1u);
  EXPECT_EQ(histogram.Exemplars()[0].exemplar.trace_id, "t-first");
  EXPECT_EQ(histogram.Exemplars()[0].exemplar.value, 50);
  EXPECT_EQ(histogram.Exemplars()[0].bound, 100);

  histogram.Record(60, 2'000'000, "t-worse");  // worse: replaces
  EXPECT_EQ(histogram.Exemplars()[0].exemplar.trace_id, "t-worse");

  // After the TTL the incumbent is stale; a smaller fresh observation takes
  // over so exemplars keep pointing at traces the bounded ring still holds.
  histogram.Record(20, 2'000'000 + 30'000'000, "t-fresh");
  EXPECT_EQ(histogram.Exemplars()[0].exemplar.trace_id, "t-fresh");
  EXPECT_EQ(histogram.Exemplars()[0].exemplar.value, 20);
}

TEST(WindowedHistogramTest, ExemplarsPerBucketIncludingOverflow) {
  WindowedHistogram histogram({10, 100}, CompactWindowConfig());
  histogram.Record(5, 1'000, "t-low");
  histogram.Record(50, 1'000);  // no trace id: records but offers no exemplar
  histogram.Record(5'000, 1'000, "t-overflow");
  auto exemplars = histogram.Exemplars();
  ASSERT_EQ(exemplars.size(), 2u);
  EXPECT_EQ(exemplars[0].bound, 10);
  EXPECT_EQ(exemplars[0].exemplar.trace_id, "t-low");
  EXPECT_EQ(exemplars[1].bound, std::numeric_limits<int64_t>::max());
  EXPECT_EQ(exemplars[1].exemplar.trace_id, "t-overflow");
}

// ---------------------------------------------------------------------------
// SessionHealth: burn rates, scores, alert edges
// ---------------------------------------------------------------------------

TEST(SessionHealthTest, BurnBelowMinEventsIsZero) {
  SessionHealth health;
  health.Sample({.requests = 4, .auth_failures = 4}, 1'000'000);
  auto status = health.Evaluate(1'000'000);
  EXPECT_EQ(status.score, HealthScore::kGreen);
  EXPECT_EQ(status.objectives[2].name, "auth_failure_rate");
  EXPECT_EQ(status.objectives[2].fast_burn, 0.0);
}

TEST(SessionHealthTest, SustainedBadRatioTripsTheMultiWindowAlert) {
  SessionHealth health;
  health.Sample({.requests = 10, .auth_failures = 10}, 1'000'000);
  auto status = health.Evaluate(1'000'000);
  // 100% failures against a 1% budget: burn 100 in both windows.
  EXPECT_DOUBLE_EQ(status.objectives[2].fast_burn, 100.0);
  EXPECT_DOUBLE_EQ(status.objectives[2].slow_burn, 100.0);
  EXPECT_TRUE(status.objectives[2].alerting);
  EXPECT_EQ(status.score, HealthScore::kUnhealthy);
  ASSERT_EQ(status.ActiveAlerts().size(), 1u);
  EXPECT_EQ(status.ActiveAlerts()[0], "auth_failure_rate");
  EXPECT_DOUBLE_EQ(status.MaxSlowBurn(), 100.0);
}

TEST(SessionHealthTest, BurningButNotAlertingScoresDegraded) {
  SessionHealth health;
  // Every poll wasted against a 0.90 budget burns ~1.11 — over budget but
  // far below the fast alert threshold (6.0): degraded, not unhealthy.
  health.Sample(
      {.requests = 20, .polls_received = 20, .wasted_polls = 20},
      1'000'000);
  auto status = health.Evaluate(1'000'000);
  EXPECT_EQ(status.score, HealthScore::kDegraded);
  EXPECT_NEAR(status.objectives[3].fast_burn, 1.111, 0.001);
  EXPECT_FALSE(status.objectives[3].alerting);
  EXPECT_TRUE(status.ActiveAlerts().empty());
}

TEST(SessionHealthTest, AlertEdgesFireTheFlightRecorderOncePerEpisode) {
  FlightRecorder flight(nullptr, nullptr, {});
  SessionHealth health(SloConfig(), &flight);

  // Rising edge fires one flight trigger; the sustained condition does not.
  health.Sample({.requests = 10, .auth_failures = 10}, 1'000'000);
  EXPECT_EQ(flight.triggers("slo_burn_auth_failure_rate"), 1u);
  health.Sample({.requests = 20, .auth_failures = 20}, 2'000'000);
  EXPECT_EQ(flight.triggers("slo_burn_auth_failure_rate"), 1u);

  // 350 s later the bad minute is outside even the slow window; a healthy
  // sample clears the alert without firing anything.
  health.Sample({.requests = 100, .auth_failures = 20}, 350'000'000);
  EXPECT_FALSE(health.Evaluate(350'000'000).objectives[2].alerting);
  EXPECT_EQ(flight.triggers("slo_burn_auth_failure_rate"), 1u);

  // A second episode is a fresh rising edge: exactly one more dump trigger.
  health.Sample({.requests = 200, .auth_failures = 120}, 420'000'000);
  EXPECT_TRUE(health.Evaluate(420'000'000).objectives[2].alerting);
  EXPECT_EQ(flight.triggers("slo_burn_auth_failure_rate"), 2u);
}

TEST(SessionHealthTest, SyncLatencyObjectiveFeedsFromTheHistogram) {
  SessionHealth health;
  for (int i = 0; i < 20; ++i) {
    health.RecordSyncLatency(250'000, 1'000'000, "p1-" + std::to_string(i));
  }
  health.Sample({}, 1'000'000);  // evaluation happens at sample sites
  auto status = health.Evaluate(1'000'000);
  EXPECT_EQ(status.objectives[0].name, "sync_p99");
  EXPECT_TRUE(status.objectives[0].alerting);
  EXPECT_EQ(status.score, HealthScore::kUnhealthy);
  EXPECT_EQ(status.sync_count, 20u);
  EXPECT_GT(status.sync_p99_us, 20'000.0);
  ASSERT_FALSE(status.exemplars.empty());
  // Equal-worst observations refresh the exemplar, so the latest one holds.
  EXPECT_EQ(status.exemplars[0].exemplar.trace_id, "p1-19");
}

TEST(SessionHealthTest, ToJsonIsWellFormedAndBitIdenticalAcrossRuns) {
  auto run = [] {
    SessionHealth health;
    for (int i = 0; i < 12; ++i) {
      health.RecordSyncLatency(1'000 + i * 7'000, 500'000 * (i + 1),
                               "p2-" + std::to_string(i));
    }
    health.Sample({.requests = 30,
                   .polls_received = 24,
                   .wasted_polls = 6,
                   .resyncs = 1},
                  7'000'000);
    return health.ToJson(8'000'000);
  };
  std::string first = run();
  EXPECT_EQ(first, run());

  auto parsed = ParseJson(first);
  ASSERT_TRUE(parsed.ok()) << first;
  EXPECT_TRUE(parsed->Find("score")->is_string());
  EXPECT_EQ(parsed->Find("window")->Find("fast_us")->number_value, 60'000'000);
  EXPECT_EQ(parsed->Find("window")->Find("slow_us")->number_value,
            300'000'000);
  EXPECT_EQ(parsed->Find("sync")->Find("count")->number_value, 12);
  EXPECT_EQ(parsed->Find("fast_polls")->number_value, 24);
  const JsonValue* objectives = parsed->Find("objectives");
  ASSERT_TRUE(objectives != nullptr && objectives->is_array());
  ASSERT_EQ(objectives->items.size(), 4u);
  EXPECT_EQ(objectives->items[0].Find("name")->string_value, "sync_p99");
  const JsonValue* exemplars = parsed->Find("exemplars");
  ASSERT_TRUE(exemplars != nullptr && exemplars->is_array());
  ASSERT_FALSE(exemplars->items.empty());
  EXPECT_FALSE(exemplars->items[0].Find("trace_id")->string_value.empty());
}

// ---------------------------------------------------------------------------
// HTTP surfaces: agent /health and host /host/health
// ---------------------------------------------------------------------------

constexpr uint16_t kBasePort = 3400;

class HealthEndpointTest : public ::testing::Test {
 protected:
  HealthEndpointTest() : network_(&loop_) {
    network_.AddHost("host-pc", {});
    network_.AddHost("p-pc-1", {});
    network_.SetLatency("host-pc", "p-pc-1", Duration::Millis(1));
  }

  std::unique_ptr<RcbHost> MakeHost(HostConfig config = {}) {
    config.base_port = kBasePort;
    config.agent_defaults.poll_interval = Duration::Millis(100);
    auto host = std::make_unique<RcbHost>(&loop_, &network_, std::move(config));
    EXPECT_TRUE(host->Start().ok());
    return host;
  }

  HttpResponse Get(RcbHost* host, const std::string& target) {
    HttpRequest request;
    request.method = HttpMethod::kGet;
    request.target = target;
    return host->Route(request);
  }

  EventLoop loop_;
  Network network_;
};

TEST_F(HealthEndpointTest, AgentHealthEndpointServesSessionHealthJson) {
  auto host = MakeHost();
  ASSERT_TRUE(host->CreateSession("s1").ok());
  HttpResponse response = Get(host.get(), "/s/s1/health");
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.headers.Get("Content-Type").value_or(""),
            "application/json");
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok()) << response.body;
  EXPECT_EQ(parsed->Find("score")->string_value, "green");
  ASSERT_TRUE(parsed->Find("objectives")->is_array());
  EXPECT_EQ(parsed->Find("objectives")->items.size(), 4u);
}

TEST_F(HealthEndpointTest, HostHealthAggregatesSessionsWorstFirst) {
  HostConfig config;
  config.agent_defaults.session_key = "health-key";
  auto host = MakeHost(std::move(config));
  ASSERT_TRUE(host->CreateSession("s1").ok());
  ASSERT_TRUE(host->CreateSession("s2").ok());

  // Hammer s2 with badly signed polls: counted requests, counted auth
  // failures, enough of both to trip the auth_failure_rate alert.
  for (int i = 0; i < 10; ++i) {
    HttpRequest bad;
    bad.method = HttpMethod::kPost;
    bad.target = "/s/s2/poll?hmac=" + std::string(64, '0');
    bad.body = "pid=intruder&docTime=0";
    EXPECT_EQ(host->Route(bad).status_code, 403);
  }

  // The aggregate endpoint sits behind the same session key.
  EXPECT_EQ(Get(host.get(), "/host/health").status_code, 403);
  std::string mac = HmacSha256Hex("health-key", "GET /host/health\n");
  HttpResponse response = Get(host.get(), "/host/health?hmac=" + mac);
  ASSERT_EQ(response.status_code, 200);

  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok()) << response.body;
  EXPECT_EQ(parsed->Find("sessions_total")->number_value, 2);
  const JsonValue* summary = parsed->Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Find("green")->number_value, 1);
  EXPECT_EQ(summary->Find("unhealthy")->number_value, 1);
  const JsonValue* alerts = parsed->Find("alerts");
  ASSERT_TRUE(alerts != nullptr && alerts->is_array());
  ASSERT_EQ(alerts->items.size(), 1u);
  EXPECT_EQ(alerts->items[0].string_value, "s2:auth_failure_rate");
  const JsonValue* sessions = parsed->Find("sessions");
  ASSERT_TRUE(sessions != nullptr && sessions->is_array());
  ASSERT_EQ(sessions->items.size(), 2u);
  // Worst first: the alerting session leads regardless of id order.
  EXPECT_EQ(sessions->items[0].Find("id")->string_value, "s2");
  EXPECT_EQ(sessions->items[0].Find("score")->string_value, "unhealthy");
  EXPECT_EQ(sessions->items[1].Find("id")->string_value, "s1");
  EXPECT_EQ(sessions->items[1].Find("score")->string_value, "green");
}

TEST_F(HealthEndpointTest, OpenHostServesHealthWithoutSignature) {
  auto host = MakeHost();
  ASSERT_TRUE(host->CreateSession("s1").ok());
  HttpResponse response = Get(host.get(), "/host/health");
  EXPECT_EQ(response.status_code, 200);
  auto parsed = ParseJson(response.body);
  ASSERT_TRUE(parsed.ok()) << response.body;
  EXPECT_EQ(parsed->Find("sessions_total")->number_value, 1);
}

}  // namespace
}  // namespace rcb
