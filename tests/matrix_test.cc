// Parameterized environment-matrix sweep: every combination of network
// profile (LAN / WAN / mobile), cache mode, sync model, and participant
// count must produce a correct synchronized session on a corpus site.
#include <gtest/gtest.h>

#include "src/core/ajax_snippet.h"
#include "src/core/session.h"
#include "src/host/rcb_host.h"
#include "src/html/parser.h"
#include "src/net/fault_injector.h"
#include "src/sites/corpus.h"
#include "src/util/strings.h"

namespace rcb {
namespace {

struct MatrixCase {
  const char* profile;  // "lan" | "wan" | "mobile"
  bool cache_mode;
  SyncModel sync_model;
  size_t participants;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  const MatrixCase& c = info.param;
  std::string name = c.profile;
  name += c.cache_mode ? "_cache" : "_origin";
  name += c.sync_model == SyncModel::kPush ? "_push" : "_poll";
  name += "_p" + std::to_string(c.participants);
  return name;
}

NetworkProfile ProfileByName(const std::string& name) {
  if (name == "wan") {
    return WanProfile();
  }
  if (name == "mobile") {
    return MobileProfile();
  }
  return LanProfile();
}

class EnvironmentMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(EnvironmentMatrixTest, CoNavigationSynchronizesEveryone) {
  const MatrixCase& param = GetParam();
  EventLoop loop;
  Network network(&loop);
  SessionOptions options;
  options.profile = ProfileByName(param.profile);
  options.cache_mode = param.cache_mode;
  options.sync_model = param.sync_model;
  options.participant_count = param.participants;
  options.poll_interval = Duration::Millis(500);

  const SiteSpec* spec = FindSite("facebook.com");
  AddOriginServer(&network, options.profile, spec->host, spec->server_bps,
                  spec->server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  for (size_t i = 2; i <= param.participants; ++i) {
    network.SetLatency(
        options.participant_machine_prefix + "-" + std::to_string(i),
        spec->host, spec->server_latency + options.profile.access_latency);
  }
  auto server = InstallSite(&loop, &network, *spec);

  CoBrowsingSession session(&loop, &network, options);
  ASSERT_TRUE(session.Start().ok());
  auto stats = session.CoNavigate(Url::Make("http", spec->host, 80, "/"),
                                  Duration::Seconds(300.0));
  ASSERT_TRUE(stats.ok()) << stats.status();

  for (size_t i = 0; i < param.participants; ++i) {
    Document* doc = session.participant_browser(i)->document();
    EXPECT_EQ(doc->Title(), "facebook.com - homepage") << "participant " << i;
    EXPECT_EQ(session.snippet(i)->metrics().object_fetch_failures, 0u);
    if (param.cache_mode) {
      EXPECT_GT(stats->participant_objects_from_host[i], 0u);
    } else {
      EXPECT_EQ(stats->participant_objects_from_host[i], 0u);
    }
  }
  // Snapshot generated once, reused for everyone (one mode in play).
  EXPECT_EQ(session.agent()->metrics().generations, 1u);

  // A scripted mutation also reaches everyone in every configuration.
  session.host_browser()->MutateDocument([](Document* document) {
    auto marker = MakeElement("div");
    marker->SetAttribute("id", "matrix-marker");
    document->body()->AppendChild(std::move(marker));
  });
  ASSERT_TRUE(session.WaitForSync(Duration::Seconds(120.0)).ok());
  for (size_t i = 0; i < param.participants; ++i) {
    EXPECT_NE(session.participant_browser(i)->document()->ById("matrix-marker"),
              nullptr)
        << "participant " << i;
  }
}

std::vector<MatrixCase> AllCases() {
  std::vector<MatrixCase> cases;
  for (const char* profile : {"lan", "wan", "mobile"}) {
    for (bool cache : {true, false}) {
      for (SyncModel model : {SyncModel::kPoll, SyncModel::kPush}) {
        for (size_t participants : {1u, 3u}) {
          cases.push_back(MatrixCase{profile, cache, model, participants});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllEnvironments, EnvironmentMatrixTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// ------------------------------------------------ multi-session chaos ------
//
// {LAN, WAN} x {loss, reset, partition} against an RcbHost running three
// sessions of four participants each. The fault hits ONLY session 0's
// participant links; sessions 1 and 2 must come through untouched (no
// timeouts, no resyncs), session 0 must recover within the horizon, and two
// identical runs must produce bit-identical deterministic counters.

constexpr int kChaosSessions = 3;
constexpr int kChaosParticipants = 4;

struct HostChaosCase {
  const char* profile_name;  // "Lan" | "Wan"
  FaultEvent::Kind kind;
};

std::string HostChaosCaseName(
    const ::testing::TestParamInfo<HostChaosCase>& info) {
  std::string name = info.param.profile_name;
  switch (info.param.kind) {
    case FaultEvent::Kind::kLoss:
      name += "Loss";
      break;
    case FaultEvent::Kind::kReset:
      name += "Reset";
      break;
    default:
      name += "Partition";
      break;
  }
  return name;
}

std::string ChaosMachine(int session, int participant) {
  return StrFormat("chaos-pc-%d-%d", session, participant);
}

// One complete run; returns the deterministic counter fingerprint and runs
// the per-session independence assertions.
std::string RunMultiSessionChaos(const HostChaosCase& chaos) {
  NetworkProfile profile =
      std::string(chaos.profile_name) == "Wan" ? WanProfile() : LanProfile();
  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", profile.host_interface);
  for (int s = 0; s < kChaosSessions; ++s) {
    for (int p = 0; p < kChaosParticipants; ++p) {
      network.AddHost(ChaosMachine(s, p), profile.participant_interface);
      network.SetLatency("host-pc", ChaosMachine(s, p),
                         profile.host_participant_latency);
    }
  }

  HostConfig host_config;
  host_config.agent_defaults.poll_interval = Duration::Millis(250);
  RcbHost host(&loop, &network, host_config);
  EXPECT_TRUE(host.Start().ok());

  struct ChaosParticipant {
    std::unique_ptr<Browser> browser;
    std::unique_ptr<AjaxSnippet> snippet;
  };
  std::vector<HostSession*> sessions;
  std::vector<std::vector<ChaosParticipant>> participants(kChaosSessions);
  size_t joined = 0;
  for (int s = 0; s < kChaosSessions; ++s) {
    AgentConfig agent_config;
    agent_config.session_key = StrFormat("chaos-key-%d", s);
    auto session = host.CreateSession(StrFormat("chaos-%d", s), agent_config);
    EXPECT_TRUE(session.ok());
    sessions.push_back(*session);
    (*session)->browser->ReplaceDocument(
        ParseDocument(StrFormat("<html><head><title>S%d</title></head>"
                                "<body><p id=\"p\">base</p></body></html>",
                                s)),
        Url::Make("http", "host-pc", (*session)->port, "/doc"));
    participants[s].resize(kChaosParticipants);
    for (int p = 0; p < kChaosParticipants; ++p) {
      ChaosParticipant& participant = participants[s][p];
      participant.browser =
          std::make_unique<Browser>(&loop, &network, ChaosMachine(s, p));
      SnippetConfig config;
      config.session_key = StrFormat("chaos-key-%d", s);
      config.fetch_objects = false;
      config.poll_timeout = Duration::Seconds(1.0);
      config.reconnect_after = 2;
      config.backoff_base = Duration::Millis(250);
      config.backoff_max = Duration::Seconds(2.0);
      config.backoff_jitter = Duration::Millis(100);
      config.backoff_seed = 0x5EED + s * 16 + p;  // no retry stampedes
      participant.snippet = std::make_unique<AjaxSnippet>(
          participant.browser.get(), config);
      participant.snippet->Join(sessions[s]->agent->AgentUrl(),
                                [&](Status status) {
                                  EXPECT_TRUE(status.ok()) << status;
                                  ++joined;
                                });
    }
  }
  EXPECT_TRUE(loop.RunUntilCondition([&] {
    return joined == kChaosSessions * kChaosParticipants;
  }));
  EXPECT_TRUE(loop.RunUntilCondition([&] {
    for (auto& session_participants : participants) {
      for (auto& participant : session_participants) {
        if (participant.snippet->metrics().content_updates < 1) {
          return false;
        }
      }
    }
    return true;
  }));

  // The fault hits every participant link of session 0, nobody else's.
  FaultInjector injector(&network, /*seed=*/2024);
  for (int p = 0; p < kChaosParticipants; ++p) {
    FaultEvent event = ChaosEvent(profile, chaos.kind,
                                  loop.now() + Duration::Millis(100),
                                  chaos.kind == FaultEvent::Kind::kPartition
                                      ? Duration::Seconds(5.0)
                                      : Duration::Seconds(15.0));
    injector.Install(FaultPlan{"host-pc", ChaosMachine(0, p), {event}});
  }

  // Every session's document mutates mid-fault.
  loop.Schedule(Duration::Millis(500), [&] {
    for (HostSession* session : sessions) {
      session->browser->MutateDocument([](Document* document) {
        auto marker = MakeElement("div");
        marker->SetAttribute("id", "chaos-marker");
        document->body()->AppendChild(std::move(marker));
      });
    }
  });

  // Fixed simulated horizon so two runs execute the identical schedule.
  loop.RunFor(Duration::Seconds(40.0));

  std::string fingerprint;
  for (int s = 0; s < kChaosSessions; ++s) {
    const AgentMetrics& agent = sessions[s]->agent->metrics();
    fingerprint += StrFormat(
        "s%d agent polls=%llu content=%llu auth=%llu timeouts=%llu "
        "reconnects=%llu resyncs=%llu updates=%llu gens=%llu\n", s,
        static_cast<unsigned long long>(agent.polls_received),
        static_cast<unsigned long long>(agent.polls_with_content),
        static_cast<unsigned long long>(agent.auth_failures),
        static_cast<unsigned long long>(agent.poll_timeouts),
        static_cast<unsigned long long>(agent.reconnects),
        static_cast<unsigned long long>(agent.resyncs),
        static_cast<unsigned long long>(agent.doc_updates),
        static_cast<unsigned long long>(agent.generations));
    for (int p = 0; p < kChaosParticipants; ++p) {
      const SnippetMetrics& snippet = participants[s][p].snippet->metrics();
      bool converged = participants[s][p].browser->document()->ById(
                           "chaos-marker") != nullptr;
      fingerprint += StrFormat(
          "s%d p%d polls=%llu timeouts=%llu failures=%llu reconnects=%llu "
          "resyncs=%llu doc_time=%lld marker=%d\n", s, p,
          static_cast<unsigned long long>(snippet.polls_sent),
          static_cast<unsigned long long>(snippet.poll_timeouts),
          static_cast<unsigned long long>(snippet.transport_failures),
          static_cast<unsigned long long>(snippet.reconnects),
          static_cast<unsigned long long>(snippet.resyncs),
          static_cast<long long>(participants[s][p].snippet->doc_time_ms()),
          converged ? 1 : 0);

      // Convergence: everyone — including the faulted session — holds the
      // mid-fault mutation by the end of the horizon.
      EXPECT_TRUE(converged) << "session " << s << " participant " << p;
      if (s != 0) {
        // Independence: the fault never bled into the other sessions.
        EXPECT_EQ(snippet.poll_timeouts, 0u) << "session " << s;
        EXPECT_EQ(snippet.transport_failures, 0u) << "session " << s;
        EXPECT_EQ(snippet.resyncs, 0u) << "session " << s;
        EXPECT_EQ(snippet.reconnects, 0u) << "session " << s;
      }
    }
    if (s != 0) {
      EXPECT_EQ(agent.poll_timeouts, 0u) << "session " << s;
      EXPECT_EQ(agent.resyncs, 0u) << "session " << s;
      EXPECT_EQ(agent.auth_failures, 0u) << "session " << s;
    }
  }
  return fingerprint;
}

class MultiSessionChaosTest : public ::testing::TestWithParam<HostChaosCase> {};

TEST_P(MultiSessionChaosTest, FaultedSessionRecoversOthersUnaffected) {
  std::string first = RunMultiSessionChaos(GetParam());
  std::string second = RunMultiSessionChaos(GetParam());
  // Bit-identical recovery: the whole counter fingerprint reproduces.
  EXPECT_EQ(first, second) << "chaos recovery diverged between runs";
}

INSTANTIATE_TEST_SUITE_P(
    HostChaos, MultiSessionChaosTest,
    ::testing::Values(HostChaosCase{"Lan", FaultEvent::Kind::kLoss},
                      HostChaosCase{"Lan", FaultEvent::Kind::kReset},
                      HostChaosCase{"Lan", FaultEvent::Kind::kPartition},
                      HostChaosCase{"Wan", FaultEvent::Kind::kLoss},
                      HostChaosCase{"Wan", FaultEvent::Kind::kReset},
                      HostChaosCase{"Wan", FaultEvent::Kind::kPartition}),
    HostChaosCaseName);

}  // namespace
}  // namespace rcb
