// Parameterized environment-matrix sweep: every combination of network
// profile (LAN / WAN / mobile), cache mode, sync model, and participant
// count must produce a correct synchronized session on a corpus site.
#include <gtest/gtest.h>

#include "src/core/session.h"
#include "src/sites/corpus.h"

namespace rcb {
namespace {

struct MatrixCase {
  const char* profile;  // "lan" | "wan" | "mobile"
  bool cache_mode;
  SyncModel sync_model;
  size_t participants;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  const MatrixCase& c = info.param;
  std::string name = c.profile;
  name += c.cache_mode ? "_cache" : "_origin";
  name += c.sync_model == SyncModel::kPush ? "_push" : "_poll";
  name += "_p" + std::to_string(c.participants);
  return name;
}

NetworkProfile ProfileByName(const std::string& name) {
  if (name == "wan") {
    return WanProfile();
  }
  if (name == "mobile") {
    return MobileProfile();
  }
  return LanProfile();
}

class EnvironmentMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(EnvironmentMatrixTest, CoNavigationSynchronizesEveryone) {
  const MatrixCase& param = GetParam();
  EventLoop loop;
  Network network(&loop);
  SessionOptions options;
  options.profile = ProfileByName(param.profile);
  options.cache_mode = param.cache_mode;
  options.sync_model = param.sync_model;
  options.participant_count = param.participants;
  options.poll_interval = Duration::Millis(500);

  const SiteSpec* spec = FindSite("facebook.com");
  AddOriginServer(&network, options.profile, spec->host, spec->server_bps,
                  spec->server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  for (size_t i = 2; i <= param.participants; ++i) {
    network.SetLatency(
        options.participant_machine_prefix + "-" + std::to_string(i),
        spec->host, spec->server_latency + options.profile.access_latency);
  }
  auto server = InstallSite(&loop, &network, *spec);

  CoBrowsingSession session(&loop, &network, options);
  ASSERT_TRUE(session.Start().ok());
  auto stats = session.CoNavigate(Url::Make("http", spec->host, 80, "/"),
                                  Duration::Seconds(300.0));
  ASSERT_TRUE(stats.ok()) << stats.status();

  for (size_t i = 0; i < param.participants; ++i) {
    Document* doc = session.participant_browser(i)->document();
    EXPECT_EQ(doc->Title(), "facebook.com - homepage") << "participant " << i;
    EXPECT_EQ(session.snippet(i)->metrics().object_fetch_failures, 0u);
    if (param.cache_mode) {
      EXPECT_GT(stats->participant_objects_from_host[i], 0u);
    } else {
      EXPECT_EQ(stats->participant_objects_from_host[i], 0u);
    }
  }
  // Snapshot generated once, reused for everyone (one mode in play).
  EXPECT_EQ(session.agent()->metrics().generations, 1u);

  // A scripted mutation also reaches everyone in every configuration.
  session.host_browser()->MutateDocument([](Document* document) {
    auto marker = MakeElement("div");
    marker->SetAttribute("id", "matrix-marker");
    document->body()->AppendChild(std::move(marker));
  });
  ASSERT_TRUE(session.WaitForSync(Duration::Seconds(120.0)).ok());
  for (size_t i = 0; i < param.participants; ++i) {
    EXPECT_NE(session.participant_browser(i)->document()->ById("matrix-marker"),
              nullptr)
        << "participant " << i;
  }
}

std::vector<MatrixCase> AllCases() {
  std::vector<MatrixCase> cases;
  for (const char* profile : {"lan", "wan", "mobile"}) {
    for (bool cache : {true, false}) {
      for (SyncModel model : {SyncModel::kPoll, SyncModel::kPush}) {
        for (size_t participants : {1u, 3u}) {
          cases.push_back(MatrixCase{profile, cache, model, participants});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllEnvironments, EnvironmentMatrixTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace rcb
