// Parameterized environment-matrix sweep: every combination of network
// profile (LAN / WAN / mobile), cache mode, sync model, and participant
// count must produce a correct synchronized session on a corpus site.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>

#include "src/core/ajax_snippet.h"
#include "src/core/session.h"
#include "src/delta/tree_diff.h"
#include "src/host/rcb_host.h"
#include "src/html/parser.h"
#include "src/net/fault_injector.h"
#include "src/sites/corpus.h"
#include "src/sites/site_server.h"
#include "src/util/strings.h"

namespace rcb {
namespace {

struct MatrixCase {
  const char* profile;  // "lan" | "wan" | "mobile"
  bool cache_mode;
  SyncModel sync_model;
  size_t participants;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  const MatrixCase& c = info.param;
  std::string name = c.profile;
  name += c.cache_mode ? "_cache" : "_origin";
  name += c.sync_model == SyncModel::kPush ? "_push" : "_poll";
  name += "_p" + std::to_string(c.participants);
  return name;
}

NetworkProfile ProfileByName(const std::string& name) {
  if (name == "wan") {
    return WanProfile();
  }
  if (name == "mobile") {
    return MobileProfile();
  }
  return LanProfile();
}

class EnvironmentMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(EnvironmentMatrixTest, CoNavigationSynchronizesEveryone) {
  const MatrixCase& param = GetParam();
  EventLoop loop;
  Network network(&loop);
  SessionOptions options;
  options.profile = ProfileByName(param.profile);
  options.cache_mode = param.cache_mode;
  options.sync_model = param.sync_model;
  options.participant_count = param.participants;
  options.poll_interval = Duration::Millis(500);

  const SiteSpec* spec = FindSite("facebook.com");
  AddOriginServer(&network, options.profile, spec->host, spec->server_bps,
                  spec->server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  for (size_t i = 2; i <= param.participants; ++i) {
    network.SetLatency(
        options.participant_machine_prefix + "-" + std::to_string(i),
        spec->host, spec->server_latency + options.profile.access_latency);
  }
  auto server = InstallSite(&loop, &network, *spec);

  CoBrowsingSession session(&loop, &network, options);
  ASSERT_TRUE(session.Start().ok());
  auto stats = session.CoNavigate(Url::Make("http", spec->host, 80, "/"),
                                  Duration::Seconds(300.0));
  ASSERT_TRUE(stats.ok()) << stats.status();

  for (size_t i = 0; i < param.participants; ++i) {
    Document* doc = session.participant_browser(i)->document();
    EXPECT_EQ(doc->Title(), "facebook.com - homepage") << "participant " << i;
    EXPECT_EQ(session.snippet(i)->metrics().object_fetch_failures, 0u);
    if (param.cache_mode) {
      EXPECT_GT(stats->participant_objects_from_host[i], 0u);
    } else {
      EXPECT_EQ(stats->participant_objects_from_host[i], 0u);
    }
  }
  // Snapshot generated once, reused for everyone (one mode in play).
  EXPECT_EQ(session.agent()->metrics().generations, 1u);

  // A scripted mutation also reaches everyone in every configuration.
  session.host_browser()->MutateDocument([](Document* document) {
    auto marker = MakeElement("div");
    marker->SetAttribute("id", "matrix-marker");
    document->body()->AppendChild(std::move(marker));
  });
  ASSERT_TRUE(session.WaitForSync(Duration::Seconds(120.0)).ok());
  for (size_t i = 0; i < param.participants; ++i) {
    EXPECT_NE(session.participant_browser(i)->document()->ById("matrix-marker"),
              nullptr)
        << "participant " << i;
  }
}

std::vector<MatrixCase> AllCases() {
  std::vector<MatrixCase> cases;
  for (const char* profile : {"lan", "wan", "mobile"}) {
    for (bool cache : {true, false}) {
      for (SyncModel model : {SyncModel::kPoll, SyncModel::kPush}) {
        for (size_t participants : {1u, 3u}) {
          cases.push_back(MatrixCase{profile, cache, model, participants});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllEnvironments, EnvironmentMatrixTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// ------------------------------------------------ multi-session chaos ------
//
// {LAN, WAN} x {loss, reset, partition} against an RcbHost running three
// sessions of four participants each. The fault hits ONLY session 0's
// participant links; sessions 1 and 2 must come through untouched (no
// timeouts, no resyncs), session 0 must recover within the horizon, and two
// identical runs must produce bit-identical deterministic counters.

constexpr int kChaosSessions = 3;
constexpr int kChaosParticipants = 4;

struct HostChaosCase {
  const char* profile_name;  // "Lan" | "Wan"
  FaultEvent::Kind kind;
};

std::string HostChaosCaseName(
    const ::testing::TestParamInfo<HostChaosCase>& info) {
  std::string name = info.param.profile_name;
  switch (info.param.kind) {
    case FaultEvent::Kind::kLoss:
      name += "Loss";
      break;
    case FaultEvent::Kind::kReset:
      name += "Reset";
      break;
    default:
      name += "Partition";
      break;
  }
  return name;
}

std::string ChaosMachine(int session, int participant) {
  return StrFormat("chaos-pc-%d-%d", session, participant);
}

// One complete run; returns the deterministic counter fingerprint and runs
// the per-session independence assertions.
std::string RunMultiSessionChaos(const HostChaosCase& chaos) {
  NetworkProfile profile =
      std::string(chaos.profile_name) == "Wan" ? WanProfile() : LanProfile();
  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", profile.host_interface);
  for (int s = 0; s < kChaosSessions; ++s) {
    for (int p = 0; p < kChaosParticipants; ++p) {
      network.AddHost(ChaosMachine(s, p), profile.participant_interface);
      network.SetLatency("host-pc", ChaosMachine(s, p),
                         profile.host_participant_latency);
    }
  }

  HostConfig host_config;
  host_config.agent_defaults.poll_interval = Duration::Millis(250);
  RcbHost host(&loop, &network, host_config);
  EXPECT_TRUE(host.Start().ok());

  struct ChaosParticipant {
    std::unique_ptr<Browser> browser;
    std::unique_ptr<AjaxSnippet> snippet;
  };
  std::vector<HostSession*> sessions;
  std::vector<std::vector<ChaosParticipant>> participants(kChaosSessions);
  size_t joined = 0;
  for (int s = 0; s < kChaosSessions; ++s) {
    AgentConfig agent_config;
    agent_config.session_key = StrFormat("chaos-key-%d", s);
    auto session = host.CreateSession(StrFormat("chaos-%d", s), agent_config);
    EXPECT_TRUE(session.ok());
    sessions.push_back(*session);
    (*session)->browser->ReplaceDocument(
        ParseDocument(StrFormat("<html><head><title>S%d</title></head>"
                                "<body><p id=\"p\">base</p></body></html>",
                                s)),
        Url::Make("http", "host-pc", (*session)->port, "/doc"));
    participants[s].resize(kChaosParticipants);
    for (int p = 0; p < kChaosParticipants; ++p) {
      ChaosParticipant& participant = participants[s][p];
      participant.browser =
          std::make_unique<Browser>(&loop, &network, ChaosMachine(s, p));
      SnippetConfig config;
      config.session_key = StrFormat("chaos-key-%d", s);
      config.fetch_objects = false;
      config.poll_timeout = Duration::Seconds(1.0);
      config.reconnect_after = 2;
      config.backoff_base = Duration::Millis(250);
      config.backoff_max = Duration::Seconds(2.0);
      config.backoff_jitter = Duration::Millis(100);
      config.backoff_seed = 0x5EED + s * 16 + p;  // no retry stampedes
      participant.snippet = std::make_unique<AjaxSnippet>(
          participant.browser.get(), config);
      participant.snippet->Join(sessions[s]->agent->AgentUrl(),
                                [&](Status status) {
                                  EXPECT_TRUE(status.ok()) << status;
                                  ++joined;
                                });
    }
  }
  EXPECT_TRUE(loop.RunUntilCondition([&] {
    return joined == kChaosSessions * kChaosParticipants;
  }));
  EXPECT_TRUE(loop.RunUntilCondition([&] {
    for (auto& session_participants : participants) {
      for (auto& participant : session_participants) {
        if (participant.snippet->metrics().content_updates < 1) {
          return false;
        }
      }
    }
    return true;
  }));

  // The fault hits every participant link of session 0, nobody else's.
  FaultInjector injector(&network, /*seed=*/2024);
  for (int p = 0; p < kChaosParticipants; ++p) {
    FaultEvent event = ChaosEvent(profile, chaos.kind,
                                  loop.now() + Duration::Millis(100),
                                  chaos.kind == FaultEvent::Kind::kPartition
                                      ? Duration::Seconds(5.0)
                                      : Duration::Seconds(15.0));
    injector.Install(FaultPlan{"host-pc", ChaosMachine(0, p), {event}});
  }

  // Every session's document mutates mid-fault.
  loop.Schedule(Duration::Millis(500), [&] {
    for (HostSession* session : sessions) {
      session->browser->MutateDocument([](Document* document) {
        auto marker = MakeElement("div");
        marker->SetAttribute("id", "chaos-marker");
        document->body()->AppendChild(std::move(marker));
      });
    }
  });

  // Fixed simulated horizon so two runs execute the identical schedule.
  loop.RunFor(Duration::Seconds(40.0));

  std::string fingerprint;
  for (int s = 0; s < kChaosSessions; ++s) {
    const AgentMetrics& agent = sessions[s]->agent->metrics();
    fingerprint += StrFormat(
        "s%d agent polls=%llu content=%llu auth=%llu timeouts=%llu "
        "reconnects=%llu resyncs=%llu updates=%llu gens=%llu\n", s,
        static_cast<unsigned long long>(agent.polls_received),
        static_cast<unsigned long long>(agent.polls_with_content),
        static_cast<unsigned long long>(agent.auth_failures),
        static_cast<unsigned long long>(agent.poll_timeouts),
        static_cast<unsigned long long>(agent.reconnects),
        static_cast<unsigned long long>(agent.resyncs),
        static_cast<unsigned long long>(agent.doc_updates),
        static_cast<unsigned long long>(agent.generations));
    for (int p = 0; p < kChaosParticipants; ++p) {
      const SnippetMetrics& snippet = participants[s][p].snippet->metrics();
      bool converged = participants[s][p].browser->document()->ById(
                           "chaos-marker") != nullptr;
      fingerprint += StrFormat(
          "s%d p%d polls=%llu timeouts=%llu failures=%llu reconnects=%llu "
          "resyncs=%llu doc_time=%lld marker=%d\n", s, p,
          static_cast<unsigned long long>(snippet.polls_sent),
          static_cast<unsigned long long>(snippet.poll_timeouts),
          static_cast<unsigned long long>(snippet.transport_failures),
          static_cast<unsigned long long>(snippet.reconnects),
          static_cast<unsigned long long>(snippet.resyncs),
          static_cast<long long>(participants[s][p].snippet->doc_time_ms()),
          converged ? 1 : 0);

      // Convergence: everyone — including the faulted session — holds the
      // mid-fault mutation by the end of the horizon.
      EXPECT_TRUE(converged) << "session " << s << " participant " << p;
      if (s != 0) {
        // Independence: the fault never bled into the other sessions.
        EXPECT_EQ(snippet.poll_timeouts, 0u) << "session " << s;
        EXPECT_EQ(snippet.transport_failures, 0u) << "session " << s;
        EXPECT_EQ(snippet.resyncs, 0u) << "session " << s;
        EXPECT_EQ(snippet.reconnects, 0u) << "session " << s;
      }
    }
    if (s != 0) {
      EXPECT_EQ(agent.poll_timeouts, 0u) << "session " << s;
      EXPECT_EQ(agent.resyncs, 0u) << "session " << s;
      EXPECT_EQ(agent.auth_failures, 0u) << "session " << s;
    }
  }
  return fingerprint;
}

class MultiSessionChaosTest : public ::testing::TestWithParam<HostChaosCase> {};

TEST_P(MultiSessionChaosTest, FaultedSessionRecoversOthersUnaffected) {
  std::string first = RunMultiSessionChaos(GetParam());
  std::string second = RunMultiSessionChaos(GetParam());
  // Bit-identical recovery: the whole counter fingerprint reproduces.
  EXPECT_EQ(first, second) << "chaos recovery diverged between runs";
}

INSTANTIATE_TEST_SUITE_P(
    HostChaos, MultiSessionChaosTest,
    ::testing::Values(HostChaosCase{"Lan", FaultEvent::Kind::kLoss},
                      HostChaosCase{"Lan", FaultEvent::Kind::kReset},
                      HostChaosCase{"Lan", FaultEvent::Kind::kPartition},
                      HostChaosCase{"Wan", FaultEvent::Kind::kLoss},
                      HostChaosCase{"Wan", FaultEvent::Kind::kReset},
                      HostChaosCase{"Wan", FaultEvent::Kind::kPartition}),
    HostChaosCaseName);

// ---------------------------------------------- transport chaos matrix ----
//
// {LAN, WAN} x {loss, reset, partition} x {frames, long-poll, adaptive-poll}:
// a transport-upgraded session takes the fault on its participant link
// mid-update, must reconverge through the recovery ladder (heartbeat timeout
// -> signed resume -> downgrade only if the ladder says so), and two
// identical runs must produce bit-identical counter fingerprints.

enum class TransportMode { kFrames, kLongPoll, kAdaptive };

struct TransportChaosCase {
  const char* profile_name;  // "Lan" | "Wan"
  FaultEvent::Kind kind;
  TransportMode mode;
};

std::string TransportChaosCaseName(
    const ::testing::TestParamInfo<TransportChaosCase>& info) {
  std::string name = info.param.profile_name;
  switch (info.param.kind) {
    case FaultEvent::Kind::kLoss:
      name += "Loss";
      break;
    case FaultEvent::Kind::kReset:
      name += "Reset";
      break;
    default:
      name += "Partition";
      break;
  }
  switch (info.param.mode) {
    case TransportMode::kFrames:
      name += "Frames";
      break;
    case TransportMode::kLongPoll:
      name += "LongPoll";
      break;
    case TransportMode::kAdaptive:
      name += "AdaptivePoll";
      break;
  }
  return name;
}

std::string RunTransportChaos(const TransportChaosCase& chaos) {
  NetworkProfile profile =
      std::string(chaos.profile_name) == "Wan" ? WanProfile() : LanProfile();
  EventLoop loop;
  Network network(&loop);
  network.AddHost("www.site.test", {});
  SiteServer site(&loop, &network, "www.site.test");
  site.ServeStatic("/", "text/html",
                   "<html><head><title>T</title></head>"
                   "<body><p id=\"p\">v1</p></body></html>");

  SessionOptions options;
  options.profile = profile;
  options.enable_auth = true;
  options.poll_interval = Duration::Millis(250);
  options.poll_timeout = Duration::Seconds(1.0);
  options.reconnect_after = 2;
  options.backoff_base = Duration::Millis(250);
  options.backoff_max = Duration::Seconds(2.0);
  options.backoff_jitter = Duration::Millis(100);
  switch (chaos.mode) {
    case TransportMode::kFrames:
      options.enable_transport = true;
      options.snippet_stream_mode = 2;
      options.transport_heartbeat = Duration::Millis(500);
      break;
    case TransportMode::kLongPoll:
      options.enable_transport = true;
      options.snippet_stream_mode = 1;
      options.transport_hold = Duration::Seconds(2.0);
      break;
    case TransportMode::kAdaptive:
      options.adaptive_poll = true;
      options.adaptive_max = Duration::Seconds(2.0);
      break;
  }
  CoBrowsingSession session(&loop, &network, options);
  EXPECT_TRUE(session.Start().ok());

  bool loaded = false;
  session.host_browser()->Navigate(
      Url::Make("http", "www.site.test", 80, "/"),
      [&](const Status& status, const PageLoadStats&) {
        EXPECT_TRUE(status.ok()) << status;
        loaded = true;
      });
  EXPECT_TRUE(loop.RunUntilCondition([&] { return loaded; }));
  EXPECT_TRUE(session.WaitForSync().ok());

  FaultInjector injector(&network, /*seed=*/2024);
  FaultEvent event = ChaosEvent(profile, chaos.kind,
                                loop.now() + Duration::Millis(100),
                                chaos.kind == FaultEvent::Kind::kPartition
                                    ? Duration::Seconds(5.0)
                                    : Duration::Seconds(15.0));
  injector.Install(FaultPlan{"host-pc", "participant-pc-1", {event}});
  loop.Schedule(Duration::Millis(500), [&] {
    session.host_browser()->MutateDocument([](Document* document) {
      auto marker = MakeElement("div");
      marker->SetAttribute("id", "transport-chaos-marker");
      document->body()->AppendChild(std::move(marker));
    });
  });

  // Fixed simulated horizon so two runs execute the identical schedule.
  loop.RunFor(Duration::Seconds(40.0));

  // Convergence through the fault, whatever rung of the ladder was used.
  EXPECT_NE(session.participant_browser(0)->document()->ById(
                "transport-chaos-marker"),
            nullptr)
      << TransportChaosCaseName({chaos, 0});

  const AgentMetrics& agent = session.agent()->metrics();
  const SnippetMetrics& snippet = session.snippet(0)->metrics();
  return StrFormat(
      "agent polls=%llu content=%llu timeouts=%llu reconnects=%llu "
      "resyncs=%llu streams=%llu frames=%llu hbs=%llu bytes=%llu "
      "parked=%llu flushes=%llu expiries=%llu denials=%llu\n"
      "snippet polls=%llu wasted=%llu wasted_bytes=%llu frames=%llu "
      "hbs=%llu frame_errors=%llu hb_timeouts=%llu opened=%llu "
      "failures=%llu downgrades=%llu reconnects=%llu resyncs=%llu "
      "doc_time=%lld\n",
      static_cast<unsigned long long>(agent.polls_received),
      static_cast<unsigned long long>(agent.polls_with_content),
      static_cast<unsigned long long>(agent.poll_timeouts),
      static_cast<unsigned long long>(agent.reconnects),
      static_cast<unsigned long long>(agent.resyncs),
      static_cast<unsigned long long>(agent.transport_streams_opened),
      static_cast<unsigned long long>(agent.transport_frames_sent),
      static_cast<unsigned long long>(agent.transport_heartbeats_sent),
      static_cast<unsigned long long>(agent.transport_frame_bytes_sent),
      static_cast<unsigned long long>(agent.transport_long_polls_parked),
      static_cast<unsigned long long>(agent.transport_long_poll_flushes),
      static_cast<unsigned long long>(agent.transport_long_poll_expiries),
      static_cast<unsigned long long>(agent.transport_capacity_denials),
      static_cast<unsigned long long>(snippet.polls_sent),
      static_cast<unsigned long long>(snippet.wasted_polls),
      static_cast<unsigned long long>(snippet.wasted_poll_bytes),
      static_cast<unsigned long long>(snippet.frames_received),
      static_cast<unsigned long long>(snippet.heartbeats_received),
      static_cast<unsigned long long>(snippet.frame_errors),
      static_cast<unsigned long long>(snippet.heartbeat_timeouts),
      static_cast<unsigned long long>(snippet.transport_streams_opened),
      static_cast<unsigned long long>(snippet.transport_stream_failures),
      static_cast<unsigned long long>(snippet.transport_downgrades),
      static_cast<unsigned long long>(snippet.reconnects),
      static_cast<unsigned long long>(snippet.resyncs),
      static_cast<long long>(session.snippet(0)->doc_time_ms()));
}

class TransportChaosTest
    : public ::testing::TestWithParam<TransportChaosCase> {};

TEST_P(TransportChaosTest, RecoversAndReplaysBitIdentically) {
  std::string first = RunTransportChaos(GetParam());
  std::string second = RunTransportChaos(GetParam());
  EXPECT_EQ(first, second) << "transport chaos recovery diverged between runs";
}

std::vector<TransportChaosCase> AllTransportChaosCases() {
  std::vector<TransportChaosCase> cases;
  for (const char* profile : {"Lan", "Wan"}) {
    for (FaultEvent::Kind kind :
         {FaultEvent::Kind::kLoss, FaultEvent::Kind::kReset,
          FaultEvent::Kind::kPartition}) {
      for (TransportMode mode : {TransportMode::kFrames,
                                 TransportMode::kLongPoll,
                                 TransportMode::kAdaptive}) {
        cases.push_back(TransportChaosCase{profile, kind, mode});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(TransportChaos, TransportChaosTest,
                         ::testing::ValuesIn(AllTransportChaosCases()),
                         TransportChaosCaseName);

// ------------------------------------------- crash-recovery chaos matrix ---
//
// {every CrashPoint} x {LAN, WAN}: an RcbHost with three persisted sessions
// is crash-injected on session 0's persistence stream (DESIGN.md §13),
// restarted over the same directory, and must recover per the ladder —
// while a second, unfaulted host on its own machine sails through the whole
// cycle with zero recovery events. Two identical runs must produce
// bit-identical counter + digest fingerprints.

constexpr int kCrashSessions = 3;
constexpr int kCrashParticipants = 2;

struct CrashChaosCase {
  const char* profile_name;  // "Lan" | "Wan"
  CrashPoint point;
};

std::string CrashChaosCaseName(
    const ::testing::TestParamInfo<CrashChaosCase>& info) {
  std::string name = info.param.profile_name;
  bool upper = true;
  for (char c : std::string(CrashPointName(info.param.point))) {
    if (c == '_') {
      upper = true;
      continue;
    }
    name += upper ? static_cast<char>(std::toupper(c)) : c;
    upper = false;
  }
  return name;
}

std::string CrashDigest(const Document& document) {
  return delta::TreeDigest(*delta::CanonicalizeDocument(document));
}

// One complete crash/restart/recovery cycle; returns the deterministic
// fingerprint and runs the per-case recovery + independence assertions.
std::string RunCrashRecoveryChaos(const CrashChaosCase& chaos) {
  namespace fs = std::filesystem;
  NetworkProfile profile =
      std::string(chaos.profile_name) == "Wan" ? WanProfile() : LanProfile();
  const bool swap_torn = chaos.point == CrashPoint::kTornCheckpointSwap;
  const bool checkpoint_point =
      swap_torn || chaos.point == CrashPoint::kTornCheckpointTmp;
  const bool torn_tail = chaos.point == CrashPoint::kTornWalFrame ||
                         chaos.point == CrashPoint::kPartialFlush;

  // Fresh directory per case, wiped so both fingerprint runs start equal.
  fs::path dir = fs::path(::testing::TempDir()) /
                 (std::string("rcb_crash_chaos_") + chaos.profile_name + "_" +
                  CrashPointName(chaos.point));
  fs::remove_all(dir);
  fs::create_directories(dir);

  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", profile.host_interface);
  network.AddHost("calm-pc", profile.host_interface);
  for (int s = 0; s < kCrashSessions; ++s) {
    for (int p = 0; p < kCrashParticipants; ++p) {
      network.AddHost(ChaosMachine(s, p), profile.participant_interface);
      network.SetLatency("host-pc", ChaosMachine(s, p),
                         profile.host_participant_latency);
    }
  }
  for (int p = 0; p < kCrashParticipants; ++p) {
    network.AddHost(StrFormat("calm-pc-p%d", p),
                    profile.participant_interface);
    network.SetLatency("calm-pc", StrFormat("calm-pc-p%d", p),
                       profile.host_participant_latency);
  }

  ProcessFaultInjector faults;
  auto make_config = [&] {
    HostConfig config;
    config.agent_defaults.poll_interval = Duration::Millis(250);
    config.persist.dir = dir.string();
    config.process_faults = &faults;
    config.recovery_storm_window = Duration::Zero();
    return config;
  };
  auto host = std::make_unique<RcbHost>(&loop, &network, make_config());
  EXPECT_TRUE(host->Start().ok());

  // The unfaulted control: its own host machine, no persistence, never
  // restarted — the crash cycle next door must not register here at all.
  HostConfig calm_config;
  calm_config.machine = "calm-pc";
  calm_config.agent_defaults.poll_interval = Duration::Millis(250);
  RcbHost calm_host(&loop, &network, calm_config);
  EXPECT_TRUE(calm_host.Start().ok());
  auto calm_session = calm_host.CreateSession("calm");
  EXPECT_TRUE(calm_session.ok());
  (*calm_session)
      ->browser->ReplaceDocument(
          ParseDocument("<html><head><title>Calm</title></head>"
                        "<body><p id=\"status\">calm</p></body></html>"),
          Url::Make("http", "calm-pc", (*calm_session)->port, "/doc"));

  struct ChaosParticipant {
    std::unique_ptr<Browser> browser;
    std::unique_ptr<AjaxSnippet> snippet;
  };
  auto make_snippet_config = [](const std::string& key, uint64_t seed) {
    SnippetConfig config;
    config.session_key = key;
    config.fetch_objects = false;
    config.poll_timeout = Duration::Seconds(1.0);
    config.reconnect_after = 2;
    config.backoff_base = Duration::Millis(250);
    config.backoff_max = Duration::Seconds(2.0);
    config.backoff_jitter = Duration::Millis(100);
    config.backoff_seed = seed;  // no retry stampedes
    return config;
  };

  std::vector<uint16_t> ports(kCrashSessions);
  std::vector<std::vector<ChaosParticipant>> participants(kCrashSessions);
  std::vector<ChaosParticipant> calm_participants(kCrashParticipants);
  size_t joined = 0;
  for (int s = 0; s < kCrashSessions; ++s) {
    AgentConfig agent_config;
    agent_config.session_key = StrFormat("crash-key-%d", s);
    auto session = host->CreateSession(StrFormat("crash-%d", s), agent_config);
    EXPECT_TRUE(session.ok());
    ports[s] = (*session)->port;
    (*session)->browser->ReplaceDocument(
        ParseDocument(StrFormat("<html><head><title>S%d</title></head>"
                                "<body><p id=\"status\">v1</p></body></html>",
                                s)),
        Url::Make("http", "host-pc", ports[s], "/doc"));
    participants[s].resize(kCrashParticipants);
    for (int p = 0; p < kCrashParticipants; ++p) {
      ChaosParticipant& participant = participants[s][p];
      participant.browser =
          std::make_unique<Browser>(&loop, &network, ChaosMachine(s, p));
      participant.snippet = std::make_unique<AjaxSnippet>(
          participant.browser.get(),
          make_snippet_config(StrFormat("crash-key-%d", s),
                              0x5EED + s * 16 + p));
      participant.snippet->Join((*session)->agent->AgentUrl(),
                                [&](Status status) {
                                  EXPECT_TRUE(status.ok()) << status;
                                  ++joined;
                                });
    }
  }
  for (int p = 0; p < kCrashParticipants; ++p) {
    ChaosParticipant& participant = calm_participants[p];
    participant.browser = std::make_unique<Browser>(
        &loop, &network, StrFormat("calm-pc-p%d", p));
    participant.snippet = std::make_unique<AjaxSnippet>(
        participant.browser.get(), make_snippet_config("", 0xCA1A + p));
    participant.snippet->Join((*calm_session)->agent->AgentUrl(),
                              [&](Status status) {
                                EXPECT_TRUE(status.ok()) << status;
                                ++joined;
                              });
  }
  EXPECT_TRUE(loop.RunUntilCondition([&] {
    return joined ==
           static_cast<size_t>((kCrashSessions + 1) * kCrashParticipants);
  }));

  // Everyone converges on a second version, which is then made durable —
  // the state recovery must restore bit-for-bit.
  for (int s = 0; s < kCrashSessions; ++s) {
    host->FindSession(StrFormat("crash-%d", s))
        ->browser->MutateDocument([&](Document* document) {
          document->body()->SetAttribute("data-v", "2");
        });
  }
  EXPECT_TRUE(loop.RunUntilCondition([&] {
    for (auto& session_participants : participants) {
      for (auto& participant : session_participants) {
        if (participant.browser->document()->body()->AttrOr("data-v") != "2") {
          return false;
        }
      }
    }
    return true;
  }));
  std::vector<std::string> durable_digest(kCrashSessions);
  for (int s = 0; s < kCrashSessions; ++s) {
    std::string id = StrFormat("crash-%d", s);
    EXPECT_TRUE(host->CheckpointSession(id).ok());
    durable_digest[s] =
        CrashDigest(*host->FindSession(id)->browser->document());
  }

  // Arm the case's crash point against session 0's persistence stream only,
  // drive traffic into it, and let the process die.
  faults.Arm({chaos.point, 0, "crash-0"});
  host->FindSession("crash-0")->browser->MutateDocument(
      [&](Document* document) {
        document->body()->SetAttribute("data-v", "3");
      });
  if (checkpoint_point) {
    (void)host->CheckpointSession("crash-0");
  }
  EXPECT_TRUE(loop.RunUntilCondition([&] { return faults.crashed(); }));
  EXPECT_EQ(faults.metrics().crashes, 1u);
  host.reset();
  loop.RunFor(Duration::Seconds(2.0));

  // Restart over the same directory: the ladder decides per session.
  faults.Reset();
  host = std::make_unique<RcbHost>(&loop, &network, make_config());
  EXPECT_TRUE(host->Start().ok());
  EXPECT_EQ(host->metrics().sessions_recovered, swap_torn ? 2u : 3u);
  EXPECT_EQ(host->metrics().sessions_unrecoverable, swap_torn ? 1u : 0u);
  if (torn_tail) {
    EXPECT_GE(host->persist_counters().wal_tail_discards, 1u);
  } else {
    EXPECT_EQ(host->persist_counters().wal_tail_discards, 0u);
  }
  if (swap_torn) {
    EXPECT_GE(host->persist_counters().checkpoints_rejected, 1u);
    EXPECT_EQ(host->FindSession("crash-0"), nullptr);
  }

  // Recovered sessions restore the durable digests bit-identical, and their
  // participants come back over the signed-resume path — no full rejoin.
  EXPECT_TRUE(loop.RunUntilCondition([&] {
    for (int s = swap_torn ? 1 : 0; s < kCrashSessions; ++s) {
      for (auto& participant : participants[s]) {
        const SnippetMetrics& m = participant.snippet->metrics();
        if (m.reconnects < 1 || m.resyncs < 1) {
          return false;
        }
      }
    }
    return true;
  }));
  for (int s = swap_torn ? 1 : 0; s < kCrashSessions; ++s) {
    HostSession* session = host->FindSession(StrFormat("crash-%d", s));
    EXPECT_NE(session, nullptr) << s;
    if (session == nullptr) {
      continue;
    }
    EXPECT_TRUE(session->recovered) << s;
    EXPECT_EQ(session->port, ports[s]) << s;
    EXPECT_EQ(CrashDigest(*session->browser->document()), durable_digest[s])
        << s;
    EXPECT_EQ(session->agent->metrics().new_connections, 0u) << s;
    EXPECT_GE(session->agent->metrics().reconnects, 1u) << s;
    for (auto& participant : participants[s]) {
      EXPECT_EQ(CrashDigest(*participant.browser->document()),
                durable_digest[s])
          << s;
    }
  }
  if (swap_torn) {
    // The quarantined session's participants never got back in — and never
    // fell back to an unauthenticated fresh join either.
    for (auto& participant : participants[0]) {
      EXPECT_EQ(participant.snippet->metrics().reconnects, 0u);
    }
  }

  // The unfaulted host saw nothing: zero recovery events end to end.
  EXPECT_EQ(calm_host.metrics().sessions_recovered, 0u);
  EXPECT_EQ(calm_host.metrics().sessions_unrecoverable, 0u);
  const AgentMetrics& calm_agent = (*calm_session)->agent->metrics();
  EXPECT_EQ(calm_agent.reconnects, 0u);
  EXPECT_EQ(calm_agent.resyncs, 0u);
  EXPECT_EQ(calm_agent.poll_timeouts, 0u);
  for (auto& participant : calm_participants) {
    const SnippetMetrics& m = participant.snippet->metrics();
    EXPECT_EQ(m.transport_failures, 0u);
    EXPECT_EQ(m.poll_timeouts, 0u);
    EXPECT_EQ(m.reconnects, 0u);
    EXPECT_EQ(m.resyncs, 0u);
    EXPECT_EQ(m.overload_deferrals, 0u);
  }
  // ...and it is still live: a post-cycle mutation reaches its pollers.
  (*calm_session)->browser->MutateDocument([](Document* document) {
    document->body()->SetAttribute("data-after", "1");
  });
  EXPECT_TRUE(loop.RunUntilCondition([&] {
    for (auto& participant : calm_participants) {
      if (participant.browser->document()->body()->AttrOr("data-after") !=
          "1") {
        return false;
      }
    }
    return true;
  }));

  // The deterministic fingerprint: counters + digests from both hosts.
  std::string fingerprint = StrFormat(
      "host recovered=%llu unrecoverable=%llu tails=%llu rejected=%llu "
      "ckpts=%llu wal_records=%llu torn=%llu\n",
      static_cast<unsigned long long>(host->metrics().sessions_recovered),
      static_cast<unsigned long long>(host->metrics().sessions_unrecoverable),
      static_cast<unsigned long long>(
          host->persist_counters().wal_tail_discards),
      static_cast<unsigned long long>(
          host->persist_counters().checkpoints_rejected),
      static_cast<unsigned long long>(
          host->persist_counters().checkpoints_written),
      static_cast<unsigned long long>(host->persist_counters().wal_records),
      static_cast<unsigned long long>(host->persist_counters().torn_writes));
  for (int s = 0; s < kCrashSessions; ++s) {
    HostSession* session = host->FindSession(StrFormat("crash-%d", s));
    if (session == nullptr) {
      fingerprint += StrFormat("s%d quarantined\n", s);
    } else {
      const AgentMetrics& agent = session->agent->metrics();
      fingerprint += StrFormat(
          "s%d recovered=%d reconnects=%llu resyncs=%llu new=%llu "
          "digest=%s\n",
          s, session->recovered ? 1 : 0,
          static_cast<unsigned long long>(agent.reconnects),
          static_cast<unsigned long long>(agent.resyncs),
          static_cast<unsigned long long>(agent.new_connections),
          CrashDigest(*session->browser->document()).c_str());
    }
    for (int p = 0; p < kCrashParticipants; ++p) {
      const SnippetMetrics& m = participants[s][p].snippet->metrics();
      fingerprint += StrFormat(
          "s%d p%d failures=%llu reconnects=%llu resyncs=%llu digest=%s\n", s,
          p, static_cast<unsigned long long>(m.transport_failures),
          static_cast<unsigned long long>(m.reconnects),
          static_cast<unsigned long long>(m.resyncs),
          CrashDigest(*participants[s][p].browser->document()).c_str());
    }
  }
  fingerprint += StrFormat(
      "calm polls=%llu updates=%llu\n",
      static_cast<unsigned long long>(calm_agent.polls_received),
      static_cast<unsigned long long>(calm_agent.doc_updates));
  return fingerprint;
}

class CrashRecoveryChaosTest
    : public ::testing::TestWithParam<CrashChaosCase> {};

TEST_P(CrashRecoveryChaosTest, RecoveryLadderHoldsAndUnfaultedSeeNothing) {
  std::string first = RunCrashRecoveryChaos(GetParam());
  std::string second = RunCrashRecoveryChaos(GetParam());
  // Bit-identical crash recovery: the full fingerprint reproduces.
  EXPECT_EQ(first, second) << "crash recovery diverged between runs";
}

std::vector<CrashChaosCase> AllCrashCases() {
  std::vector<CrashChaosCase> cases;
  for (const char* profile : {"Lan", "Wan"}) {
    for (CrashPoint point : kAllCrashPoints) {
      cases.push_back(CrashChaosCase{profile, point});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(CrashChaos, CrashRecoveryChaosTest,
                         ::testing::ValuesIn(AllCrashCases()),
                         CrashChaosCaseName);

}  // namespace
}  // namespace rcb
