// Failure-injection tests: agent restarts, origin outages, participant
// crashes, hostile traffic, and a deterministic chaos matrix of injected
// network faults — the session must degrade predictably and the poll model
// must recover by construction (§3.2.3).
#include <gtest/gtest.h>

#include "src/core/session.h"
#include "src/net/fault_injector.h"
#include "src/net/profiles.h"
#include "src/obs/trace_export.h"
#include "src/util/escape.h"
#include "src/sites/corpus.h"
#include "src/sites/site_server.h"

namespace rcb {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest() : network_(&loop_) {
    network_.AddHost("www.site.test", {});
    site_ = std::make_unique<SiteServer>(&loop_, &network_, "www.site.test");
    site_->ServeStatic("/", "text/html",
                       "<html><head><title>A</title></head>"
                       "<body><p id=\"p\">one</p></body></html>");
    site_->ServeStatic("/two", "text/html",
                       "<html><head><title>B</title></head>"
                       "<body><p id=\"p\">two</p></body></html>");
  }

  void StartSession(SessionOptions options = {}) {
    options.poll_interval = Duration::Millis(500);
    session_ = std::make_unique<CoBrowsingSession>(&loop_, &network_, options);
    ASSERT_TRUE(session_->Start().ok());
  }

  void HostNavigate(const std::string& path) {
    bool done = false;
    session_->host_browser()->Navigate(
        Url::Make("http", "www.site.test", 80, path),
        [&](const Status& status, const PageLoadStats&) {
          ASSERT_TRUE(status.ok()) << status;
          done = true;
        });
    loop_.RunUntilCondition([&] { return done; });
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> site_;
  std::unique_ptr<CoBrowsingSession> session_;
};

TEST_F(RobustnessTest, PollingRecoversAfterAgentRestart) {
  StartSession();
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());

  // The agent process "crashes" and comes back.
  session_->agent()->Stop();
  loop_.RunFor(Duration::Seconds(3.0));  // polls fail silently meanwhile
  ASSERT_TRUE(session_->agent()->Start().ok());

  // The next host change reaches the participant without any participant-
  // side intervention: the poll loop reconnects by construction.
  HostNavigate("/two");
  loop_.RunUntilCondition([&] {
    return session_->participant_browser(0)->document()->Title() == "B";
  });
  SUCCEED();
}

TEST_F(RobustnessTest, OriginOutageFailsHostNavigationButKeepsSession) {
  StartSession();
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());

  // Origin dies.
  site_.reset();
  bool done = false;
  Status nav_status;
  session_->host_browser()->Navigate(
      Url::Make("http", "www.site.test", 80, "/two"),
      [&](const Status& status, const PageLoadStats&) {
        nav_status = status;
        done = true;
      });
  loop_.RunUntilCondition([&] { return done; });
  EXPECT_FALSE(nav_status.ok());

  // The co-browsing session itself is intact: the participant still shows
  // the last synchronized page and keeps polling.
  uint64_t polls = session_->agent()->metrics().polls_received;
  loop_.RunFor(Duration::Seconds(2.0));
  EXPECT_GT(session_->agent()->metrics().polls_received, polls);
  EXPECT_EQ(session_->participant_browser(0)->document()->Title(), "A");
}

TEST_F(RobustnessTest, ParticipantCrashDoesNotDisturbOthers) {
  SessionOptions options;
  options.participant_count = 2;
  StartSession(options);
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());

  session_->snippet(1)->AbortWithoutGoodbye();
  HostNavigate("/two");
  loop_.RunUntilCondition([&] {
    return session_->participant_browser(0)->document()->Title() == "B";
  });
  // The crashed participant eventually drops out of the roster.
  loop_.RunFor(Duration::Seconds(12.0));
  auto connected = session_->agent()->ConnectedParticipants();
  EXPECT_EQ(connected.size(), 1u);
}

TEST_F(RobustnessTest, ParticipantRejoinsAfterCrash) {
  StartSession();
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());
  session_->snippet(0)->AbortWithoutGoodbye();
  loop_.RunFor(Duration::Seconds(1.0));

  // Rejoin with the same browser: a fresh initial page, fresh pid, and the
  // current content arrives on the first poll.
  bool rejoined = false;
  session_->snippet(0)->Join(session_->agent()->AgentUrl(), [&](Status status) {
    ASSERT_TRUE(status.ok());
    rejoined = true;
  });
  loop_.RunUntilCondition([&] { return rejoined; });
  loop_.RunUntilCondition([&] {
    return session_->participant_browser(0)->document()->Title() == "A";
  });
  SUCCEED();
}

TEST_F(RobustnessTest, GarbageBytesOnAgentPortAreDropped) {
  StartSession();
  network_.AddHost("attacker", {});
  auto endpoint = network_.Connect("attacker", "host-pc", 3000);
  ASSERT_TRUE(endpoint.ok());
  (*endpoint)->Send(std::string("\x00\xff garbage not-http\r\n\r\n trash", 29));
  loop_.RunFor(Duration::Seconds(1.0));
  // Agent survives and keeps serving the legitimate participant.
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());
  EXPECT_EQ(session_->participant_browser(0)->document()->Title(), "A");
}

TEST_F(RobustnessTest, OversizedPollBodyRejected) {
  StartSession();
  network_.AddHost("attacker", {});
  // Content-Length above the parser's 64 MiB cap: connection dropped, agent
  // unharmed.
  auto endpoint = network_.Connect("attacker", "host-pc", 3000);
  ASSERT_TRUE(endpoint.ok());
  (*endpoint)->Send(
      "POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\nxxxx");
  loop_.RunFor(Duration::Seconds(1.0));
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());
}

TEST_F(RobustnessTest, MalformedActionPayloadIgnored) {
  StartSession();
  network_.AddHost("attacker", {});
  Browser attacker(&loop_, &network_, "attacker");
  bool done = false;
  int code = 0;
  attacker.Fetch(HttpMethod::kPost, Url::Make("http", "host-pc", 3000, "/"),
                 "pid=px&ts=0&actions=" + PercentEncode("type=warpdrive"),
                 "application/x-www-form-urlencoded", [&](FetchResult result) {
                   code = result.response.status_code;
                   done = true;
                 });
  loop_.RunUntilCondition([&] { return done; });
  EXPECT_EQ(code, 400);
  // Host unaffected.
  HostNavigate("/");
  EXPECT_EQ(session_->host_browser()->document()->Title(), "A");
}

TEST_F(RobustnessTest, ActionTargetingRemovedElementIsIgnored) {
  StartSession();
  site_->ServeStatic("/links", "text/html",
                     "<html><body><a href=\"/\" id=\"a1\">1</a>"
                     "<a href=\"/two\" id=\"a2\">2</a></body></html>");
  HostNavigate("/links");
  ASSERT_TRUE(session_->WaitForSync().ok());
  // Participant captures a link, then the host navigates away (indices now
  // refer to a different page) — the stale click must not crash the agent.
  Element* link = session_->participant_browser(0)->document()->ById("a2");
  ASSERT_NE(link, nullptr);
  ASSERT_TRUE(session_->snippet(0)->ClickElement(link).ok());
  HostNavigate("/");  // page with zero anchors
  session_->snippet(0)->PollNow();
  loop_.RunFor(Duration::Seconds(2.0));
  EXPECT_EQ(session_->host_browser()->document()->Title(), "A");
}

TEST_F(RobustnessTest, RapidNavigationSettlesOnLastPage) {
  StartSession();
  // Host fires two navigations back to back; everyone converges on the last.
  bool done = false;
  session_->host_browser()->Navigate(
      Url::Make("http", "www.site.test", 80, "/"),
      [](const Status&, const PageLoadStats&) {});
  session_->host_browser()->Navigate(
      Url::Make("http", "www.site.test", 80, "/two"),
      [&](const Status&, const PageLoadStats&) {
        done = true;
      });
  loop_.RunUntilCondition([&] { return done; });
  loop_.RunUntilCondition([&] {
    return session_->participant_browser(0)->document()->Title() == "B";
  });
  SUCCEED();
}

TEST_F(RobustnessTest, ModeratedSessionFiltersParticipants) {
  // §3.3 per-participant permission: only the privileged participant may
  // navigate; everyone may still move the pointer.
  SessionOptions options;
  options.participant_count = 2;
  StartSession(options);
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());

  // Rebuild the agent with a filter privileging participant p1.
  session_->agent()->Stop();
  AgentConfig config;
  config.poll_interval = Duration::Millis(500);
  std::string privileged = session_->snippet(0)->participant_id();
  config.policies.participant_filter =
      [privileged](const std::string& pid, const UserAction& action) {
        if (action.type == ActionType::kMouseMove) {
          return true;
        }
        return pid == privileged;
      };
  RcbAgent moderated(session_->host_browser(), config);
  ASSERT_TRUE(moderated.Start().ok());

  session_->snippet(1)->RequestNavigate("http://www.site.test/two");
  session_->snippet(1)->PollNow();
  loop_.RunFor(Duration::Seconds(2.0));
  EXPECT_EQ(session_->host_browser()->document()->Title(), "A");  // denied
  EXPECT_GT(moderated.metrics().actions_denied, 0u);

  session_->snippet(0)->RequestNavigate("http://www.site.test/two");
  session_->snippet(0)->PollNow();
  loop_.RunUntilCondition([&] {
    return session_->host_browser()->document()->Title() == "B";  // allowed
  });
  SUCCEED();
}

// ------------------------------------------------------------ chaos matrix --
//
// {LAN, WAN} x {loss, jitter, reset, partition} x {poll, push}: a fault hits
// the host<->participant link mid-session while the host navigates; the
// participant must re-converge to the host snapshot within a bounded number
// of polls (bounded simulated time for the push model).

struct ChaosCase {
  const char* profile_name;
  FaultEvent::Kind kind;
  SyncModel sync;
};

std::string ChaosCaseName(const ::testing::TestParamInfo<ChaosCase>& info) {
  std::string name = info.param.profile_name;
  switch (info.param.kind) {
    case FaultEvent::Kind::kJitter:
      name += "Jitter";
      break;
    case FaultEvent::Kind::kLoss:
      name += "Loss";
      break;
    case FaultEvent::Kind::kReset:
      name += "Reset";
      break;
    case FaultEvent::Kind::kPartition:
      name += "Partition";
      break;
    case FaultEvent::Kind::kBandwidthFlap:
      name += "Flap";
      break;
  }
  name += info.param.sync == SyncModel::kPush ? "Push" : "Poll";
  return name;
}

class ChaosMatrixTest : public ::testing::TestWithParam<ChaosCase> {
 protected:
  ChaosMatrixTest() : network_(&loop_) {
    network_.AddHost("www.site.test", {});
    site_ = std::make_unique<SiteServer>(&loop_, &network_, "www.site.test");
    site_->ServeStatic("/", "text/html",
                       "<html><head><title>A</title></head>"
                       "<body><p id=\"p\">one</p></body></html>");
    site_->ServeStatic("/two", "text/html",
                       "<html><head><title>B</title></head>"
                       "<body><p id=\"p\">two</p></body></html>");
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> site_;
};

TEST_P(ChaosMatrixTest, ReconvergesToHostSnapshotUnderFault) {
  const ChaosCase& chaos = GetParam();
  NetworkProfile profile = std::string(chaos.profile_name) == "Wan"
                               ? WanProfile()
                               : LanProfile();

  SessionOptions options;
  options.profile = profile;
  options.enable_auth = true;
  options.sync_model = chaos.sync;
  options.poll_interval = Duration::Millis(250);
  options.poll_timeout = Duration::Seconds(1.0);
  options.reconnect_after = 2;
  options.backoff_base = Duration::Millis(250);
  options.backoff_max = Duration::Seconds(2.0);
  options.backoff_jitter = Duration::Millis(100);
  options.stream_reconnect = true;
  CoBrowsingSession session(&loop_, &network_, options);
  ASSERT_TRUE(session.Start().ok());

  bool loaded = false;
  session.host_browser()->Navigate(
      Url::Make("http", "www.site.test", 80, "/"),
      [&](const Status& status, const PageLoadStats&) {
        ASSERT_TRUE(status.ok()) << status;
        loaded = true;
      });
  loop_.RunUntilCondition([&] { return loaded; });
  ASSERT_TRUE(session.WaitForSync().ok());

  // Install the fault on the host<->participant link, scaled to the profile,
  // then navigate the host mid-fault.
  FaultInjector injector(&network_, /*seed=*/2024);
  FaultEvent event = ChaosEvent(profile, chaos.kind,
                                loop_.now() + Duration::Millis(100),
                                chaos.kind == FaultEvent::Kind::kPartition
                                    ? Duration::Seconds(5.0)
                                    : Duration::Seconds(15.0));
  injector.Install(FaultPlan{"host-pc", "participant-pc-1", {event}});

  uint64_t polls_before = session.snippet(0)->metrics().polls_sent;
  loop_.Schedule(Duration::Millis(500), [&] {
    session.host_browser()->Navigate(
        Url::Make("http", "www.site.test", 80, "/two"),
        [](const Status&, const PageLoadStats&) {});
  });

  SimTime deadline = loop_.now() + Duration::Seconds(40.0);
  while (loop_.now() < deadline &&
         session.participant_browser(0)->document()->Title() != "B") {
    loop_.RunFor(Duration::Millis(100));
  }
  EXPECT_EQ(session.participant_browser(0)->document()->Title(), "B")
      << "participant did not re-converge under the injected fault";
  if (chaos.sync == SyncModel::kPoll) {
    // Bounded number of polls, not just bounded time: backoff keeps the
    // retry count low even across a 5 s blackout.
    EXPECT_LE(session.snippet(0)->metrics().polls_sent - polls_before, 80u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, ChaosMatrixTest,
    ::testing::Values(
        ChaosCase{"Lan", FaultEvent::Kind::kLoss, SyncModel::kPoll},
        ChaosCase{"Lan", FaultEvent::Kind::kJitter, SyncModel::kPoll},
        ChaosCase{"Lan", FaultEvent::Kind::kReset, SyncModel::kPoll},
        ChaosCase{"Lan", FaultEvent::Kind::kPartition, SyncModel::kPoll},
        ChaosCase{"Lan", FaultEvent::Kind::kLoss, SyncModel::kPush},
        ChaosCase{"Lan", FaultEvent::Kind::kJitter, SyncModel::kPush},
        ChaosCase{"Lan", FaultEvent::Kind::kReset, SyncModel::kPush},
        ChaosCase{"Lan", FaultEvent::Kind::kPartition, SyncModel::kPush},
        ChaosCase{"Wan", FaultEvent::Kind::kLoss, SyncModel::kPoll},
        ChaosCase{"Wan", FaultEvent::Kind::kJitter, SyncModel::kPoll},
        ChaosCase{"Wan", FaultEvent::Kind::kReset, SyncModel::kPoll},
        ChaosCase{"Wan", FaultEvent::Kind::kPartition, SyncModel::kPoll},
        ChaosCase{"Wan", FaultEvent::Kind::kLoss, SyncModel::kPush},
        ChaosCase{"Wan", FaultEvent::Kind::kJitter, SyncModel::kPush},
        ChaosCase{"Wan", FaultEvent::Kind::kReset, SyncModel::kPush},
        ChaosCase{"Wan", FaultEvent::Kind::kPartition, SyncModel::kPush}),
    ChaosCaseName);

// ------------------------------------------- deterministic WAN recovery ----
//
// The acceptance scenario: a WAN session loses the participant link for 5 s
// mid-session while the host navigates. The participant must time out its
// poll, reconnect with a signed resume re-handshake, and re-converge via a
// full-snapshot resync — and two identical runs must produce bit-identical
// deterministic counters.

// The deterministic subset of AgentMetrics / SnippetMetrics (the timing
// fields measure real CPU and differ across runs by construction).
struct RecoveryCounters {
  uint64_t agent_polls_received = 0;
  uint64_t agent_polls_with_content = 0;
  uint64_t agent_auth_failures = 0;
  uint64_t agent_new_connections = 0;
  uint64_t agent_poll_timeouts = 0;
  uint64_t agent_reconnects = 0;
  uint64_t agent_resyncs = 0;
  uint64_t agent_participants_reaped = 0;
  uint64_t snippet_polls_sent = 0;
  uint64_t snippet_poll_timeouts = 0;
  uint64_t snippet_transport_failures = 0;
  uint64_t snippet_reconnects = 0;
  uint64_t snippet_reconnect_failures = 0;
  uint64_t snippet_resyncs = 0;
  uint64_t injector_connects_refused = 0;
  uint64_t injector_messages_held = 0;
  std::string title;
  int64_t end_micros = 0;

  bool operator==(const RecoveryCounters&) const = default;
};

RecoveryCounters RunWanPartitionRecovery() {
  EventLoop loop;
  Network network(&loop);
  network.AddHost("www.site.test", {});
  SiteServer site(&loop, &network, "www.site.test");
  site.ServeStatic("/", "text/html",
                   "<html><head><title>A</title></head>"
                   "<body><p id=\"p\">one</p></body></html>");
  site.ServeStatic("/two", "text/html",
                   "<html><head><title>B</title></head>"
                   "<body><p id=\"p\">two</p></body></html>");

  SessionOptions options;
  options.profile = WanProfile();
  options.enable_auth = true;
  options.poll_interval = Duration::Millis(250);
  options.poll_timeout = Duration::Seconds(1.0);
  options.reconnect_after = 2;
  options.backoff_base = Duration::Millis(250);
  options.backoff_max = Duration::Seconds(2.0);
  options.backoff_jitter = Duration::Millis(100);
  CoBrowsingSession session(&loop, &network, options);
  EXPECT_TRUE(session.Start().ok());

  bool loaded = false;
  session.host_browser()->Navigate(
      Url::Make("http", "www.site.test", 80, "/"),
      [&](const Status& status, const PageLoadStats&) {
        EXPECT_TRUE(status.ok()) << status;
        loaded = true;
      });
  loop.RunUntilCondition([&] { return loaded; });
  EXPECT_TRUE(session.WaitForSync().ok());

  // Drop the participant's link entirely for 5 s, starting 100 ms from now;
  // the host navigates 400 ms into the blackout.
  FaultInjector injector(&network, /*seed=*/1234);
  injector.InjectPartition("participant-pc-1",
                           loop.now() + Duration::Millis(100),
                           Duration::Seconds(5.0), Duration::Millis(200));
  loop.Schedule(Duration::Millis(500), [&] {
    session.host_browser()->Navigate(
        Url::Make("http", "www.site.test", 80, "/two"),
        [](const Status&, const PageLoadStats&) {});
  });

  // Fixed simulated horizon (not run-to-convergence) so both runs execute
  // the identical event schedule.
  loop.RunFor(Duration::Seconds(20.0));

  RecoveryCounters counters;
  const AgentMetrics& agent = session.agent()->metrics();
  counters.agent_polls_received = agent.polls_received;
  counters.agent_polls_with_content = agent.polls_with_content;
  counters.agent_auth_failures = agent.auth_failures;
  counters.agent_new_connections = agent.new_connections;
  counters.agent_poll_timeouts = agent.poll_timeouts;
  counters.agent_reconnects = agent.reconnects;
  counters.agent_resyncs = agent.resyncs;
  counters.agent_participants_reaped = agent.participants_reaped;
  const SnippetMetrics& snippet = session.snippet(0)->metrics();
  counters.snippet_polls_sent = snippet.polls_sent;
  counters.snippet_poll_timeouts = snippet.poll_timeouts;
  counters.snippet_transport_failures = snippet.transport_failures;
  counters.snippet_reconnects = snippet.reconnects;
  counters.snippet_reconnect_failures = snippet.reconnect_failures;
  counters.snippet_resyncs = snippet.resyncs;
  counters.injector_connects_refused = injector.metrics().connects_refused;
  counters.injector_messages_held = injector.metrics().messages_held;
  counters.title = session.participant_browser(0)->document()->Title();
  counters.end_micros = loop.now().micros();
  return counters;
}

TEST(WanPartitionRecoveryTest, DeterministicAcrossRuns) {
  RecoveryCounters first = RunWanPartitionRecovery();
  RecoveryCounters second = RunWanPartitionRecovery();
  EXPECT_TRUE(first == second) << "recovery counters diverged between runs";

  // Re-convergence via full-snapshot resync, asserted exactly.
  EXPECT_EQ(first.title, "B");
  EXPECT_EQ(first.snippet_poll_timeouts, 1u);
  EXPECT_EQ(first.snippet_reconnects, 1u);
  EXPECT_EQ(first.snippet_resyncs, 1u);
  EXPECT_EQ(first.agent_poll_timeouts, 1u);
  EXPECT_EQ(first.agent_reconnects, 1u);
  EXPECT_EQ(first.agent_resyncs, 1u);
  EXPECT_GT(first.snippet_transport_failures, 0u);
  EXPECT_GT(first.injector_connects_refused, 0u);
  EXPECT_GT(first.injector_messages_held, 0u);
  EXPECT_EQ(first.agent_participants_reaped, 0u);
}

// ------------------------------------- chaos + overload determinism -------
//
// The WAN partition-recovery scenario again, but with the overload knobs
// engaged: the agent's poll token bucket is set below the snippet's poll
// rate, so steady-state polls are shed with 429 + Retry-After and the
// snippet folds the hint into its schedule instead of escalating backoff.
// The session must still re-converge after the partition, and every shed
// decision must be bit-reproducible across two runs.

struct OverloadChaosCounters {
  uint64_t agent_polls_received = 0;
  uint64_t agent_polls_with_content = 0;
  uint64_t agent_polls_rate_limited = 0;
  uint64_t agent_participants_rejected = 0;
  uint64_t agent_connections_rejected = 0;
  uint64_t agent_actions_shed = 0;
  uint64_t agent_snapshots_shed = 0;
  uint64_t agent_idle_read_timeouts = 0;
  uint64_t agent_oversized_rejected = 0;
  uint64_t agent_reconnects = 0;
  uint64_t agent_resyncs = 0;
  uint64_t snippet_polls_sent = 0;
  uint64_t snippet_overload_deferrals = 0;
  int64_t snippet_last_retry_after_us = 0;
  uint64_t snippet_poll_timeouts = 0;
  uint64_t snippet_transport_failures = 0;
  uint64_t snippet_reconnects = 0;
  uint64_t snippet_resyncs = 0;
  std::string title;
  int64_t end_micros = 0;

  bool operator==(const OverloadChaosCounters&) const = default;
};

OverloadChaosCounters RunOverloadChaos() {
  EventLoop loop;
  Network network(&loop);
  network.AddHost("www.site.test", {});
  SiteServer site(&loop, &network, "www.site.test");
  site.ServeStatic("/", "text/html",
                   "<html><head><title>A</title></head>"
                   "<body><p id=\"p\">one</p></body></html>");
  site.ServeStatic("/two", "text/html",
                   "<html><head><title>B</title></head>"
                   "<body><p id=\"p\">two</p></body></html>");

  SessionOptions options;
  options.profile = WanProfile();
  options.enable_auth = true;
  options.poll_interval = Duration::Millis(250);
  options.poll_timeout = Duration::Seconds(1.0);
  options.reconnect_after = 2;
  options.backoff_base = Duration::Millis(250);
  options.backoff_max = Duration::Seconds(2.0);
  options.backoff_jitter = Duration::Millis(100);
  // Overload layer on: the bucket refills slower than the 250 ms poll loop,
  // so the agent sheds polls and the snippet has to honor Retry-After.
  options.agent_limits.max_participants = 4;
  options.agent_limits.max_connections = 32;
  options.agent_limits.poll_rate_per_sec = 2.0;
  options.agent_limits.poll_burst = 1.0;
  options.agent_limits.action_rate_per_sec = 50.0;
  options.agent_limits.max_outbox_actions = 64;
  options.agent_limits.max_request_head_bytes = 64 * 1024;
  options.agent_limits.max_request_body_bytes = 1 << 20;
  options.agent_limits.idle_read_timeout = Duration::Seconds(5.0);
  CoBrowsingSession session(&loop, &network, options);
  EXPECT_TRUE(session.Start().ok());

  bool loaded = false;
  session.host_browser()->Navigate(
      Url::Make("http", "www.site.test", 80, "/"),
      [&](const Status& status, const PageLoadStats&) {
        EXPECT_TRUE(status.ok()) << status;
        loaded = true;
      });
  loop.RunUntilCondition([&] { return loaded; });
  EXPECT_TRUE(session.WaitForSync().ok());

  FaultInjector injector(&network, /*seed=*/1234);
  injector.InjectPartition("participant-pc-1",
                           loop.now() + Duration::Millis(100),
                           Duration::Seconds(5.0), Duration::Millis(200));
  loop.Schedule(Duration::Millis(500), [&] {
    session.host_browser()->Navigate(
        Url::Make("http", "www.site.test", 80, "/two"),
        [](const Status&, const PageLoadStats&) {});
  });

  // Fixed simulated horizon so both runs execute the identical schedule.
  loop.RunFor(Duration::Seconds(20.0));

  OverloadChaosCounters counters;
  const AgentMetrics& agent = session.agent()->metrics();
  counters.agent_polls_received = agent.polls_received;
  counters.agent_polls_with_content = agent.polls_with_content;
  counters.agent_polls_rate_limited = agent.polls_rate_limited;
  counters.agent_participants_rejected = agent.participants_rejected;
  counters.agent_connections_rejected = agent.connections_rejected;
  counters.agent_actions_shed = agent.actions_shed;
  counters.agent_snapshots_shed = agent.snapshots_shed;
  counters.agent_idle_read_timeouts = agent.idle_read_timeouts;
  counters.agent_oversized_rejected = agent.oversized_rejected;
  counters.agent_reconnects = agent.reconnects;
  counters.agent_resyncs = agent.resyncs;
  const SnippetMetrics& snippet = session.snippet(0)->metrics();
  counters.snippet_polls_sent = snippet.polls_sent;
  counters.snippet_overload_deferrals = snippet.overload_deferrals;
  counters.snippet_last_retry_after_us = snippet.last_retry_after.micros();
  counters.snippet_poll_timeouts = snippet.poll_timeouts;
  counters.snippet_transport_failures = snippet.transport_failures;
  counters.snippet_reconnects = snippet.reconnects;
  counters.snippet_resyncs = snippet.resyncs;
  counters.title = session.participant_browser(0)->document()->Title();
  counters.end_micros = loop.now().micros();
  return counters;
}

TEST(OverloadChaosTest, DeterministicAcrossRuns) {
  OverloadChaosCounters first = RunOverloadChaos();
  OverloadChaosCounters second = RunOverloadChaos();
  EXPECT_TRUE(first == second) << "overload counters diverged between runs";

  // The overload layer actually engaged...
  EXPECT_GT(first.agent_polls_rate_limited, 0u);
  EXPECT_GT(first.snippet_overload_deferrals, 0u);
  EXPECT_GE(first.snippet_last_retry_after_us,
            Duration::Seconds(1.0).micros());
  // ...without tripping limits the session never approached...
  EXPECT_EQ(first.agent_participants_rejected, 0u);
  EXPECT_EQ(first.agent_connections_rejected, 0u);
  EXPECT_EQ(first.agent_oversized_rejected, 0u);
  EXPECT_EQ(first.agent_idle_read_timeouts, 0u);
  // ...and the session still rode out the partition and re-converged.
  EXPECT_EQ(first.title, "B");
  EXPECT_GT(first.snippet_transport_failures, 0u);
}

// ----------------------------------- chaos + causal tracing determinism ----
//
// The WAN partition-recovery scenario once more, with causal tracing on:
// trace ids must stay unique across the timeout -> reconnect -> resync
// chain, the resync round trip must join across both components' rings, the
// anomaly triggers must fire, and the sim-provenance span stream must be
// bit-identical across two runs (DESIGN.md §11's determinism contract).

struct TracedRecoveryResult {
  std::string sim_jsonl;  // sim-provenance causal span lines, both rings
  uint64_t agent_resync_triggers = 0;
  uint64_t snippet_timeout_triggers = 0;
  bool trace_ids_strictly_increase = true;
  bool timeout_span_traced = false;
  bool post_reconnect_traced = false;
  bool resync_joined_across_components = false;
  std::string title;

  bool operator==(const TracedRecoveryResult&) const = default;
};

TracedRecoveryResult RunTracedWanPartitionRecovery() {
  EventLoop loop;
  Network network(&loop);
  network.AddHost("www.site.test", {});
  SiteServer site(&loop, &network, "www.site.test");
  site.ServeStatic("/", "text/html",
                   "<html><head><title>A</title></head>"
                   "<body><p id=\"p\">one</p></body></html>");
  site.ServeStatic("/two", "text/html",
                   "<html><head><title>B</title></head>"
                   "<body><p id=\"p\">two</p></body></html>");

  SessionOptions options;
  options.profile = WanProfile();
  options.enable_auth = true;
  options.enable_trace = true;
  options.poll_interval = Duration::Millis(250);
  options.poll_timeout = Duration::Seconds(1.0);
  options.reconnect_after = 2;
  options.backoff_base = Duration::Millis(250);
  options.backoff_max = Duration::Seconds(2.0);
  options.backoff_jitter = Duration::Millis(100);
  CoBrowsingSession session(&loop, &network, options);
  EXPECT_TRUE(session.Start().ok());

  bool loaded = false;
  session.host_browser()->Navigate(
      Url::Make("http", "www.site.test", 80, "/"),
      [&](const Status& status, const PageLoadStats&) {
        EXPECT_TRUE(status.ok()) << status;
        loaded = true;
      });
  loop.RunUntilCondition([&] { return loaded; });
  EXPECT_TRUE(session.WaitForSync().ok());

  FaultInjector injector(&network, /*seed=*/1234);
  injector.InjectPartition("participant-pc-1",
                           loop.now() + Duration::Millis(100),
                           Duration::Seconds(5.0), Duration::Millis(200));
  loop.Schedule(Duration::Millis(500), [&] {
    session.host_browser()->Navigate(
        Url::Make("http", "www.site.test", 80, "/two"),
        [](const Status&, const PageLoadStats&) {});
  });
  loop.RunFor(Duration::Seconds(20.0));

  TracedRecoveryResult result;
  result.title = session.participant_browser(0)->document()->Title();
  result.agent_resync_triggers =
      session.agent()->flight_recorder().triggers("resync");
  result.snippet_timeout_triggers =
      session.snippet(0)->flight_recorder().triggers("poll_timeout");

  std::vector<obs::TraceEvent> agent_events =
      session.agent()->trace_log().Events();
  std::vector<obs::TraceEvent> snippet_events =
      session.snippet(0)->trace_log().Events();

  // Poll ids <pid>-<seq> never reset, so root spans (poll_rtt / timeout)
  // must carry strictly increasing seqs straight through the reconnect.
  int64_t last_poll_seq = 0;
  bool saw_timeout_root = false;
  std::string resync_trace_id;
  for (const obs::TraceEvent& event : snippet_events) {
    if (event.name == "snippet.poll_rtt" ||
        event.name == "snippet.poll_timeout") {
      size_t dash = event.trace_id.rfind('-');
      int64_t poll_seq = std::stoll(event.trace_id.substr(dash + 1));
      if (poll_seq <= last_poll_seq) {
        result.trace_ids_strictly_increase = false;
      }
      last_poll_seq = poll_seq;
      if (event.name == "snippet.poll_timeout") {
        result.timeout_span_traced = true;
        saw_timeout_root = true;
      } else if (saw_timeout_root) {
        result.post_reconnect_traced = true;
      }
    }
    if (event.name == "snippet.resync_applied") {
      resync_trace_id = event.trace_id;
    }
  }
  // The full-snapshot resync after the reconnect is one round trip seen by
  // both sides: the snippet's marker and the agent's response span share the
  // trace id.
  if (!resync_trace_id.empty()) {
    for (const obs::TraceEvent& event : agent_events) {
      if (event.trace_id == resync_trace_id &&
          event.name == "agent.response.snapshot") {
        result.resync_joined_across_components = true;
      }
    }
  }

  for (const obs::TraceEvent& event : agent_events) {
    if (event.provenance == obs::Provenance::kSim && !event.trace_id.empty()) {
      result.sim_jsonl += obs::TraceEventJsonLine(event, "agent") + "\n";
    }
  }
  for (const obs::TraceEvent& event : snippet_events) {
    if (event.provenance == obs::Provenance::kSim && !event.trace_id.empty()) {
      result.sim_jsonl += obs::TraceEventJsonLine(event, "snippet-p1") + "\n";
    }
  }
  return result;
}

TEST(TracedChaosTest, TraceIdsSurviveRecoveryAndRunsAreBitIdentical) {
  TracedRecoveryResult first = RunTracedWanPartitionRecovery();
  TracedRecoveryResult second = RunTracedWanPartitionRecovery();
  EXPECT_TRUE(first == second) << "traced recovery diverged between runs";

  EXPECT_EQ(first.title, "B");
  EXPECT_FALSE(first.sim_jsonl.empty());
  // The chain stays causally linked across timeout, reconnect, and resync.
  EXPECT_TRUE(first.trace_ids_strictly_increase);
  EXPECT_TRUE(first.timeout_span_traced);
  EXPECT_TRUE(first.post_reconnect_traced);
  EXPECT_TRUE(first.resync_joined_across_components);
  // And the anomalies registered with both flight recorders.
  EXPECT_EQ(first.agent_resync_triggers, 1u);
  EXPECT_EQ(first.snippet_timeout_triggers, 1u);
}

}  // namespace
}  // namespace rcb
