// Failure-injection tests: agent restarts, origin outages, participant
// crashes, hostile traffic — the session must degrade predictably and the
// poll model must recover by construction (§3.2.3).
#include <gtest/gtest.h>

#include "src/core/session.h"
#include "src/util/escape.h"
#include "src/sites/corpus.h"
#include "src/sites/site_server.h"

namespace rcb {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest() : network_(&loop_) {
    network_.AddHost("www.site.test", {});
    site_ = std::make_unique<SiteServer>(&loop_, &network_, "www.site.test");
    site_->ServeStatic("/", "text/html",
                       "<html><head><title>A</title></head>"
                       "<body><p id=\"p\">one</p></body></html>");
    site_->ServeStatic("/two", "text/html",
                       "<html><head><title>B</title></head>"
                       "<body><p id=\"p\">two</p></body></html>");
  }

  void StartSession(SessionOptions options = {}) {
    options.poll_interval = Duration::Millis(500);
    session_ = std::make_unique<CoBrowsingSession>(&loop_, &network_, options);
    ASSERT_TRUE(session_->Start().ok());
  }

  void HostNavigate(const std::string& path) {
    bool done = false;
    session_->host_browser()->Navigate(
        Url::Make("http", "www.site.test", 80, path),
        [&](const Status& status, const PageLoadStats&) {
          ASSERT_TRUE(status.ok()) << status;
          done = true;
        });
    loop_.RunUntilCondition([&] { return done; });
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> site_;
  std::unique_ptr<CoBrowsingSession> session_;
};

TEST_F(RobustnessTest, PollingRecoversAfterAgentRestart) {
  StartSession();
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());

  // The agent process "crashes" and comes back.
  session_->agent()->Stop();
  loop_.RunFor(Duration::Seconds(3.0));  // polls fail silently meanwhile
  ASSERT_TRUE(session_->agent()->Start().ok());

  // The next host change reaches the participant without any participant-
  // side intervention: the poll loop reconnects by construction.
  HostNavigate("/two");
  loop_.RunUntilCondition([&] {
    return session_->participant_browser(0)->document()->Title() == "B";
  });
  SUCCEED();
}

TEST_F(RobustnessTest, OriginOutageFailsHostNavigationButKeepsSession) {
  StartSession();
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());

  // Origin dies.
  site_.reset();
  bool done = false;
  Status nav_status;
  session_->host_browser()->Navigate(
      Url::Make("http", "www.site.test", 80, "/two"),
      [&](const Status& status, const PageLoadStats&) {
        nav_status = status;
        done = true;
      });
  loop_.RunUntilCondition([&] { return done; });
  EXPECT_FALSE(nav_status.ok());

  // The co-browsing session itself is intact: the participant still shows
  // the last synchronized page and keeps polling.
  uint64_t polls = session_->agent()->metrics().polls_received;
  loop_.RunFor(Duration::Seconds(2.0));
  EXPECT_GT(session_->agent()->metrics().polls_received, polls);
  EXPECT_EQ(session_->participant_browser(0)->document()->Title(), "A");
}

TEST_F(RobustnessTest, ParticipantCrashDoesNotDisturbOthers) {
  SessionOptions options;
  options.participant_count = 2;
  StartSession(options);
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());

  session_->snippet(1)->AbortWithoutGoodbye();
  HostNavigate("/two");
  loop_.RunUntilCondition([&] {
    return session_->participant_browser(0)->document()->Title() == "B";
  });
  // The crashed participant eventually drops out of the roster.
  loop_.RunFor(Duration::Seconds(12.0));
  auto connected = session_->agent()->ConnectedParticipants();
  EXPECT_EQ(connected.size(), 1u);
}

TEST_F(RobustnessTest, ParticipantRejoinsAfterCrash) {
  StartSession();
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());
  session_->snippet(0)->AbortWithoutGoodbye();
  loop_.RunFor(Duration::Seconds(1.0));

  // Rejoin with the same browser: a fresh initial page, fresh pid, and the
  // current content arrives on the first poll.
  bool rejoined = false;
  session_->snippet(0)->Join(session_->agent()->AgentUrl(), [&](Status status) {
    ASSERT_TRUE(status.ok());
    rejoined = true;
  });
  loop_.RunUntilCondition([&] { return rejoined; });
  loop_.RunUntilCondition([&] {
    return session_->participant_browser(0)->document()->Title() == "A";
  });
  SUCCEED();
}

TEST_F(RobustnessTest, GarbageBytesOnAgentPortAreDropped) {
  StartSession();
  network_.AddHost("attacker", {});
  auto endpoint = network_.Connect("attacker", "host-pc", 3000);
  ASSERT_TRUE(endpoint.ok());
  (*endpoint)->Send(std::string("\x00\xff garbage not-http\r\n\r\n trash", 34));
  loop_.RunFor(Duration::Seconds(1.0));
  // Agent survives and keeps serving the legitimate participant.
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());
  EXPECT_EQ(session_->participant_browser(0)->document()->Title(), "A");
}

TEST_F(RobustnessTest, OversizedPollBodyRejected) {
  StartSession();
  network_.AddHost("attacker", {});
  // Content-Length above the parser's 64 MiB cap: connection dropped, agent
  // unharmed.
  auto endpoint = network_.Connect("attacker", "host-pc", 3000);
  ASSERT_TRUE(endpoint.ok());
  (*endpoint)->Send(
      "POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\nxxxx");
  loop_.RunFor(Duration::Seconds(1.0));
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());
}

TEST_F(RobustnessTest, MalformedActionPayloadIgnored) {
  StartSession();
  network_.AddHost("attacker", {});
  Browser attacker(&loop_, &network_, "attacker");
  bool done = false;
  int code = 0;
  attacker.Fetch(HttpMethod::kPost, Url::Make("http", "host-pc", 3000, "/"),
                 "pid=px&ts=0&actions=" + PercentEncode("type=warpdrive"),
                 "application/x-www-form-urlencoded", [&](FetchResult result) {
                   code = result.response.status_code;
                   done = true;
                 });
  loop_.RunUntilCondition([&] { return done; });
  EXPECT_EQ(code, 400);
  // Host unaffected.
  HostNavigate("/");
  EXPECT_EQ(session_->host_browser()->document()->Title(), "A");
}

TEST_F(RobustnessTest, ActionTargetingRemovedElementIsIgnored) {
  StartSession();
  site_->ServeStatic("/links", "text/html",
                     "<html><body><a href=\"/\" id=\"a1\">1</a>"
                     "<a href=\"/two\" id=\"a2\">2</a></body></html>");
  HostNavigate("/links");
  ASSERT_TRUE(session_->WaitForSync().ok());
  // Participant captures a link, then the host navigates away (indices now
  // refer to a different page) — the stale click must not crash the agent.
  Element* link = session_->participant_browser(0)->document()->ById("a2");
  ASSERT_NE(link, nullptr);
  ASSERT_TRUE(session_->snippet(0)->ClickElement(link).ok());
  HostNavigate("/");  // page with zero anchors
  session_->snippet(0)->PollNow();
  loop_.RunFor(Duration::Seconds(2.0));
  EXPECT_EQ(session_->host_browser()->document()->Title(), "A");
}

TEST_F(RobustnessTest, RapidNavigationSettlesOnLastPage) {
  StartSession();
  // Host fires two navigations back to back; everyone converges on the last.
  bool done = false;
  session_->host_browser()->Navigate(
      Url::Make("http", "www.site.test", 80, "/"),
      [](const Status&, const PageLoadStats&) {});
  session_->host_browser()->Navigate(
      Url::Make("http", "www.site.test", 80, "/two"),
      [&](const Status&, const PageLoadStats&) {
        done = true;
      });
  loop_.RunUntilCondition([&] { return done; });
  loop_.RunUntilCondition([&] {
    return session_->participant_browser(0)->document()->Title() == "B";
  });
  SUCCEED();
}

TEST_F(RobustnessTest, ModeratedSessionFiltersParticipants) {
  // §3.3 per-participant permission: only the privileged participant may
  // navigate; everyone may still move the pointer.
  SessionOptions options;
  options.participant_count = 2;
  StartSession(options);
  HostNavigate("/");
  ASSERT_TRUE(session_->WaitForSync().ok());

  // Rebuild the agent with a filter privileging participant p1.
  session_->agent()->Stop();
  AgentConfig config;
  config.poll_interval = Duration::Millis(500);
  std::string privileged = session_->snippet(0)->participant_id();
  config.policies.participant_filter =
      [privileged](const std::string& pid, const UserAction& action) {
        if (action.type == ActionType::kMouseMove) {
          return true;
        }
        return pid == privileged;
      };
  RcbAgent moderated(session_->host_browser(), config);
  ASSERT_TRUE(moderated.Start().ok());

  session_->snippet(1)->RequestNavigate("http://www.site.test/two");
  session_->snippet(1)->PollNow();
  loop_.RunFor(Duration::Seconds(2.0));
  EXPECT_EQ(session_->host_browser()->document()->Title(), "A");  // denied
  EXPECT_GT(moderated.metrics().actions_denied, 0u);

  session_->snippet(0)->RequestNavigate("http://www.site.test/two");
  session_->snippet(0)->PollNow();
  loop_.RunUntilCondition([&] {
    return session_->host_browser()->document()->Title() == "B";  // allowed
  });
  SUCCEED();
}

}  // namespace
}  // namespace rcb
