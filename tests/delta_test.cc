// Delta-snapshot subsystem tests: patch codec round trips, keyed tree diff,
// the apply(diff(A,B), A) == B property over the Table 1 corpus with random
// DOM mutations, the integrity-checked applier's freshness/digest gates, and
// end-to-end sessions where patches replace full snapshots on the wire.
#include <gtest/gtest.h>

#include "src/core/session.h"
#include "src/delta/patch_applier.h"
#include "src/delta/patch_codec.h"
#include "src/delta/tree_diff.h"
#include "src/html/parser.h"
#include "src/html/serializer.h"
#include "src/net/profiles.h"
#include "src/sites/corpus.h"
#include "src/util/rand.h"

namespace rcb {
namespace {

std::unique_ptr<Element> CanonicalFromHtml(std::string_view html) {
  std::unique_ptr<Document> document = ParseDocument(html);
  std::unique_ptr<Element> canonical = delta::CanonicalizeDocument(*document);
  EXPECT_NE(canonical, nullptr);
  return canonical;
}

delta::Patch MakePatch(const Element& base, const Element& target,
                       int64_t base_time, int64_t target_time) {
  delta::Patch patch;
  patch.base_doc_time_ms = base_time;
  patch.target_doc_time_ms = target_time;
  patch.base_digest = delta::TreeDigest(base);
  patch.target_digest = delta::TreeDigest(target);
  patch.ops = delta::DiffTrees(base, target);
  return patch;
}

// ---- Patch codec ---------------------------------------------------------

TEST(PatchCodecTest, OpsRoundTripAllTypes) {
  std::vector<delta::PatchOp> ops;
  delta::PatchOp op;
  op.type = delta::PatchOpType::kInsert;
  op.path = {1, 0};
  op.index = 2;
  op.html = "<p class=\"x&y\">a=b&amp;c\nnewline</p>";
  ops.push_back(op);
  op = {};
  op.type = delta::PatchOpType::kRemove;
  op.path = {1};
  op.index = 5;
  ops.push_back(op);
  op = {};
  op.type = delta::PatchOpType::kMove;
  op.path = {};
  op.from = 3;
  op.to = 1;
  ops.push_back(op);
  op = {};
  op.type = delta::PatchOpType::kReplace;
  op.path = {0, 2};
  op.html = "<span>r</span>";
  ops.push_back(op);
  op = {};
  op.type = delta::PatchOpType::kSetAttr;
  op.path = {1, 4};
  op.name = "data-rcb-id";
  op.value = "value with = & and % signs";
  ops.push_back(op);
  op = {};
  op.type = delta::PatchOpType::kRemoveAttr;
  op.path = {1, 4};
  op.name = "onclick";
  ops.push_back(op);
  op = {};
  op.type = delta::PatchOpType::kSetText;
  op.path = {1, 0, 0};
  op.value = "new text\nwith newline";
  ops.push_back(op);

  auto decoded = delta::DecodePatchOps(delta::EncodePatchOps(ops));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, ops);
}

TEST(PatchCodecTest, PatchXmlRoundTripsWithUserActions) {
  delta::PatchEnvelope envelope;
  envelope.patch.base_doc_time_ms = 1111;
  envelope.patch.target_doc_time_ms = 2222;
  envelope.patch.base_digest = std::string(64, 'a');
  envelope.patch.target_digest = std::string(64, 'b');
  delta::PatchOp op;
  op.type = delta::PatchOpType::kSetText;
  op.path = {1, 0};
  op.value = "hello ]]> world";
  envelope.patch.ops.push_back(op);
  UserAction action;
  action.type = ActionType::kFormFill;
  action.target = 3;
  action.fields = {{"q", "macbook air"}};
  action.origin = "p2";
  envelope.user_actions.push_back(action);

  std::string xml = delta::SerializePatchXml(envelope);
  EXPECT_TRUE(delta::LooksLikePatchXml(xml));
  auto parsed = delta::ParsePatchXml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, envelope);
}

TEST(PatchCodecTest, SnapshotXmlIsNotMistakenForPatch) {
  Snapshot snapshot;
  snapshot.doc_time_ms = 7;
  snapshot.has_content = true;
  snapshot.body.emplace();
  snapshot.body->tag = "body";
  snapshot.body->inner_html = "<p>x</p>";
  EXPECT_FALSE(delta::LooksLikePatchXml(SerializeSnapshotXml(snapshot)));
}

TEST(PatchCodecTest, DecodeRejectsMalformedOps) {
  // Unknown op name.
  EXPECT_FALSE(delta::DecodePatchOps("op=explode&path=0").ok());
  // Move with from < to (diff never emits forward moves).
  EXPECT_FALSE(delta::DecodePatchOps("op=move&from=1&to=2").ok());
  // Insert without a payload.
  EXPECT_FALSE(delta::DecodePatchOps("op=insert&path=0&index=0").ok());
  // Attribute name outside the allowed charset.
  EXPECT_FALSE(
      delta::DecodePatchOps("op=setattr&path=0&name=a%20b&value=x").ok());
  // Out-of-range index.
  EXPECT_FALSE(delta::DecodePatchOps("op=remove&path=0&index=99999999").ok());
  // Path deeper than the cap.
  std::string deep = "op=remove&index=0&path=0";
  for (int i = 0; i < 600; ++i) {
    deep += ".0";
  }
  EXPECT_FALSE(delta::DecodePatchOps(deep).ok());
}

TEST(PatchCodecTest, ParseRejectsBadHeaders) {
  delta::PatchEnvelope envelope;
  envelope.patch.base_doc_time_ms = 1;
  envelope.patch.target_doc_time_ms = 2;
  envelope.patch.base_digest = std::string(64, 'c');
  envelope.patch.target_digest = std::string(64, 'd');
  std::string good = delta::SerializePatchXml(envelope);

  // Wrong version.
  std::string bad = good;
  bad.replace(bad.find("<version>1</version>"), 20, "<version>9</version>");
  EXPECT_FALSE(delta::ParsePatchXml(bad).ok());
  // Truncated digest.
  bad = good;
  bad.replace(bad.find(std::string(64, 'c')), 64, "c0ffee");
  EXPECT_FALSE(delta::ParsePatchXml(bad).ok());
  // Not XML at all.
  EXPECT_FALSE(delta::ParsePatchXml("op=insert").ok());
}

// ---- Tree diff -----------------------------------------------------------

TEST(TreeDiffTest, IdenticalTreesDiffEmpty) {
  auto a = CanonicalFromHtml(
      "<html><head><title>t</title></head><body><p>x</p></body></html>");
  auto b = a->Clone();
  EXPECT_TRUE(delta::DiffTrees(*a, *b->AsElement()).empty());
}

TEST(TreeDiffTest, CoFillIsASingleSetAttrOp) {
  // The Fig. 3 event-rewriting pass tags interactive elements with
  // data-rcb-id; a co-filled field must diff to one set-attr, not churn.
  auto base = CanonicalFromHtml(
      "<html><body><form data-rcb-id=\"0\">"
      "<input data-rcb-id=\"1\" name=\"q\" value=\"\">"
      "</form></body></html>");
  auto target_owned = base->Clone();
  Element* target = target_owned->AsElement();
  target->FindFirst("input")->SetAttribute("value", "macbook air");

  std::vector<delta::PatchOp> ops = delta::DiffTrees(*base, *target);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].type, delta::PatchOpType::kSetAttr);
  EXPECT_EQ(ops[0].name, "value");
  EXPECT_EQ(ops[0].value, "macbook air");
}

TEST(TreeDiffTest, TextEditIsASingleSetTextOp) {
  auto base = CanonicalFromHtml("<html><body><p>before</p></body></html>");
  auto target_owned = base->Clone();
  Element* target = target_owned->AsElement();
  Element* p = target->FindFirst("p");
  p->RemoveAllChildren();
  p->AppendChild(MakeText("after"));

  std::vector<delta::PatchOp> ops = delta::DiffTrees(*base, *target);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].type, delta::PatchOpType::kSetText);
  EXPECT_EQ(ops[0].value, "after");
}

// Handcrafted structural edits: the patched base must serialize identically
// to the target, and the op stream must survive the wire codec.
void ExpectDiffApplyRoundTrip(const Element& base, const Element& target) {
  std::vector<delta::PatchOp> ops = delta::DiffTrees(base, target);
  auto decoded = delta::DecodePatchOps(delta::EncodePatchOps(ops));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, ops);

  std::unique_ptr<Node> patched_owned = base.Clone();
  Element* patched = patched_owned->AsElement();
  Status status = delta::ApplyPatchOps(patched, ops);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(SerializeNode(*patched), SerializeNode(target));
  EXPECT_EQ(delta::TreeDigest(*patched), delta::TreeDigest(target));
}

TEST(TreeDiffTest, StructuralEditsRoundTrip) {
  auto base = CanonicalFromHtml(
      "<html><head><title>t</title></head>"
      "<body><p id=\"a\">one</p><p id=\"b\">two</p><div><span>deep</span>"
      "</div></body></html>");

  {  // Insertion at the front and the back.
    auto t = base->Clone();
    Element* body = t->AsElement()->FindFirst("body");
    body->InsertBefore(MakeElement("h1"), body->first_child());
    body->AppendChild(MakeElement("footer"));
    ExpectDiffApplyRoundTrip(*base, *t->AsElement());
  }
  {  // Removal.
    auto t = base->Clone();
    Element* body = t->AsElement()->FindFirst("body");
    body->RemoveChild(body->child_at(1));
    ExpectDiffApplyRoundTrip(*base, *t->AsElement());
  }
  {  // Reorder (keyed move).
    auto t = base->Clone();
    Element* body = t->AsElement()->FindFirst("body");
    std::unique_ptr<Node> last = body->RemoveChild(body->last_child());
    body->InsertBefore(std::move(last), body->first_child());
    ExpectDiffApplyRoundTrip(*base, *t->AsElement());
  }
  {  // Tag change forces a replace.
    auto t = base->Clone();
    Element* body = t->AsElement()->FindFirst("body");
    auto article = MakeElement("article");
    article->AppendChild(MakeText("one"));
    body->RemoveChild(body->first_child());
    body->InsertBefore(std::move(article), body->first_child());
    ExpectDiffApplyRoundTrip(*base, *t->AsElement());
  }
  {  // Nested edit under an unchanged parent chain.
    auto t = base->Clone();
    Element* span = t->AsElement()->FindFirst("span");
    span->SetAttribute("class", "hot");
    span->RemoveAllChildren();
    span->AppendChild(MakeText("deeper"));
    ExpectDiffApplyRoundTrip(*base, *t->AsElement());
  }
  {  // Attribute removal.
    auto t = base->Clone();
    t->AsElement()->FindFirst("p")->RemoveAttribute("id");
    ExpectDiffApplyRoundTrip(*base, *t->AsElement());
  }
}

TEST(TreeDiffTest, AttributeReorderStillConverges) {
  // SetAttribute keeps the position of existing names, so a reordered
  // attribute list cannot be reached by set/remove-attr ops; the differ must
  // fall back to replacing the element — and still converge.
  auto base = CanonicalFromHtml(
      "<html><body><input data-rcb-id=\"0\" name=\"q\" value=\"x\">"
      "</body></html>");
  auto target = CanonicalFromHtml(
      "<html><body><input value=\"x\" name=\"q\" data-rcb-id=\"0\">"
      "</body></html>");
  ExpectDiffApplyRoundTrip(*base, *target);
}

// ---- Randomized corpus property: apply(diff(A, B), A) == B ---------------

void CollectTexts(Node* node, std::vector<Text*>* out) {
  for (const auto& child : node->children()) {
    if (child->type() == NodeType::kText) {
      out->push_back(static_cast<Text*>(child.get()));
    }
    CollectTexts(child.get(), out);
  }
}

void MutateTreeOnce(Rng* rng, Element* root) {
  std::vector<Element*> elements{root};
  root->ForEachElement([&](Element* element) {
    elements.push_back(element);
    return true;
  });
  Element* victim = elements[rng->NextBelow(elements.size())];
  switch (rng->NextBelow(6)) {
    case 0:  // set or add an attribute
      if (victim != root) {
        victim->SetAttribute("data-m" + std::to_string(rng->NextBelow(3)),
                             "v" + std::to_string(rng->NextBelow(100)));
      }
      break;
    case 1:  // remove an attribute (possibly the identity key)
      if (victim != root && !victim->attributes().empty()) {
        victim->RemoveAttribute(
            victim->attributes()[rng->NextBelow(victim->attributes().size())]
                .first);
      }
      break;
    case 2: {  // edit a text node
      std::vector<Text*> texts;
      CollectTexts(root, &texts);
      if (!texts.empty()) {
        texts[rng->NextBelow(texts.size())]->set_data(
            "edited " + std::to_string(rng->NextBelow(1000)));
      }
      break;
    }
    case 3: {  // insert a small subtree at a random position
      auto span = MakeElement("span");
      span->SetAttribute("class", "m" + std::to_string(rng->NextBelow(10)));
      span->AppendChild(MakeText("ins" + std::to_string(rng->NextBelow(100))));
      size_t slot = rng->NextBelow(victim->child_count() + 1);
      victim->InsertBefore(std::move(span), slot == victim->child_count()
                                                ? nullptr
                                                : victim->child_at(slot));
      break;
    }
    case 4:  // remove a random child
      if (victim->child_count() > 0) {
        victim->RemoveChild(
            victim->child_at(rng->NextBelow(victim->child_count())));
      }
      break;
    case 5:  // move a child to another slot
      if (victim->child_count() >= 2) {
        size_t from = rng->NextBelow(victim->child_count());
        std::unique_ptr<Node> moved = victim->RemoveChild(victim->child_at(from));
        size_t slot = rng->NextBelow(victim->child_count() + 1);
        victim->InsertBefore(std::move(moved), slot == victim->child_count()
                                                   ? nullptr
                                                   : victim->child_at(slot));
      }
      break;
  }
}

class CorpusDiffPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorpusDiffPropertyTest, RandomMutationsRoundTripOverTable1) {
  Rng rng(GetParam());
  for (const SiteSpec& spec : Table1Sites()) {
    GeneratedSite site = GenerateHomepage(spec);
    std::unique_ptr<Document> document = ParseDocument(site.html);
    std::unique_ptr<Element> base = delta::CanonicalizeDocument(*document);
    ASSERT_NE(base, nullptr) << spec.name;

    std::unique_ptr<Node> target_owned = base->Clone();
    Element* target = target_owned->AsElement();
    for (int i = 0; i < 8; ++i) {
      MutateTreeOnce(&rng, target);
    }
    delta::NormalizeTextNodes(target);

    std::vector<delta::PatchOp> ops = delta::DiffTrees(*base, *target);
    auto decoded = delta::DecodePatchOps(delta::EncodePatchOps(ops));
    ASSERT_TRUE(decoded.ok()) << spec.name << ": " << decoded.status();
    ASSERT_EQ(*decoded, ops) << spec.name;

    std::unique_ptr<Node> patched_owned = base->Clone();
    Element* patched = patched_owned->AsElement();
    Status status = delta::ApplyPatchOps(patched, ops);
    ASSERT_TRUE(status.ok()) << spec.name << ": " << status;
    ASSERT_EQ(SerializeNode(*patched), SerializeNode(*target)) << spec.name;
    ASSERT_EQ(delta::TreeDigest(*patched), delta::TreeDigest(*target))
        << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusDiffPropertyTest,
                         ::testing::Range<uint64_t>(1, 5));

// ---- Integrity-checked applier -------------------------------------------

constexpr std::string_view kApplierPage =
    "<html><head><title>A</title></head>"
    "<body><p id=\"p\">v1</p><div id=\"d\">stable</div></body></html>";

TEST(PatchApplierTest, FreshnessAndIntegrityGates) {
  std::unique_ptr<Document> document = ParseDocument(kApplierPage);
  std::unique_ptr<Element> base = delta::CanonicalizeDocument(*document);
  auto target_owned = base->Clone();
  Element* target = target_owned->AsElement();
  Element* p = target->FindFirst("p");
  p->RemoveAllChildren();
  p->AppendChild(MakeText("v2"));

  // Stale target (not newer than current): ignored, no resync.
  delta::Patch stale = MakePatch(*base, *target, 500, 1000);
  EXPECT_EQ(delta::ApplyPatchToDocument(document.get(), 1000, stale),
            delta::ApplyResult::kStaleIgnored);
  EXPECT_FALSE(delta::NeedsResync(delta::ApplyResult::kStaleIgnored));

  // Base version mismatch: out-of-order patch must never apply.
  delta::Patch wrong_base = MakePatch(*base, *target, 900, 2000);
  EXPECT_EQ(delta::ApplyPatchToDocument(document.get(), 1000, wrong_base),
            delta::ApplyResult::kBaseTimeMismatch);
  EXPECT_TRUE(delta::NeedsResync(delta::ApplyResult::kBaseTimeMismatch));

  // Base digest mismatch: the live document drifted from what the patch
  // expects.
  delta::Patch bad_base_digest = MakePatch(*base, *target, 1000, 2000);
  bad_base_digest.base_digest = std::string(64, '0');
  EXPECT_EQ(delta::ApplyPatchToDocument(document.get(), 1000, bad_base_digest),
            delta::ApplyResult::kBaseDigestMismatch);

  // Target digest mismatch: ops applied cleanly but the result is not what
  // the agent promised — never commit.
  delta::Patch bad_target_digest = MakePatch(*base, *target, 1000, 2000);
  bad_target_digest.target_digest = std::string(64, '0');
  EXPECT_EQ(
      delta::ApplyPatchToDocument(document.get(), 1000, bad_target_digest),
      delta::ApplyResult::kTargetDigestMismatch);

  // Structurally invalid op list.
  delta::Patch broken = MakePatch(*base, *target, 1000, 2000);
  delta::PatchOp bogus;
  bogus.type = delta::PatchOpType::kRemove;
  bogus.path = {99};
  broken.ops.push_back(bogus);
  EXPECT_EQ(delta::ApplyPatchToDocument(document.get(), 1000, broken),
            delta::ApplyResult::kApplyError);

  // None of the rejected patches touched the live document.
  EXPECT_EQ(document->ById("p")->TextContent(), "v1");

  // The genuine patch commits and the live document digests to the target.
  delta::Patch good = MakePatch(*base, *target, 1000, 2000);
  EXPECT_EQ(delta::ApplyPatchToDocument(document.get(), 1000, good),
            delta::ApplyResult::kApplied);
  EXPECT_EQ(document->ById("p")->TextContent(), "v2");
  std::unique_ptr<Element> live = delta::CanonicalizeDocument(*document);
  EXPECT_EQ(delta::TreeDigest(*live), good.target_digest);
}

TEST(PatchApplierTest, OutOfOrderOverlappingPatches) {
  std::unique_ptr<Document> document = ParseDocument(kApplierPage);
  std::unique_ptr<Element> v1 = delta::CanonicalizeDocument(*document);

  auto v2_owned = v1->Clone();
  Element* v2 = v2_owned->AsElement();
  Element* p = v2->FindFirst("p");
  p->RemoveAllChildren();
  p->AppendChild(MakeText("second"));

  auto v3_owned = v1->Clone();
  Element* v3 = v3_owned->AsElement();
  v3->FindFirst("div")->SetAttribute("class", "third");

  delta::Patch p12 = MakePatch(*v1, *v2, 1000, 2000);
  delta::Patch p13 = MakePatch(*v1, *v3, 1000, 3000);

  // Normal delivery of v1 -> v2.
  ASSERT_EQ(delta::ApplyPatchToDocument(document.get(), 1000, p12),
            delta::ApplyResult::kApplied);
  // Duplicate delivery: stale, ignored, no resync.
  EXPECT_EQ(delta::ApplyPatchToDocument(document.get(), 2000, p12),
            delta::ApplyResult::kStaleIgnored);
  // Overlapping patch built from the superseded base: newer target, but the
  // base no longer matches — it must be refused, not merged.
  EXPECT_EQ(delta::ApplyPatchToDocument(document.get(), 2000, p13),
            delta::ApplyResult::kBaseTimeMismatch);
  EXPECT_EQ(document->ById("p")->TextContent(), "second");
  EXPECT_EQ(document->ById("d")->AttrOr("class"), "");
}

TEST(PatchApplierTest, CommitPreservesSnippetBootstrapScript) {
  std::unique_ptr<Document> document = ParseDocument(
      "<html><head><script id=\"rcb-snippet\">/*boot*/</script>"
      "<title>A</title></head><body><p id=\"p\">v1</p></body></html>");
  std::unique_ptr<Element> base = delta::CanonicalizeDocument(*document);
  auto target_owned = base->Clone();
  Element* target = target_owned->AsElement();
  Element* p = target->FindFirst("p");
  p->RemoveAllChildren();
  p->AppendChild(MakeText("v2"));

  ASSERT_EQ(delta::ApplyPatchToDocument(document.get(), 1000,
                                        MakePatch(*base, *target, 1000, 2000)),
            delta::ApplyResult::kApplied);
  // The Fig. 5 contract: the snippet survives every content apply.
  Element* script = document->ById("rcb-snippet");
  ASSERT_NE(script, nullptr);
  EXPECT_EQ(script->parent(), document->head());
  EXPECT_EQ(document->ById("p")->TextContent(), "v2");
}

// ---- End-to-end sessions -------------------------------------------------

std::string DeltaTestPage() {
  std::string page =
      "<html><head><title>Delta</title></head><body>"
      "<p id=\"status\">v1</p>"
      "<form id=\"f\" action=\"/s\" method=\"post\">"
      "<input name=\"q\" value=\"\"></form>";
  for (int i = 0; i < 40; ++i) {
    page += "<p>filler paragraph " + std::to_string(i) +
            " keeps the snapshot large enough that a one-op patch clears the "
            "size cutoff</p>";
  }
  page += "</body></html>";
  return page;
}

class DeltaSessionTest : public ::testing::Test {
 protected:
  DeltaSessionTest() : network_(&loop_) {}

  void StartSession(SessionOptions options) {
    network_.AddHost("delta.test",
                     {.uplink_bps = 10'000'000, .downlink_bps = 0});
    site_ = std::make_unique<SiteServer>(&loop_, &network_, "delta.test");
    site_->ServeStatic("/", "text/html", DeltaTestPage());
    session_ = std::make_unique<CoBrowsingSession>(&loop_, &network_, options);
    ASSERT_TRUE(session_->Start().ok());
    auto stats =
        session_->CoNavigate(Url::Make("http", "delta.test", 80, "/"));
    ASSERT_TRUE(stats.ok()) << stats.status();
  }

  void HostSetStatus(const std::string& text) {
    session_->host_browser()->MutateDocument([&](Document* document) {
      Element* status = document->ById("status");
      status->RemoveAllChildren();
      status->AppendChild(MakeText(text));
    });
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<SiteServer> site_;
  std::unique_ptr<CoBrowsingSession> session_;
};

TEST_F(DeltaSessionTest, SmallUpdatesTravelAsPatches) {
  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Millis(200);
  options.enable_delta = true;
  StartSession(options);

  for (int round = 2; round <= 4; ++round) {
    HostSetStatus("v" + std::to_string(round));
    ASSERT_TRUE(session_->WaitForSync().ok());
    EXPECT_EQ(session_->participant_browser(0)->document()->ById("status")
                  ->TextContent(),
              "v" + std::to_string(round));
  }
  const AgentMetrics& agent = session_->agent()->metrics();
  const SnippetMetrics& snippet = session_->snippet(0)->metrics();
  EXPECT_EQ(agent.patches_served, 3u);
  EXPECT_EQ(snippet.patches_applied, 3u);
  EXPECT_EQ(snippet.patch_digest_mismatches, 0u);
  EXPECT_EQ(snippet.patch_apply_errors, 0u);
  // The point of the subsystem: patches are much smaller than the snapshots
  // they replace.
  EXPECT_LT(agent.patch_bytes_sent * 3, agent.patch_snapshot_bytes);
}

TEST_F(DeltaSessionTest, TamperedParticipantDomForcesFullResync) {
  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Millis(200);
  options.enable_delta = true;
  StartSession(options);

  // The participant's live DOM drifts (anything outside the protocol: a
  // browser extension, a script, a bug). The next patch's base digest no
  // longer matches, so it must be refused and a full snapshot requested.
  session_->participant_browser(0)->MutateDocument([](Document* document) {
    document->body()->AppendChild(MakeText("local drift"));
  });
  HostSetStatus("v2");
  ASSERT_TRUE(session_->WaitForSync().ok());

  const SnippetMetrics& snippet = session_->snippet(0)->metrics();
  EXPECT_GE(snippet.patch_digest_mismatches, 1u);
  EXPECT_GE(snippet.resyncs, 1u);
  EXPECT_EQ(snippet.patch_apply_errors, 0u);
  // Converged via the fallback: the drift is gone, the content is current.
  EXPECT_EQ(session_->participant_browser(0)->document()->ById("status")
                ->TextContent(),
            "v2");
}

TEST_F(DeltaSessionTest, CoFillPatchesPeersAndResyncsTheFiller) {
  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Millis(200);
  options.participant_count = 2;
  options.enable_delta = true;
  StartSession(options);

  // Participant 0 co-fills; the local echo makes their DOM diverge from the
  // acked base, so they deterministically resync, while participant 1's
  // clean DOM receives the change as a patch.
  Browser* filler = session_->participant_browser(0);
  Element* form = filler->document()->ById("f");
  ASSERT_NE(form, nullptr);
  ASSERT_TRUE(session_->snippet(0)->FillFormField(form, "q", "hello").ok());
  session_->snippet(0)->PollNow();

  auto field_value = [](Browser* browser) {
    Element* form = browser->document()->ById("f");
    std::string value;
    form->ForEachElement([&](Element* element) {
      if (element->AttrOr("name") == "q") {
        value = element->AttrOr("value");
        return false;
      }
      return true;
    });
    return value;
  };
  // The action has to travel to the host, mutate the document there, and
  // come back around the poll loop — wait on the observed state, not on
  // WaitForSync (which is satisfied before the action even arrives).
  loop_.RunUntilCondition([&] {
    return field_value(session_->participant_browser(1)) == "hello" &&
           session_->snippet(0)->metrics().resyncs >= 1;
  });
  EXPECT_EQ(field_value(session_->participant_browser(0)), "hello");
  EXPECT_EQ(field_value(session_->participant_browser(1)), "hello");
  EXPECT_GE(session_->snippet(1)->metrics().patches_applied, 1u);
  EXPECT_EQ(session_->snippet(1)->metrics().patch_digest_mismatches, 0u);
  EXPECT_GE(session_->snippet(0)->metrics().patch_digest_mismatches, 1u);
  EXPECT_GE(session_->snippet(0)->metrics().resyncs, 1u);
}

TEST_F(DeltaSessionTest, DeltaOffSessionNeverSeesPatches) {
  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Millis(200);
  options.enable_delta = false;
  StartSession(options);

  HostSetStatus("v2");
  ASSERT_TRUE(session_->WaitForSync().ok());
  EXPECT_EQ(session_->participant_browser(0)->document()->ById("status")
                ->TextContent(),
            "v2");
  EXPECT_EQ(session_->agent()->metrics().patches_served, 0u);
  EXPECT_EQ(session_->snippet(0)->metrics().patches_applied, 0u);
}

}  // namespace
}  // namespace rcb
