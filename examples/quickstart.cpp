// Quickstart: the smallest complete RCB co-browsing session.
//
// One host browser runs RCB-Agent; one participant joins with a plain
// browser + Ajax-Snippet; the host navigates to a website and the page
// appears on the participant's browser through the poll/snapshot protocol.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/session.h"
#include "src/sites/corpus.h"

using namespace rcb;

int main() {
  // 1. A simulated internet: one event loop, one network.
  EventLoop loop;
  Network network(&loop);

  // 2. An origin website (the Table 1 replica of google.com's homepage).
  SessionOptions options;
  options.profile = LanProfile();       // host and participant share a LAN
  options.cache_mode = true;            // participant fetches objects via host
  options.poll_interval = Duration::Seconds(1.0);
  const SiteSpec* site = FindSite("google.com");
  AddOriginServer(&network, options.profile, site->host, site->server_bps,
                  site->server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  auto server = InstallSite(&loop, &network, *site);

  // 3. The co-browsing session: host browser + RCB-Agent, participant
  //    browser + Ajax-Snippet. Start() opens the agent port and joins the
  //    participant (they just "type the agent URL into the address bar").
  CoBrowsingSession session(&loop, &network, options);
  Status status = session.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "session start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("agent listening at %s, %zu participant joined\n",
              session.agent()->AgentUrl().ToString().c_str(),
              session.agent()->participant_count());

  // 4. The host browses; the participant follows automatically.
  auto stats = session.CoNavigate(Url::Make("http", site->host, 80, "/"));
  if (!stats.ok()) {
    std::fprintf(stderr, "co-navigation failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  std::printf("host loaded    '%s' in %s (M1) + %s objects\n",
              session.host_browser()->document()->Title().c_str(),
              stats->host_html_time.ToString().c_str(),
              stats->host_objects_time.ToString().c_str());
  std::printf("participant got '%s' in %s (M2), objects in %s (M4, %zu from host cache)\n",
              session.participant_browser(0)->document()->Title().c_str(),
              stats->participant_content_time[0].ToString().c_str(),
              stats->participant_objects_time[0].ToString().c_str(),
              stats->participant_objects_from_host[0]);
  std::printf("total sync time: %s\n", stats->total_sync_time.ToString().c_str());

  // 5. A dynamic (Ajax-style) change on the host syncs too — no reload.
  session.host_browser()->MutateDocument([](Document* document) {
    Element* header = document->FindFirst("h1");
    if (header != nullptr) {
      header->RemoveAllChildren();
      header->AppendChild(MakeText("updated live by the host"));
    }
  });
  status = session.WaitForSync();
  if (!status.ok()) {
    std::fprintf(stderr, "sync failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("dynamic update mirrored: participant <h1> now reads '%s'\n",
              session.participant_browser(0)->document()->FindFirst("h1")
                  ->TextContent().c_str());
  return 0;
}
