// §5.2.2 scenario: online co-shopping on a session-protected shop.
//
// Bob (host) and Alice (participant) pick a laptop together. Alice can
// search, click, and co-fill forms from her plain browser; her actions are
// piggybacked on polls, applied on Bob's browser, and the resulting pages —
// protected by Bob's session cookie, which Alice never holds — flow back to
// her.
//
// Build & run:  ./build/examples/co_shopping
#include <cstdio>

#include "src/core/session.h"
#include "src/sites/shop_site.h"

using namespace rcb;

namespace {

void MustOk(const char* what, const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

void RunUntil(EventLoop* loop, const char* what,
              const std::function<bool()>& condition) {
  if (!loop->RunUntilCondition(condition)) {
    std::fprintf(stderr, "%s never happened\n", what);
    std::exit(1);
  }
}

}  // namespace

int main() {
  EventLoop loop;
  Network network(&loop);

  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Millis(500);
  options.enable_auth = true;  // Bob shares a one-time session key with Alice
  network.AddHost("www.shop.example",
                  {.uplink_bps = 20'000'000, .downlink_bps = 20'000'000});
  ShopSite shop(&loop, &network, "www.shop.example");

  CoBrowsingSession session(&loop, &network, options);
  MustOk("session start", session.Start());
  std::printf("Bob's agent: %s (session key '%s' shared out of band)\n",
              session.agent()->AgentUrl().ToString().c_str(),
              session.session_key().c_str());

  Browser* bob = session.host_browser();
  Browser* alice_browser = session.participant_browser(0);
  AjaxSnippet* alice = session.snippet(0);

  // Bob opens the shop; the page reaches Alice.
  auto stats = session.CoNavigate(Url::Make("http", "www.shop.example", 80, "/"));
  MustOk("open shop", stats.ok() ? Status::Ok() : stats.status());
  std::printf("shop home synced to Alice in %s; Alice has %zu shop cookies "
              "(the session lives on Bob's browser)\n",
              stats->participant_content_time[0].ToString().c_str(),
              alice_browser->cookies().CountFor(
                  Url::Make("http", "www.shop.example", 80, "/")));

  // Alice searches for a MacBook Air from her own browser.
  Element* search_form = alice_browser->document()->ById("searchform");
  MustOk("fill search", alice->FillFormField(search_form, "q", "macbook air"));
  MustOk("submit search", alice->SubmitForm(search_form));
  alice->PollNow();
  RunUntil(&loop, "search results sync", [&] {
    Element* hits = alice_browser->document()->ById("hitcount");
    return hits != nullptr && !hits->TextContent().empty();
  });
  std::printf("Alice searched 'macbook air' -> %s on both screens\n",
              alice_browser->document()->ById("hitcount")->TextContent().c_str());

  // Alice picks the 13-inch model.
  Element* link = nullptr;
  alice_browser->document()->ForEachElement([&](Element* element) {
    if (element->tag_name() == "a" &&
        element->AttrOr("href").find("/product/mba13") != std::string::npos) {
      link = element;
      return false;
    }
    return true;
  });
  MustOk("click product", alice->ClickElement(link));
  alice->PollNow();
  RunUntil(&loop, "product page sync", [&] {
    return alice_browser->document()->ById("addform") != nullptr;
  });
  std::printf("Alice clicked '%s'\n",
              alice_browser->document()->ById("ptitle")->TextContent().c_str());

  // Bob adds it to the cart and opens checkout.
  bool done = false;
  MustOk("add to cart",
         bob->SubmitForm(bob->document()->ById("addform"),
                         [&](const Status&, const PageLoadStats&) {
                           done = true;
                         }));
  RunUntil(&loop, "cart page", [&] { return done; });
  done = false;
  bob->Navigate(Url::Make("http", "www.shop.example", 80, "/checkout"),
                [&](const Status&, const PageLoadStats&) { done = true; });
  RunUntil(&loop, "checkout page", [&] { return done; });
  MustOk("checkout sync", session.WaitForSync());
  std::printf("Bob added to cart and opened checkout; shipping form synced\n");

  // Alice co-fills the shipping address with her details.
  Element* ship_form = alice_browser->document()->ById("shipform");
  MustOk("fill name", alice->FillFormField(ship_form, "fullname", "Alice Cousin"));
  MustOk("fill street", alice->FillFormField(ship_form, "street", "653 5th Ave"));
  MustOk("fill city", alice->FillFormField(ship_form, "city", "New York"));
  MustOk("fill state", alice->FillFormField(ship_form, "state", "NY"));
  MustOk("fill zip", alice->FillFormField(ship_form, "zip", "10022"));
  MustOk("fill phone", alice->FillFormField(ship_form, "phone", "555-0100"));
  alice->PollNow();
  RunUntil(&loop, "co-fill merge", [&] {
    Element* host_form = bob->document()->ById("shipform");
    if (host_form == nullptr) {
      return false;
    }
    bool filled = false;
    host_form->ForEachElement([&](Element* element) {
      if (element->AttrOr("name") == "zip" &&
          element->AttrOr("value") == "10022") {
        filled = true;
        return false;
      }
      return true;
    });
    return filled;
  });
  std::printf("Alice's address merged into the form on Bob's browser\n");

  // Bob places the order.
  done = false;
  MustOk("place order",
         bob->SubmitForm(bob->document()->ById("shipform"),
                         [&](const Status&, const PageLoadStats&) {
                           done = true;
                         }));
  RunUntil(&loop, "confirmation", [&] { return done; });
  MustOk("confirmation sync", session.WaitForSync());
  std::printf("order placed; both browsers show: \"%s\" (%s)\n",
              bob->document()->ById("confirm")->TextContent().c_str(),
              alice_browser->document()->ById("shipto")->TextContent().c_str());

  const auto& m = session.agent()->metrics();
  std::printf("\nsession stats: %llu polls, %llu actions applied, "
              "0 auth failures: %s\n",
              static_cast<unsigned long long>(m.polls_received),
              static_cast<unsigned long long>(m.actions_applied),
              m.auth_failures == 0 ? "authenticated session clean" : "!!");
  return 0;
}
