// Moderated classroom with the extension features: push synchronization
// (§3.2.3 alternative), presence notifications (§5.2.3 user feedback), a
// per-participant permission policy (§3.3), and a host behind NAT reached
// through port forwarding (§3.2.1).
//
// Build & run:  ./build/examples/moderated_classroom
#include <cstdio>

#include "src/net/profiles.h"
#include "src/sites/site_server.h"
#include "src/core/rcb_agent.h"
#include "src/core/ajax_snippet.h"

using namespace rcb;

namespace {
void MustOk(const char* what, const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  EventLoop loop;
  Network network(&loop);

  // The instructor's laptop sits behind a home NAT; students connect to the
  // gateway's forwarded port.
  network.AddHost("home-gateway", {});
  network.AddHost("teacher-laptop", LanProfile().host_interface);
  network.SetBehindNat("teacher-laptop", "home-gateway");
  network.AddPortForward("home-gateway", 3000, "teacher-laptop", 3000);

  network.AddHost("www.lesson.test", {.uplink_bps = 20'000'000, .downlink_bps = 0});
  SiteServer lesson(&loop, &network, "www.lesson.test");
  lesson.ServeStatic("/", "text/html",
                     "<html><head><title>Lesson 4</title></head>"
                     "<body><h1>Operating systems</h1>"
                     "<a id=\"next\" href=\"/page2\">next page</a></body></html>");
  lesson.ServeStatic("/page2", "text/html",
                     "<html><head><title>Lesson 4 - page 2</title></head>"
                     "<body><h1>Scheduling</h1></body></html>");

  Browser teacher(&loop, &network, "teacher-laptop");
  AgentConfig config;
  config.sync_model = SyncModel::kPush;  // no polling: parts stream on change
  // Moderation: student gestures are limited to pointer movement; anything
  // else (clicks, navigation, form input) is dropped.
  config.policies.participant_filter = [](const std::string&,
                                          const UserAction& action) {
    return action.type == ActionType::kMouseMove;
  };
  RcbAgent agent(&teacher, config);
  MustOk("agent start", agent.Start());
  std::printf("agent on %s behind NAT; students use http://home-gateway:3000/\n",
              teacher.machine().c_str());

  // Three students join; the earlier ones hear about each newcomer.
  std::vector<std::unique_ptr<Browser>> student_browsers;
  std::vector<std::unique_ptr<AjaxSnippet>> students;
  for (int i = 0; i < 3; ++i) {
    std::string machine = "student-" + std::to_string(i + 1);
    network.AddHost(machine, LanProfile().participant_interface);
    network.SetLatency("teacher-laptop", machine, Duration::Millis(2));
    network.SetLatency("home-gateway", machine, Duration::Millis(2));
    student_browsers.push_back(std::make_unique<Browser>(&loop, &network, machine));
    students.push_back(
        std::make_unique<AjaxSnippet>(student_browsers.back().get(), SnippetConfig{}));
    bool joined = false;
    students.back()->Join(Url::Make("http", "home-gateway", 3000, "/"),
                          [&](Status status) {
                            MustOk("join", status);
                            joined = true;
                          });
    loop.RunUntilCondition([&] { return joined; });
  }
  loop.RunUntilCondition([&] { return agent.stream_count() == 3; });
  std::printf("3 students joined over push streams; student 1 now knows %zu peers\n",
              students[0]->known_peers().size());

  // Teacher opens the lesson; it streams to everyone without a poll tick.
  bool loaded = false;
  teacher.Navigate(Url::Make("http", "www.lesson.test", 80, "/"),
                   [&](const Status& status, const PageLoadStats&) {
                     MustOk("lesson load", status);
                     loaded = true;
                   });
  loop.RunUntilCondition([&] { return loaded; });
  for (auto& student : students) {
    loop.RunUntilCondition([&] { return student->metrics().content_updates > 0; });
  }
  std::printf("lesson pushed to all students: '%s'\n",
              student_browsers[0]->document()->Title().c_str());

  // A student tries to skip ahead — moderation denies it.
  Element* link = student_browsers[1]->document()->ById("next");
  MustOk("student click", students[1]->ClickElement(link));
  loop.RunFor(Duration::Seconds(1.0));
  std::printf("student 2 clicked 'next page': teacher still on '%s' "
              "(%llu action(s) denied by policy)\n",
              teacher.document()->Title().c_str(),
              static_cast<unsigned long long>(agent.metrics().actions_denied));

  // Pointer movement is allowed and mirrored to the other students.
  int mirrored = 0;
  for (size_t i = 0; i < students.size(); ++i) {
    students[i]->SetActionListener([&](const UserAction& action) {
      if (action.type == ActionType::kMouseMove) {
        ++mirrored;
      }
    });
  }
  students[1]->SendMouseMove(300, 200);
  loop.RunUntilCondition([&] { return mirrored >= 2; });
  std::printf("student 2's pointer mirrored to %d other students\n", mirrored);

  // The teacher turns the page; one leaves; the rest hear about it.
  loaded = false;
  teacher.Navigate(Url::Make("http", "www.lesson.test", 80, "/page2"),
                   [&](const Status&, const PageLoadStats&) { loaded = true; });
  loop.RunUntilCondition([&] { return loaded; });
  loop.RunUntilCondition([&] {
    return student_browsers[2]->document()->Title() == "Lesson 4 - page 2";
  });
  students[2]->Leave();
  loop.RunUntilCondition([&] { return agent.participant_count() == 2; });
  std::printf("page 2 pushed; student 3 left; roster now %zu students\n",
              agent.participant_count());
  return 0;
}
