// §5.2.1 scenario: coordinating a meeting spot via a web-map service.
//
// Bob (host) guides Alice (participant) to the Cartier store on Fifth
// Avenue. Every Ajax map update — search, zoom, pan, street view — reaches
// Alice even though the page URL never changes, which is precisely where
// URL-sharing co-browsing fails.
//
// Build & run:  ./build/examples/maps_meeting
#include <cstdio>

#include "src/core/session.h"
#include "src/sites/maps_site.h"

using namespace rcb;

namespace {

// Runs `op` to completion on the loop and aborts on error.
void Must(EventLoop* loop, const char* what,
          const std::function<void(std::function<void(Status)>)>& op) {
  Status out;
  bool done = false;
  op([&](Status status) {
    out = status;
    done = true;
  });
  loop->RunUntilCondition([&] { return done; });
  if (!out.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, out.ToString().c_str());
    std::exit(1);
  }
}

void MustOk(const char* what, const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  EventLoop loop;
  Network network(&loop);

  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Millis(500);
  network.AddHost("maps.example.com",
                  {.uplink_bps = 20'000'000, .downlink_bps = 20'000'000});
  MapsSite maps(&loop, &network, "maps.example.com");

  CoBrowsingSession session(&loop, &network, options);
  MustOk("session start", session.Start());
  Browser* alice = session.participant_browser(0);

  std::printf("Bob hosts a session at %s; Alice joined with a plain browser.\n",
              session.agent()->AgentUrl().ToString().c_str());

  // Bob opens the map page.
  MapsApp app(session.host_browser());
  Must(&loop, "open maps", [&](auto done) { app.Open(maps.PageUrl(), done); });
  MustOk("initial sync", session.WaitForSync());
  std::printf("map page open on both browsers (Alice sees %zu tiles)\n",
              alice->document()->ById("map")->FindAll("img").size());

  // Bob searches for the store address.
  const char* address = "653 5th Ave, New York";
  Must(&loop, "search", [&](auto done) { app.Search(address, done); });
  MustOk("search sync", session.WaitForSync());
  auto [x, y] = MapsSite::Geocode(address);
  std::printf("Bob searched '%s' -> tile (%d,%d); Alice's map shows (%s,%s)\n",
              address, x, y,
              alice->document()->ById("map")->AttrOr("data-x").c_str(),
              alice->document()->ById("map")->AttrOr("data-y").c_str());

  // Bob zooms in twice and pans around the block.
  Must(&loop, "zoom", [&](auto done) { app.ZoomIn(done); });
  Must(&loop, "zoom", [&](auto done) { app.ZoomIn(done); });
  Must(&loop, "pan", [&](auto done) { app.Pan(1, 0, done); });
  MustOk("zoom/pan sync", session.WaitForSync());
  std::printf("after zoom+pan: Alice at zoom %s, center (%s,%s) — URL unchanged: %s\n",
              alice->document()->ById("map")->AttrOr("data-z").c_str(),
              alice->document()->ById("map")->AttrOr("data-x").c_str(),
              alice->document()->ById("map")->AttrOr("data-y").c_str(),
              alice->current_url().ToString().c_str());

  // Street view: the Flash object appears on Alice's browser too. Activity
  // *inside* the Flash is not synchronized (paper limitation, §5.2.1).
  Must(&loop, "street view", [&](auto done) { app.ShowStreetView(done); });
  MustOk("street view sync", session.WaitForSync());
  std::printf("street view shown; Alice's caption: \"%s\"\n",
              alice->document()->ById("svcaption")->TextContent().c_str());
  std::printf("They agree to meet outside the four red roof show-windows.\n");

  const auto& agent_metrics = session.agent()->metrics();
  std::printf("\nsession stats: %llu polls, %llu content updates pushed, "
              "%llu snapshot generations (reused %llu times)\n",
              static_cast<unsigned long long>(agent_metrics.polls_received),
              static_cast<unsigned long long>(agent_metrics.polls_with_content),
              static_cast<unsigned long long>(agent_metrics.generations),
              static_cast<unsigned long long>(agent_metrics.snapshot_reuses));
  return 0;
}
