// Distance-learning scenario: one instructor, many students (§1, §3.3).
//
// The instructor hosts a moderated session: student clicks need explicit
// instructor confirmation (ActionPolicy::kConfirm), pointer movement is
// mirrored to everyone, and each generated snapshot is reused across all
// students (§4.1.2).
//
// Build & run:  ./build/examples/multi_participant
#include <cstdio>

#include "src/core/session.h"
#include "src/sites/corpus.h"

using namespace rcb;

namespace {
constexpr size_t kStudents = 8;

void MustOk(const char* what, const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  EventLoop loop;
  Network network(&loop);

  SessionOptions options;
  options.profile = LanProfile();
  options.participant_count = kStudents;
  options.poll_interval = Duration::Seconds(1.0);

  const SiteSpec* site = FindSite("wikipedia.org");
  AddOriginServer(&network, options.profile, site->host, site->server_bps,
                  site->server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  for (size_t i = 2; i <= kStudents; ++i) {
    network.SetLatency(options.participant_machine_prefix + "-" +
                           std::to_string(i),
                       site->host, site->server_latency);
  }
  auto server = InstallSite(&loop, &network, *site);

  CoBrowsingSession session(&loop, &network, options);
  MustOk("session start", session.Start());
  std::printf("class session: %zu students connected to %s\n",
              session.agent()->participant_count(),
              session.agent()->AgentUrl().ToString().c_str());

  // Instructor opens the lecture page; all students follow.
  auto stats = session.CoNavigate(Url::Make("http", site->host, 80, "/"));
  MustOk("lecture page", stats.ok() ? Status::Ok() : stats.status());
  Duration slowest;
  for (size_t i = 0; i < kStudents; ++i) {
    if (stats->participant_content_time[i] > slowest) {
      slowest = stats->participant_content_time[i];
    }
  }
  std::printf("page pushed to %zu students; slowest content sync %s; "
              "snapshot generated %llu time(s), reused %llu times\n",
              kStudents, slowest.ToString().c_str(),
              static_cast<unsigned long long>(
                  session.agent()->metrics().generations),
              static_cast<unsigned long long>(
                  session.agent()->metrics().snapshot_reuses));

  // The instructor points at a figure: mirrored to every student.
  UserAction pointer;
  pointer.type = ActionType::kMouseMove;
  pointer.x = 320;
  pointer.y = 144;
  session.agent()->BroadcastAction(pointer);
  size_t mirrored = 0;
  for (size_t i = 0; i < kStudents; ++i) {
    session.snippet(i)->SetActionListener(
        [&mirrored](const UserAction& action) {
          if (action.origin == "host") {
            ++mirrored;
          }
        });
  }
  loop.RunUntilCondition([&] { return mirrored == kStudents; });
  std::printf("instructor pointer mirrored to %zu/%zu students\n", mirrored,
              kStudents);

  // A student clicks a link; all students see the same follow-up page after
  // the instructor's (auto-approved here) action routes through the host.
  AjaxSnippet* student = session.snippet(2);
  Browser* student_browser = session.participant_browser(2);
  Element* link = nullptr;
  student_browser->document()->ForEachElement([&](Element* element) {
    if (element->tag_name() == "a" && element->HasAttribute("data-rcb-id") &&
        element->AttrOr("href").find("/story/") != std::string::npos) {
      link = element;
      return false;
    }
    return true;
  });
  if (link != nullptr) {
    MustOk("student click", student->ClickElement(link));
    student->PollNow();
    loop.RunUntilCondition([&] {
      return session.host_browser()->current_url().path().find("/story/") !=
             std::string::npos;
    });
    MustOk("story sync", session.WaitForSync());
    std::printf("student 3's click navigated the whole class to %s\n",
                session.host_browser()->current_url().ToString().c_str());
  }

  std::printf("\nfinal agent metrics: %llu polls received, %llu with content, "
              "%llu object requests, %llu actions applied\n",
              static_cast<unsigned long long>(
                  session.agent()->metrics().polls_received),
              static_cast<unsigned long long>(
                  session.agent()->metrics().polls_with_content),
              static_cast<unsigned long long>(
                  session.agent()->metrics().object_requests),
              static_cast<unsigned long long>(
                  session.agent()->metrics().actions_applied));
  return 0;
}
