#!/usr/bin/env bash
# Runs every bench binary and collects the machine-readable BENCH_<name>.json
# artifacts into one directory, then validates all of them against the
# schema (tools/validate_bench_json + a jq structural cross-check).
#
# Usage: scripts/bench_all.sh [build_dir] [artifact_dir]
#   build_dir     default: build
#   artifact_dir  default: bench-artifacts (created; existing JSON kept)
#
# Every artifact carries a config_fingerprint; re-running with the same
# configuration overwrites in place, so the directory always holds one
# current artifact per bench. EXPERIMENTS.md documents the schema and how
# each paper figure/table is regenerated from these files.
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
ARTIFACT_DIR="${2:-bench-artifacts}"

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: ${BUILD_DIR}/bench not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 2
fi

mkdir -p "${ARTIFACT_DIR}"
export RCB_BENCH_JSON_DIR="${ARTIFACT_DIR}"

failures=0
ran=0
for bench in "${BUILD_DIR}"/bench/*; do
  [[ -x "${bench}" && -f "${bench}" ]] || continue
  name="$(basename "${bench}")"
  echo "=== ${name} ==="
  if ! "${bench}"; then
    echo "--- ${name}: NONZERO EXIT (shape check failed?)" >&2
    failures=$((failures + 1))
  fi
  ran=$((ran + 1))
done

echo
echo "=== validating ${ARTIFACT_DIR}/BENCH_*.json ==="
shopt -s nullglob
artifacts=("${ARTIFACT_DIR}"/BENCH_*.json)
if [[ ${#artifacts[@]} -eq 0 ]]; then
  echo "error: no artifacts produced" >&2
  exit 1
fi

if [[ -x "${BUILD_DIR}/tools/validate_bench_json" ]]; then
  "${BUILD_DIR}/tools/validate_bench_json" "${artifacts[@]}" || failures=$((failures + 1))
else
  echo "warning: ${BUILD_DIR}/tools/validate_bench_json missing; skipped" >&2
fi

if command -v jq >/dev/null; then
  for artifact in "${artifacts[@]}"; do
    jq -e '.schema_version == 1 and (.bench | length > 0)
           and (.config_fingerprint | test("^[0-9a-f]{64}$"))
           and (.metrics | length > 0)' "${artifact}" >/dev/null ||
      { echo "jq check failed: ${artifact}" >&2; failures=$((failures + 1)); }
  done
  echo "jq cross-check: ${#artifacts[@]} artifacts"
fi

if command -v jq >/dev/null; then
  echo
  echo "=== checking committed root copies against fresh artifacts ==="
  # Before refreshing, the committed root copy of each artifact must agree
  # with the fresh one on schema version and on the set of config keys — a
  # mismatch means a bench changed its recipe without the canonical numbers
  # (and EXPERIMENTS.md) being regenerated alongside it.
  for artifact in "${artifacts[@]}"; do
    committed="./$(basename "${artifact}")"
    [[ -f "${committed}" ]] || continue
    jq -e --slurpfile fresh "${artifact}" \
          '.schema_version == $fresh[0].schema_version' \
        "${committed}" >/dev/null ||
      { echo "schema_version drift vs committed: ${committed}" >&2
        failures=$((failures + 1)); }
    jq -e --slurpfile fresh "${artifact}" \
          '(.config | keys) == ($fresh[0].config | keys)' \
        "${committed}" >/dev/null ||
      { echo "config key drift vs committed: ${committed}" >&2
        failures=$((failures + 1)); }
  done
fi

echo
echo "=== refreshing canonical BENCH_*.json copies at the repo root ==="
# The repo root holds the committed, canonical copy of each artifact (the
# numbers cited by EXPERIMENTS.md); every run refreshes them in place.
for artifact in "${artifacts[@]}"; do
  cp -f "${artifact}" "./$(basename "${artifact}")"
done
echo "refreshed: ${#artifacts[@]} root copies"

echo
echo "benches run: ${ran}; artifacts: ${#artifacts[@]}; failures: ${failures}"
[[ ${failures} -eq 0 ]]
