#!/usr/bin/env bash
# Tier-1 verification gate: build and run the full test suite twice —
# once with the default toolchain flags, once under ASan + UBSan
# (-DRCB_SANITIZE=ON). Both must pass for a change to merge.
#
# Usage: scripts/ci.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  echo "=== ${build_dir}: configure ($*) ==="
  # No -G: reuse whatever generator an existing build dir was made with.
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${build_dir}: build ==="
  cmake --build "${build_dir}" -j
  echo "=== ${build_dir}: ctest ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

run_suite build "$@"
run_suite build-asan -DRCB_SANITIZE=ON "$@"

echo "=== ci: both suites green ==="
