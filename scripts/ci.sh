#!/usr/bin/env bash
# Tier-1 verification gate: build and run the full test suite twice —
# once with the default toolchain flags, once under ASan + UBSan
# (-DRCB_SANITIZE=ON). Both must pass for a change to merge. Each pass also
# runs one fast bench in JSON-artifact mode and validates the emitted
# BENCH_*.json against the schema (C++ validator, plus jq if present).
#
# Usage: scripts/ci.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

check_bench_json() {
  local build_dir="$1"
  local artifact_dir="${build_dir}/ci-bench-json"
  echo "=== ${build_dir}: bench JSON gate ==="
  rm -rf "${artifact_dir}"
  mkdir -p "${artifact_dir}"
  RCB_BENCH_JSON_DIR="${artifact_dir}" "${build_dir}/bench/bench_actions" \
      > /dev/null
  local artifacts=("${artifact_dir}"/BENCH_*.json)
  "${build_dir}/tools/validate_bench_json" "${artifacts[@]}"
  if command -v jq >/dev/null; then
    for artifact in "${artifacts[@]}"; do
      jq -e '.schema_version == 1 and (.bench | length > 0)
             and (.config_fingerprint | test("^[0-9a-f]{64}$"))
             and (.metrics | length > 0)' "${artifact}" > /dev/null
    done
  fi
}

check_scale_json() {
  local build_dir="$1"
  local artifact_dir="${build_dir}/ci-scale-json"
  echo "=== ${build_dir}: bench_scale JSON gate ==="
  rm -rf "${artifact_dir}"
  mkdir -p "${artifact_dir}"
  # A reduced sweep keeps the sanitized run fast; the bench still fails on a
  # generate-once shape violation at any point it runs.
  RCB_BENCH_JSON_DIR="${artifact_dir}" RCB_SCALE_MAX_SESSIONS=64 \
      "${build_dir}/bench/bench_scale" > /dev/null
  local artifact="${artifact_dir}/BENCH_scale.json"
  "${build_dir}/tools/validate_bench_json" "${artifact}"
  if command -v jq >/dev/null; then
    jq -e '.schema_version == 1 and .bench == "scale"
           and (.config_fingerprint | test("^[0-9a-f]{64}$"))
           and (.metrics | length > 0)
           and ([.metrics[].name] | index("n64_p99_sync_us") != null)
           and ([.metrics[].name] | index("n64_pipeline_runs") != null)' \
        "${artifact}" > /dev/null
  fi
}

check_trace() {
  local build_dir="$1"
  local trace_dir="${build_dir}/ci-trace"
  echo "=== ${build_dir}: causal trace gate ==="
  rm -rf "${trace_dir}"
  mkdir -p "${trace_dir}"
  # A short deterministic session with tracing + auth on: drives the full
  # poll pipeline, then forges an unsigned poll so the agent's auth_failure
  # flight recorder dumps an artifact.
  "${build_dir}/tools/trace_session" "${trace_dir}" > /dev/null
  local flights=("${trace_dir}"/FLIGHT_*.jsonl)
  [[ -s "${flights[0]}" ]] || { echo "no flight dump written" >&2; return 1; }
  local report="${trace_dir}/report.json"
  "${build_dir}/tools/trace_report" --json --sim-only \
      "${trace_dir}/TRACE_session.jsonl" > "${report}"
  if command -v jq >/dev/null; then
    # Report schema: every traced round trip must close, and every content
    # response must be chased down to a participant-side apply.
    jq -e '.schema_version == 1 and .traces >= 1
           and .content_traces >= 1
           and .content_completeness == 1
           and (.segments | length > 0)
           and (.sessions | length >= 1)' "${report}" > /dev/null
    # Every flight-dump line is standalone JSON with a typed header.
    for flight in "${flights[@]}"; do
      jq -es 'length > 0 and .[0].type == "flight"
              and all(.[1:][]; .type == "span" or .type == "metrics")' \
          "${flight}" > /dev/null ||
        { echo "flight artifact malformed: ${flight}" >&2; return 1; }
    done
    # The Chrome export is one valid JSON array.
    jq -e 'type == "array" and length > 0' \
        "${trace_dir}/TRACE_session_chrome.json" > /dev/null
  fi
}

run_suite() {
  local build_dir="$1"
  shift
  echo "=== ${build_dir}: configure ($*) ==="
  # No -G: reuse whatever generator an existing build dir was made with.
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${build_dir}: build ==="
  cmake --build "${build_dir}" -j
  echo "=== ${build_dir}: ctest ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
  # Explicit delta gate: the diff/patch round-trip suite and the patch-codec
  # fuzz cases must pass in this build (ctest already ran them; this re-runs
  # them by name so a test-registration regression cannot silently drop them).
  echo "=== ${build_dir}: delta + patch-codec fuzz gate ==="
  "${build_dir}/tests/delta_test" --gtest_brief=1
  "${build_dir}/tests/fuzz_test" --gtest_filter='*Patch*' --gtest_brief=1
  # Host + fan-out gate: multi-session registry/isolation, broadcast
  # equivalence, and router fuzz must pass by name in this build.
  echo "=== ${build_dir}: host + fan-out gate ==="
  "${build_dir}/tests/host_test" --gtest_brief=1
  "${build_dir}/tests/fanout_equivalence_test" --gtest_brief=1
  "${build_dir}/tests/fuzz_test" --gtest_filter='*HostRouter*' --gtest_brief=1
  check_bench_json "${build_dir}"
  check_scale_json "${build_dir}"
  check_trace "${build_dir}"
}

run_suite build "$@"
run_suite build-asan -DRCB_SANITIZE=ON "$@"

echo "=== ci: both suites green ==="
