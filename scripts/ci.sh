#!/usr/bin/env bash
# Tier-1 verification gate: build and run the full test suite twice —
# once with the default toolchain flags, once under ASan + UBSan
# (-DRCB_SANITIZE=ON). Both must pass for a change to merge. Each pass also
# runs one fast bench in JSON-artifact mode and validates the emitted
# BENCH_*.json against the schema (C++ validator, plus jq if present).
#
# Usage: scripts/ci.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

check_bench_json() {
  local build_dir="$1"
  local artifact_dir="${build_dir}/ci-bench-json"
  echo "=== ${build_dir}: bench JSON gate ==="
  rm -rf "${artifact_dir}"
  mkdir -p "${artifact_dir}"
  RCB_BENCH_JSON_DIR="${artifact_dir}" "${build_dir}/bench/bench_actions" \
      > /dev/null
  local artifacts=("${artifact_dir}"/BENCH_*.json)
  "${build_dir}/tools/validate_bench_json" "${artifacts[@]}"
  if command -v jq >/dev/null; then
    for artifact in "${artifacts[@]}"; do
      jq -e '.schema_version == 1 and (.bench | length > 0)
             and (.config_fingerprint | test("^[0-9a-f]{64}$"))
             and (.metrics | length > 0)' "${artifact}" > /dev/null
    done
  fi
}

check_scale_json() {
  local build_dir="$1"
  local artifact_dir="${build_dir}/ci-scale-json"
  echo "=== ${build_dir}: bench_scale JSON gate ==="
  rm -rf "${artifact_dir}"
  mkdir -p "${artifact_dir}"
  # A reduced sweep keeps the sanitized run fast; the bench still fails on a
  # generate-once shape violation at any point it runs.
  RCB_BENCH_JSON_DIR="${artifact_dir}" RCB_SCALE_MAX_SESSIONS=64 \
      "${build_dir}/bench/bench_scale" > /dev/null
  local artifact="${artifact_dir}/BENCH_scale.json"
  "${build_dir}/tools/validate_bench_json" "${artifact}"
  if command -v jq >/dev/null; then
    jq -e '.schema_version == 1 and .bench == "scale"
           and (.config_fingerprint | test("^[0-9a-f]{64}$"))
           and (.metrics | length > 0)
           and ([.metrics[].name] | index("n64_p99_sync_us") != null)
           and ([.metrics[].name] | index("n64_pipeline_runs") != null)' \
        "${artifact}" > /dev/null
  fi
}

check_hotpath() {
  local build_dir="$1"
  local artifact_dir="${build_dir}/ci-hotpath-json"
  echo "=== ${build_dir}: serialize hot-path gate ==="
  rm -rf "${artifact_dir}"
  mkdir -p "${artifact_dir}"
  # Byte-identity property suite by name: cached incremental serialization
  # must equal a cold full serialization over the corpus and random mutation
  # schedules even if test registration regresses.
  "${build_dir}/tests/serialize_cache_test" --gtest_brief=1
  # The bench itself enforces the speedup floor (exit 1 below it) and asserts
  # incremental XML output is byte-identical to the full path on every warmup
  # update. The plain build sweeps the full corpus so its median is
  # comparable with the committed artifact's; sanitizer instrumentation slows
  # the two paths unequally, so the sanitized build runs a reduced sweep
  # against a lower floor and skips the ratchet.
  local floor=5.0 sites=
  if [[ "${build_dir}" == *asan* ]]; then
    floor=2.0
    sites=8
  fi
  RCB_BENCH_JSON_DIR="${artifact_dir}" RCB_HOTPATH_SITES="${sites:-99}" \
      RCB_HOTPATH_FLOOR="${floor}" "${build_dir}/bench/bench_hotpath" \
      > /dev/null
  local artifact="${artifact_dir}/BENCH_hotpath.json"
  "${build_dir}/tools/validate_bench_json" "${artifact}"
  if command -v jq >/dev/null; then
    # The bench already enforced the build-appropriate floor on exit; the jq
    # pass re-checks it from the artifact (plain 5x, sanitized 2x).
    jq -e --argjson floor "${floor}" \
          '.schema_version == 1 and .bench == "hotpath"
           and (.config_fingerprint | test("^[0-9a-f]{64}$"))
           and ([.metrics[].name] | index("serialize_full_p50_us") != null)
           and ([.metrics[].name]
                | index("serialize_incremental_p50_us") != null)
           and ([.metrics[].name] | index("incremental_speedup") != null)
           and ([.metrics[].name] | index("serialize_cache_hit_rate") != null)
           and ([.metrics[] | select(.name == "speedup_median")
                 | .value >= $floor] == [true])' "${artifact}" > /dev/null
    # Ratchet against the committed artifact: the speedup is a ratio, so it
    # compares across machines; a change may not land that regresses the
    # corpus-median speedup by more than 20%. The committed number comes from
    # a conservative (low) run, and a failing measurement gets one re-run
    # before the gate trips — single-vCPU builders show >10% run-to-run
    # spread even with the bench's paired-block design (docs/PERF_MODEL.md
    # §5). Wall-clock under sanitizers is not comparable, so only the plain
    # build ratchets.
    if [[ "${build_dir}" != *asan* ]]; then
      local committed="bench-artifacts/BENCH_hotpath.json"
      if [[ -f "${committed}" ]]; then
        local ratchet_jq='([.metrics[] | select(.name == "speedup_median")
             | .value][0]) as $committed
             | ([$cur[0].metrics[] | select(.name == "speedup_median")
                 | .value][0]) as $current
             | $current >= 0.8 * $committed'
        if ! jq -e --slurpfile cur "${artifact}" "${ratchet_jq}" \
            "${committed}" > /dev/null; then
          echo "hotpath ratchet below bound; re-running once for noise" >&2
          RCB_BENCH_JSON_DIR="${artifact_dir}" RCB_HOTPATH_SITES=99 \
              RCB_HOTPATH_FLOOR="${floor}" "${build_dir}/bench/bench_hotpath" \
              > /dev/null
          jq -e --slurpfile cur "${artifact}" "${ratchet_jq}" \
              "${committed}" > /dev/null ||
            { echo "hotpath speedup_median regressed >20% vs committed" \
                   "artifact (twice)" >&2; return 1; }
        fi
      fi
      # The committed micro artifact must stay self-consistent: for every
      # measured page the incremental per-update generation series must be
      # no slower than the pinned full series it rides next to.
      local micro="bench-artifacts/BENCH_micro.json"
      if [[ -f "${micro}" ]]; then
        jq -e '[.metrics[] | select(.name | test("^BM_ContentGeneration(Incremental)?_[0-9]+_real_ns$"))
                | {name, value}] as $m
               | [$m[] | select(.name | test("Incremental"))] | length > 0
               and all($m[] | select(.name | test("Incremental"));
                       . as $inc
                       | ($m[] | select(.name ==
                           ($inc.name | sub("Incremental"; ""))) | .value)
                         >= $inc.value)' "${micro}" > /dev/null ||
          { echo "committed BENCH_micro.json: incremental generation series" \
                 "slower than the full series" >&2; return 1; }
      fi
    fi
  fi
}

check_recovery() {
  local build_dir="$1"
  local dir="${build_dir}/ci-recovery"
  echo "=== ${build_dir}: durability + recovery gate ==="
  rm -rf "${dir}"
  mkdir -p "${dir}"
  # Persist unit suite by name: codec round-trips, torn-tail decode, and the
  # store-level crash matrix must pass in this build even if test
  # registration regresses.
  "${build_dir}/tests/persist_test" --gtest_brief=1
  # Reduced crash-recovery sweep: kill the host mid WAL stream, restart,
  # and require every session recovered with every poller back via signed
  # resume (the bench exits 1 on any shape violation).
  local artifact_dir="${dir}/bench-json"
  mkdir -p "${artifact_dir}"
  RCB_BENCH_JSON_DIR="${artifact_dir}" RCB_RECOVERY_MAX_SESSIONS=16 \
      "${build_dir}/bench/bench_recovery" > /dev/null
  local artifact="${artifact_dir}/BENCH_recovery.json"
  "${build_dir}/tools/validate_bench_json" "${artifact}"
  if command -v jq >/dev/null; then
    jq -e '.schema_version == 1 and .bench == "recovery"
           and (.config_fingerprint | test("^[0-9a-f]{64}$"))
           and ([.metrics[].name] | index("n16_recovery_wall_ms") != null)
           and ([.metrics[] | select(.name == "n16_sessions_recovered")
                 | .value] == [16])
           and ([.metrics[] | select(.name == "n16_fresh_joins_after_recovery")
                 | .value] == [0])' "${artifact}" > /dev/null
  fi
  # Torn-write corpus: every truncated or bit-flipped checkpoint, and every
  # WAL with a damaged header, must be rejected with a clean exit 1 — never
  # accepted, never a crash (exit >= 126 means a signal killed the tool).
  local inspect="${build_dir}/tools/checkpoint_inspect"
  "${inspect}" make-sample "${dir}" > /dev/null
  "${inspect}" verify "${dir}/sample.ckpt" "${dir}/sample.wal" > /dev/null
  local corpus="${dir}/corpus"
  mkdir -p "${corpus}"
  local ckpt_size wal_size
  ckpt_size=$(wc -c < "${dir}/sample.ckpt")
  wal_size=$(wc -c < "${dir}/sample.wal")
  head -c $((ckpt_size / 4)) "${dir}/sample.ckpt" > "${corpus}/ckpt_torn_header"
  head -c $((ckpt_size / 2)) "${dir}/sample.ckpt" > "${corpus}/ckpt_torn_mid"
  head -c $((ckpt_size - 3)) "${dir}/sample.ckpt" > "${corpus}/ckpt_torn_tail"
  cp "${dir}/sample.ckpt" "${corpus}/ckpt_flip_payload"
  printf 'XXXX' | dd of="${corpus}/ckpt_flip_payload" bs=1 \
      seek=$((ckpt_size / 2)) conv=notrunc status=none
  cp "${dir}/sample.ckpt" "${corpus}/ckpt_flip_magic"
  printf 'Z' | dd of="${corpus}/ckpt_flip_magic" bs=1 seek=0 conv=notrunc \
      status=none
  head -c 6 "${dir}/sample.wal" > "${corpus}/wal_torn_header"
  cp "${dir}/sample.wal" "${corpus}/wal_flip_magic"
  printf 'Z' | dd of="${corpus}/wal_flip_magic" bs=1 seek=0 conv=notrunc \
      status=none
  local bad rc
  for bad in "${corpus}"/*; do
    rc=0
    "${inspect}" verify "${bad}" > /dev/null 2>&1 || rc=$?
    if [[ "${rc}" -eq 0 ]]; then
      echo "corrupt artifact accepted: ${bad}" >&2
      return 1
    fi
    if [[ "${rc}" -ge 126 ]]; then
      echo "checkpoint_inspect crashed (rc=${rc}) on: ${bad}" >&2
      return 1
    fi
  done
  # A WAL cut mid-record is the one sanctioned tear: the tail is discarded,
  # the prefix replays, and verify reports it valid rather than crashing.
  head -c $((wal_size - 5)) "${dir}/sample.wal" > "${dir}/wal_torn_tail"
  "${inspect}" verify "${dir}/wal_torn_tail" > /dev/null
  if command -v jq >/dev/null; then
    # The JSON report stays well-formed across the whole hostile corpus.
    rc=0
    "${inspect}" --json verify "${corpus}"/* "${dir}/wal_torn_tail" \
        > "${dir}/corpus.json" 2>/dev/null || rc=$?
    if [[ "${rc}" -ge 126 ]]; then
      echo "checkpoint_inspect --json crashed (rc=${rc})" >&2
      return 1
    fi
    jq -e '.schema_version == 1 and .tool == "checkpoint_inspect"
           and ([.files[] | select(.valid | not)] | length == 7)
           and ([.files[] | select(.valid)] | length == 1)' \
        "${dir}/corpus.json" > /dev/null
  fi
}

check_trace() {
  local build_dir="$1"
  local trace_dir="${build_dir}/ci-trace"
  echo "=== ${build_dir}: causal trace gate ==="
  rm -rf "${trace_dir}"
  mkdir -p "${trace_dir}"
  # A short deterministic session with tracing + auth on: drives the full
  # poll pipeline, then forges an unsigned poll so the agent's auth_failure
  # flight recorder dumps an artifact.
  "${build_dir}/tools/trace_session" "${trace_dir}" > /dev/null
  local flights=("${trace_dir}"/FLIGHT_*.jsonl)
  [[ -s "${flights[0]}" ]] || { echo "no flight dump written" >&2; return 1; }
  local report="${trace_dir}/report.json"
  # --fail-on-incomplete makes the tool itself the completeness gate: exit 3
  # when any content response cannot be chased down to a participant-side
  # apply, so the check holds even where jq is absent.
  "${build_dir}/tools/trace_report" --json --sim-only --fail-on-incomplete \
      "${trace_dir}/TRACE_session.jsonl" > "${report}"
  if command -v jq >/dev/null; then
    # Report schema: every traced round trip must close.
    jq -e '.schema_version == 1 and .traces >= 1
           and .content_traces >= 1
           and (.segments | length > 0)
           and (.sessions | length >= 1)' "${report}" > /dev/null
    # Every flight-dump line is standalone JSON with a typed header.
    for flight in "${flights[@]}"; do
      jq -es 'length > 0 and .[0].type == "flight"
              and all(.[1:][]; .type == "span" or .type == "metrics")' \
          "${flight}" > /dev/null ||
        { echo "flight artifact malformed: ${flight}" >&2; return 1; }
    done
    # The Chrome export is one valid JSON array.
    jq -e 'type == "array" and length > 0' \
        "${trace_dir}/TRACE_session_chrome.json" > /dev/null
  fi
}

check_transport() {
  local build_dir="$1"
  local artifact_dir="${build_dir}/ci-transport-json"
  echo "=== ${build_dir}: streamed transport gate ==="
  rm -rf "${artifact_dir}"
  mkdir -p "${artifact_dir}"
  # Frame codec, grant negotiation, heartbeat/reconnect ladder, long-poll
  # parking, adaptive backoff, and the byte-identical downgrade suite by
  # name: a test-registration regression cannot silently drop them.
  "${build_dir}/tests/transport_test" --gtest_brief=1
  "${build_dir}/tests/agent_test" \
      --gtest_filter='*StreamCapabilityDowngrade*' --gtest_brief=1
  # The bench enforces the floors on exit: WAN framed streaming >= 2x median
  # latency cut and >= 10x idle bytes/min cut vs 1 s polling, and the drop
  # probe recovers via signed resume on every profile. Every reading is
  # simulated time, so the floors hold under sanitizers too; the sanitized
  # build just runs a smaller sweep to bound wall time.
  local mutations=15 idle=60 fanout=8
  if [[ "${build_dir}" == *asan* ]]; then
    mutations=7
    idle=30
    fanout=4
  fi
  RCB_BENCH_JSON_DIR="${artifact_dir}" \
      RCB_TRANSPORT_MUTATIONS="${mutations}" \
      RCB_TRANSPORT_IDLE_SECONDS="${idle}" \
      RCB_TRANSPORT_FANOUT_SESSIONS="${fanout}" \
      "${build_dir}/bench/bench_transport" > /dev/null
  local artifact="${artifact_dir}/BENCH_transport.json"
  "${build_dir}/tools/validate_bench_json" "${artifact}"
  if command -v jq >/dev/null; then
    # Schema + in-artifact floors: the improvement ratios and the per-profile
    # framed drop-recovery flags must hold in the artifact this build wrote.
    jq -e '.schema_version == 1 and .bench == "transport"
           and (.config_fingerprint | test("^[0-9a-f]{64}$"))
           and ([.metrics[].name]
                | index("wan_poll_median_latency_us") != null)
           and ([.metrics[].name]
                | index("wan_frames_median_latency_us") != null)
           and ([.metrics[].name]
                | index("fanout_frames_median_latency_us") != null)
           and ([.metrics[] | select(.name == "wan_latency_improvement_x")
                 | .value >= 2] == [true])
           and ([.metrics[] | select(.name == "wan_idle_bytes_improvement_x")
                 | .value >= 10] == [true])
           and ([.metrics[]
                 | select(.name | test("^(lan|wan|mobile)_frames_recovered_after_drop$"))
                 | .value] | length == 3 and all(. == 1))' \
        "${artifact}" > /dev/null
    # Latency floor against the committed polling baseline: streamed sync
    # must keep beating the poll numbers this repo ships. Sim time is
    # deterministic, but the gate still re-runs once before tripping so a
    # flaky environment cannot block a good change. The sanitized sweep is
    # reduced, so only the plain build compares with the committed artifact.
    if [[ "${build_dir}" != *asan* ]]; then
      local committed="bench-artifacts/BENCH_transport.json"
      if [[ -f "${committed}" ]]; then
        local floor_jq='([.metrics[]
             | select(.name == "wan_poll_median_latency_us") | .value][0])
             as $poll
             | ([$cur[0].metrics[]
                 | select(.name == "wan_frames_median_latency_us")
                 | .value][0]) as $frames
             | $frames * 2 <= $poll'
        if ! jq -e --slurpfile cur "${artifact}" "${floor_jq}" \
            "${committed}" > /dev/null; then
          echo "transport latency floor below bound; re-running once" >&2
          RCB_BENCH_JSON_DIR="${artifact_dir}" \
              "${build_dir}/bench/bench_transport" > /dev/null
          jq -e --slurpfile cur "${artifact}" "${floor_jq}" \
              "${committed}" > /dev/null ||
            { echo "streamed transport no longer >= 2x faster than the" \
                   "committed polling baseline (twice)" >&2; return 1; }
        fi
      fi
    fi
  fi
}

check_health() {
  local build_dir="$1"
  local dir="${build_dir}/ci-health"
  echo "=== ${build_dir}: health plane gate ==="
  rm -rf "${dir}"
  mkdir -p "${dir}"
  # Window engine, SLO burn evaluator, and endpoint suite by name: a
  # test-registration regression cannot silently drop the determinism pins.
  "${build_dir}/tests/health_test" --gtest_brief=1
  local chaos="${build_dir}/tools/health_chaos"
  # Determinism: two identical calm runs must produce byte-identical
  # /host/health snapshots (windowing is sim-clock pure).
  "${chaos}" --scenario calm --out "${dir}/calm.json"
  "${chaos}" --scenario calm --out "${dir}/calm_again.json"
  cmp -s "${dir}/calm.json" "${dir}/calm_again.json" ||
    { echo "calm health snapshot differs between identical runs" >&2
      return 1; }
  local scenario
  for scenario in delay auth waste; do
    "${chaos}" --scenario "${scenario}" --out "${dir}/${scenario}.json"
  done
  if command -v jq >/dev/null; then
    # Calm long-poll traffic stays green everywhere with no active alerts.
    jq -e '.sessions_total == 4 and .summary.green == 4
           and (.alerts | length == 0)' "${dir}/calm.json" > /dev/null ||
      { echo "calm scenario not all-green" >&2; return 1; }
    # Each fault scenario must trip exactly its own SLO on every session.
    local objective
    for scenario in delay:sync_p99 auth:auth_failure_rate \
        waste:wasted_poll_ratio; do
      objective="${scenario#*:}"
      scenario="${scenario%%:*}"
      jq -e --arg obj "${objective}" \
            '.summary.unhealthy == .sessions_total
             and (.alerts | length) == .sessions_total
             and (.alerts | all(endswith(":" + $obj)))' \
          "${dir}/${scenario}.json" > /dev/null ||
        { echo "${scenario} scenario did not trip ${objective} everywhere" \
               >&2; return 1; }
    done
  fi
  # Exemplar resolution: a reduced traced bench_scale embeds a health section
  # in its artifact; every exemplar trace id there must resolve against the
  # dumped span file via trace_report --trace-id.
  local bench_dir="${dir}/bench-json"
  mkdir -p "${bench_dir}"
  RCB_BENCH_JSON_DIR="${bench_dir}" RCB_TRACE_DIR="${dir}" \
      RCB_SCALE_MAX_SESSIONS=16 "${build_dir}/bench/bench_scale" > /dev/null
  local artifact="${bench_dir}/BENCH_scale.json"
  "${build_dir}/tools/validate_bench_json" "${artifact}"
  if command -v jq >/dev/null; then
    jq -e '.health.sessions | length > 0
           and all(.[]; .score == "green")' "${artifact}" > /dev/null ||
      { echo "traced bench_scale health section missing or not green" >&2
        return 1; }
    local ids id
    ids=$(jq -r '[.health.sessions[].exemplars[]?.trace_id
                  | select(. != "")] | unique | .[]' "${artifact}")
    [[ -n "${ids}" ]] ||
      { echo "no exemplar trace ids in the bench_scale health section" >&2
        return 1; }
    while read -r id; do
      "${build_dir}/tools/trace_report" --trace-id "${id}" \
          "${dir}/TRACE_scale.jsonl" > /dev/null ||
        { echo "health exemplar trace ${id} unresolvable in trace dump" >&2
          return 1; }
    done <<< "${ids}"
  fi
}

check_metrics_doc() {
  echo "=== metrics reference drift gate ==="
  local doc="docs/METRICS.md"
  [[ -f "${doc}" ]] || { echo "missing ${doc}" >&2; return 1; }
  # Both directions: every rcb_* family named in the sources must be
  # documented, and every documented family must still exist in the sources.
  local drift=0 name
  while read -r name; do
    grep -q "\`${name}\`" "${doc}" ||
      { echo "metric not documented in ${doc}: ${name}" >&2; drift=1; }
  done < <(grep -rhoE '"rcb_[a-z0-9_]+"' src | tr -d '"' | sort -u)
  while read -r name; do
    grep -rqF "\"${name}\"" src ||
      { echo "documented metric gone from src: ${name}" >&2; drift=1; }
  done < <(grep -hoE '`rcb_[a-z0-9_]+`' "${doc}" | tr -d '\`' | sort -u)
  [[ "${drift}" -eq 0 ]]
}

run_suite() {
  local build_dir="$1"
  shift
  echo "=== ${build_dir}: configure ($*) ==="
  # No -G: reuse whatever generator an existing build dir was made with.
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${build_dir}: build ==="
  cmake --build "${build_dir}" -j
  echo "=== ${build_dir}: ctest ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
  # Explicit delta gate: the diff/patch round-trip suite and the patch-codec
  # fuzz cases must pass in this build (ctest already ran them; this re-runs
  # them by name so a test-registration regression cannot silently drop them).
  echo "=== ${build_dir}: delta + patch-codec fuzz gate ==="
  "${build_dir}/tests/delta_test" --gtest_brief=1
  "${build_dir}/tests/fuzz_test" --gtest_filter='*Patch*' --gtest_brief=1
  # Host + fan-out gate: multi-session registry/isolation, broadcast
  # equivalence, and router fuzz must pass by name in this build.
  echo "=== ${build_dir}: host + fan-out gate ==="
  "${build_dir}/tests/host_test" --gtest_brief=1
  "${build_dir}/tests/fanout_equivalence_test" --gtest_brief=1
  "${build_dir}/tests/fuzz_test" --gtest_filter='*HostRouter*' --gtest_brief=1
  check_bench_json "${build_dir}"
  check_hotpath "${build_dir}"
  check_scale_json "${build_dir}"
  check_recovery "${build_dir}"
  check_trace "${build_dir}"
  check_transport "${build_dir}"
  check_health "${build_dir}"
}

check_metrics_doc
run_suite build "$@"
run_suite build-asan -DRCB_SANITIZE=ON "$@"

echo "=== ci: both suites green ==="
