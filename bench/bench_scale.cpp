// Scale: multi-session host with shared-snapshot broadcast fan-out.
//
// Sweeps session count x 8 participants on one RcbHost (one event loop, one
// shared cache, one registry) and reports, per point:
//   * p99 / mean sync latency — document version stamped -> participant
//     applied it (simulated time),
//   * bytes per participant per update, and per content-bearing send,
//   * generation CPU per update (real time, the Fig. 3 pipeline),
//   * the generate-once proof: rcb_host pipeline runs vs document updates vs
//     fan-out sends (runs ~= updates; sends ~= updates x participants).
//
// Env knobs (CI shrinks the sweep under sanitizers):
//   RCB_SCALE_MAX_SESSIONS  largest point to run (default 1024, try 10240)
//   RCB_SCALE_PARTICIPANTS  pollers per session (default 8)
#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bench/common.h"
#include "src/core/ajax_snippet.h"
#include "src/host/rcb_host.h"
#include "src/html/parser.h"
#include "src/util/strings.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

constexpr int kRounds = 2;                 // post-join mutation rounds
constexpr int kRoundSpacingMs = 1500;      // >> poll interval: every version polled
constexpr int kFirstRoundMs = 2000;

struct ScalePoint {
  size_t sessions = 0;
  size_t participants = 0;
  double p99_sync_us = 0;
  double mean_sync_us = 0;
  double bytes_per_participant_update = 0;
  double bytes_per_send = 0;
  double generation_cpu_us_per_update = 0;
  uint64_t doc_updates = 0;
  uint64_t pipeline_runs = 0;
  uint64_t fanout_sends = 0;
  uint64_t content_bytes = 0;
  double wall_seconds = 0;
  std::string health_json;  // /host/health snapshot at the end of the run
};

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  long parsed = std::atol(value);
  return parsed <= 0 ? fallback : static_cast<size_t>(parsed);
}

StatusOr<ScalePoint> RunPoint(size_t sessions, size_t participants) {
  auto wall_start = std::chrono::steady_clock::now();
  ScalePoint point;
  point.sessions = sessions;
  point.participants = participants;

  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  for (size_t p = 0; p < participants; ++p) {
    std::string machine = "poller-pc-" + std::to_string(p + 1);
    network.AddHost(machine, {});
    network.SetLatency("host-pc", machine, Duration::Millis(1));
  }

  HostConfig config;
  config.base_port = 3000;
  // Per-session instrument families are O(sessions) registry weight; at this
  // scale every session runs lite and the rcb_host_* aggregates carry the
  // proof metrics.
  config.limits.metrics_sessions = 0;
  config.limits.max_sessions = 0;  // the sweep is the cap
  config.agent_defaults.poll_interval = Duration::Millis(500);
  // Traced runs feed the health plane's exemplar trace ids; ci.sh
  // check_health resolves each one against the dumped spans.
  const bool traced = TraceEnvEnabled();
  config.agent_defaults.enable_trace = traced;
  RcbHost host(&loop, &network, config);
  RCB_RETURN_IF_ERROR(host.Start());

  std::vector<HostSession*> hosted(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    auto session = host.CreateSession("s" + std::to_string(s));
    if (!session.ok()) {
      return session.status();
    }
    hosted[s] = *session;
    hosted[s]->browser->ReplaceDocument(
        ParseDocument(StrFormat(
            "<html><head><title>scale %zu</title></head>"
            "<body><p id=\"status\">round 0</p>"
            "<ul><li>alpha</li><li>beta</li><li>gamma</li></ul>"
            "</body></html>", s)),
        Url::Make("http", "host-pc", hosted[s]->port, "/doc"));
  }

  struct Poller {
    std::unique_ptr<Browser> browser;
    std::unique_ptr<AjaxSnippet> snippet;
  };
  std::vector<Poller> pollers;
  pollers.reserve(sessions * participants);
  std::vector<int64_t> latency_samples_us;
  latency_samples_us.reserve(sessions * participants * kRounds);
  size_t joined = 0;
  for (size_t s = 0; s < sessions; ++s) {
    for (size_t p = 0; p < participants; ++p) {
      Poller poller;
      poller.browser = std::make_unique<Browser>(
          &loop, &network, "poller-pc-" + std::to_string(p + 1));
      SnippetConfig snippet_config;
      snippet_config.fetch_objects = false;
      snippet_config.enable_trace = traced;
      poller.snippet = std::make_unique<AjaxSnippet>(poller.browser.get(),
                                                     snippet_config);
      AjaxSnippet* snippet = poller.snippet.get();
      // Sync latency: version stamp (doc_time is the sim clock at mutation)
      // -> this participant applied it. Warm-up joins are excluded.
      snippet->SetUpdateListener([&loop, &latency_samples_us,
                                  snippet](int64_t doc_time_ms) {
        if (doc_time_ms >= kFirstRoundMs) {
          latency_samples_us.push_back(loop.now().micros() -
                                       doc_time_ms * 1000);
        }
      });
      snippet->Join(hosted[s]->agent->AgentUrl(), [&joined](Status status) {
        if (status.ok()) {
          ++joined;
        }
      });
      pollers.push_back(std::move(poller));
    }
  }
  loop.RunUntilCondition(
      [&] { return joined == sessions * participants; });
  if (joined != sessions * participants) {
    return InternalError(StrFormat("only %zu/%zu pollers joined", joined,
                                   sessions * participants));
  }

  // Mutation rounds at absolute instants; every session's version r carries
  // the identical doc_time, so sync latency is comparable across sessions.
  const SimTime epoch;
  for (int round = 1; round <= kRounds; ++round) {
    SimTime fire =
        epoch + Duration::Millis(kFirstRoundMs + (round - 1) * kRoundSpacingMs);
    loop.Schedule(fire - loop.now(), [&hosted, round] {
      for (HostSession* session : hosted) {
        session->browser->MutateDocument([round](Document* document) {
          Element* status = document->ById("status");
          status->RemoveAllChildren();
          status->AppendChild(MakeText("round " + std::to_string(round)));
        });
      }
    });
  }

  const size_t expected_samples = sessions * participants * kRounds;
  loop.RunUntilCondition(
      [&] { return latency_samples_us.size() >= expected_samples; });
  if (latency_samples_us.size() < expected_samples) {
    return InternalError("pollers never converged");
  }

  std::sort(latency_samples_us.begin(), latency_samples_us.end());
  point.p99_sync_us = static_cast<double>(
      latency_samples_us[latency_samples_us.size() * 99 / 100]);
  double total = 0;
  for (int64_t sample : latency_samples_us) {
    total += static_cast<double>(sample);
  }
  point.mean_sync_us = total / static_cast<double>(latency_samples_us.size());

  // The generate-once proof, read from the same counters the rcb_host_*
  // registry families render.
  Duration generation_cpu;
  for (HostSession* session : hosted) {
    const AgentMetrics& metrics = session->agent->metrics();
    point.doc_updates += metrics.doc_updates;
    point.pipeline_runs += metrics.generations;
    point.fanout_sends += metrics.polls_with_content;
    point.content_bytes += metrics.content_bytes_sent;
    generation_cpu += metrics.total_generation_time;
  }
  point.bytes_per_participant_update =
      static_cast<double>(point.content_bytes) /
      static_cast<double>(sessions * participants * (kRounds + 1));
  point.bytes_per_send = static_cast<double>(point.content_bytes) /
                         static_cast<double>(point.fanout_sends);
  point.generation_cpu_us_per_update =
      static_cast<double>(generation_cpu.micros()) /
      static_cast<double>(point.doc_updates);

  // Health plane (DESIGN.md §16): the artifact ships the end-of-run
  // /host/health snapshot, and traced runs dump every agent's + snippet's
  // spans so the exemplar trace ids in it resolve.
  HttpRequest health_request;
  health_request.method = HttpMethod::kGet;
  health_request.target = "/host/health";
  point.health_json = host.Route(health_request).body;
  if (traced) {
    std::vector<std::pair<std::string, const obs::TraceLog*>> logs;
    logs.reserve(hosted.size() + pollers.size());
    for (HostSession* session : hosted) {
      logs.emplace_back("agent-" + session->id, &session->agent->trace_log());
    }
    for (const Poller& poller : pollers) {
      logs.emplace_back("snippet-" + poller.snippet->participant_id(),
                        &poller.snippet->trace_log());
    }
    DumpTraceLogs(logs);
  }

  point.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return point;
}

}  // namespace

int main() {
  SetTraceBenchName("scale");
  const size_t max_sessions = EnvSize("RCB_SCALE_MAX_SESSIONS", 1024);
  const size_t participants = EnvSize("RCB_SCALE_PARTICIPANTS", 8);
  PrintBenchHeader(
      "Scale — multi-session host, shared-snapshot broadcast fan-out",
      StrFormat("sessions x %zu interval pollers, LAN, %d mutation rounds; "
                "RCB_SCALE_MAX_SESSIONS=%zu",
                participants, kRounds, max_sessions));

  obs::BenchReport report = MakeReport("scale", "lan", /*cache_mode=*/true,
                                       /*repetitions=*/1);
  report.SetConfig("participants_per_session", std::to_string(participants));
  report.SetConfig("mutation_rounds", std::to_string(kRounds));
  report.SetConfig("max_sessions", std::to_string(max_sessions));

  std::printf("%-9s %12s %12s %14s %12s %12s %12s %10s\n", "sessions",
              "p99 sync", "mean sync", "B/ppt/update", "updates", "runs",
              "fanout", "wall s");
  bool shape_ok = true;
  for (size_t sessions : {16ul, 64ul, 256ul, 1024ul, 4096ul, 10240ul}) {
    if (sessions > max_sessions) {
      continue;
    }
    auto point = RunPoint(sessions, participants);
    if (!point.ok()) {
      std::printf("%-9zu failed: %s\n", sessions,
                  point.status().ToString().c_str());
      shape_ok = false;
      continue;
    }
    std::printf("%-9zu %10.1fms %10.1fms %14.0f %12llu %12llu %12llu %10.2f\n",
                sessions, point->p99_sync_us / 1000.0,
                point->mean_sync_us / 1000.0,
                point->bytes_per_participant_update,
                static_cast<unsigned long long>(point->doc_updates),
                static_cast<unsigned long long>(point->pipeline_runs),
                static_cast<unsigned long long>(point->fanout_sends),
                point->wall_seconds);
    // Generate-once must hold at every point: the pipeline ran (about) once
    // per update — never once per participant poll.
    if (point->pipeline_runs > point->doc_updates ||
        point->pipeline_runs * 2 < point->doc_updates ||
        point->fanout_sends < point->doc_updates * participants) {
      shape_ok = false;
    }

    std::string prefix = StrFormat("n%zu_", sessions);
    report.AddValue(prefix + "p99_sync_us", "us", obs::Provenance::kSim,
                    point->p99_sync_us);
    report.AddValue(prefix + "mean_sync_us", "us", obs::Provenance::kSim,
                    point->mean_sync_us);
    report.AddValue(prefix + "bytes_per_participant_update", "bytes",
                    obs::Provenance::kSim,
                    point->bytes_per_participant_update);
    report.AddValue(prefix + "bytes_per_send", "bytes", obs::Provenance::kSim,
                    point->bytes_per_send);
    report.AddValue(prefix + "doc_updates", "updates", obs::Provenance::kSim,
                    static_cast<double>(point->doc_updates));
    report.AddValue(prefix + "pipeline_runs", "runs", obs::Provenance::kSim,
                    static_cast<double>(point->pipeline_runs));
    report.AddValue(prefix + "fanout_sends", "sends", obs::Provenance::kSim,
                    static_cast<double>(point->fanout_sends));
    report.AddValue(prefix + "generation_cpu_us_per_update", "us",
                    obs::Provenance::kWall,
                    point->generation_cpu_us_per_update);
    report.AddValue(prefix + "wall_seconds", "s", obs::Provenance::kWall,
                    point->wall_seconds);
    // The largest completed point's snapshot represents the artifact.
    report.SetHealthJson(point->health_json);
  }
  WriteReport(report);
  PrintRule();
  std::printf("shape check: pipeline runs ~= document updates at every point "
              "(generate-once),\nfan-out sends >= updates x participants "
              "(everyone served), sync latency ~flat in sessions.\n");
  if (!shape_ok) {
    std::printf("SHAPE CHECK FAILED\n");
    return 1;
  }
  return 0;
}
