// Ablation: multi-participant fan-out and snapshot reuse (§3.3, §4.1.2).
//
// The paper notes the generated response content is produced once per
// document change and reused for every participant. This sweep scales the
// participant count and reports (a) generations vs content polls — reuse —
// and (b) the time until the slowest participant is synced, in both LAN and
// WAN (where the host's 384 Kbps uplink serializes the copies).
#include "bench/common.h"
#include "src/sites/corpus.h"
#include "src/util/strings.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

struct FanoutPoint {
  size_t participants = 0;
  Duration slowest_m2;
  uint64_t generations = 0;
  uint64_t content_polls = 0;
  uint64_t host_tx_bytes = 0;
};

StatusOr<FanoutPoint> RunFanout(size_t participants, const NetworkProfile& profile) {
  const SiteSpec& spec = *FindSite("facebook.com");
  FanoutPoint point;
  point.participants = participants;

  EventLoop loop;
  Network network(&loop);
  SessionOptions options;
  options.profile = profile;
  options.participant_count = participants;
  AddOriginServer(&network, profile, spec.host, spec.server_bps,
                  spec.server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  for (size_t i = 2; i <= participants; ++i) {
    network.SetLatency(options.participant_machine_prefix + "-" +
                           std::to_string(i),
                       spec.host, spec.server_latency + profile.access_latency);
  }
  auto server = InstallSite(&loop, &network, spec);
  CoBrowsingSession session(&loop, &network, options);
  RCB_RETURN_IF_ERROR(session.Start());
  uint64_t bytes_before = network.total_bytes_transferred();
  auto stats = session.CoNavigate(Url::Make("http", spec.host, 80, "/"));
  if (!stats.ok()) {
    return stats.status();
  }
  for (size_t i = 0; i < participants; ++i) {
    if (stats->participant_content_time[i] > point.slowest_m2) {
      point.slowest_m2 = stats->participant_content_time[i];
    }
  }
  point.generations = session.agent()->metrics().generations;
  point.content_polls = session.agent()->metrics().polls_with_content;
  point.host_tx_bytes = network.total_bytes_transferred() - bytes_before;
  return point;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Ablation — participant fan-out and snapshot reuse (§4.1.2)",
      "facebook.com replica (23.2 KB HTML); one host navigation, N pollers");

  obs::BenchReport report = MakeReport("ablation_fanout", "lan+wan",
                                       /*cache_mode=*/true, /*repetitions=*/1);
  report.SetConfig("site", "facebook.com");
  for (const char* env : {"LAN", "WAN"}) {
    NetworkProfile profile = env[0] == 'L' ? LanProfile() : WanProfile();
    std::printf("\n[%s]\n", env);
    std::printf("%-13s %12s %12s %14s %14s\n", "participants", "slowest M2",
                "generations", "content polls", "net bytes");
    for (size_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
      auto point = RunFanout(n, profile);
      if (!point.ok()) {
        std::printf("%-13zu failed: %s\n", n, point.status().ToString().c_str());
        continue;
      }
      std::printf("%-13zu %12s %12llu %14llu %14llu\n", n,
                  point->slowest_m2.ToString().c_str(),
                  static_cast<unsigned long long>(point->generations),
                  static_cast<unsigned long long>(point->content_polls),
                  static_cast<unsigned long long>(point->host_tx_bytes));
      std::string prefix = StrFormat("%s_n%zu_", env[0] == 'L' ? "lan" : "wan", n);
      report.AddValue(prefix + "slowest_m2_us", "us", obs::Provenance::kSim,
                      static_cast<double>(point->slowest_m2.micros()));
      report.AddValue(prefix + "generations", "runs", obs::Provenance::kSim,
                      static_cast<double>(point->generations));
      report.AddValue(prefix + "content_polls", "polls", obs::Provenance::kSim,
                      static_cast<double>(point->content_polls));
      report.AddValue(prefix + "net_bytes", "bytes", obs::Provenance::kSim,
                      static_cast<double>(point->host_tx_bytes));
    }
  }
  WriteReport(report);
  PrintRule();
  std::printf("shape check: generations stay at 1 regardless of N (content "
              "generated once, reused);\n");
  std::printf("LAN slowest-M2 grows slowly with N; WAN slowest-M2 grows ~"
              "linearly (384 Kbps uplink serializes the N copies).\n");
  return 0;
}
