#include "bench/task_script.h"

#include "src/util/rand.h"

namespace rcb {
namespace benchutil {
namespace {

// Helper bundle threaded through the tasks.
struct Script {
  EventLoop* loop;
  CoBrowsingSession* session;
  MapsSite* maps;
  MapsApp* app;
  Browser* bob;
  Browser* alice_browser;
  AjaxSnippet* alice;

  bool WaitCondition(const std::function<bool()>& condition) {
    // Bounded wait so a broken step fails instead of hanging.
    SimTime deadline = loop->now() + Duration::Seconds(60.0);
    while (!condition()) {
      if (loop->pending_events() == 0 || loop->now() >= deadline) {
        return false;
      }
      loop->RunFor(Duration::Millis(50));
    }
    return true;
  }

  bool WaitStatus(const std::function<void(std::function<void(Status)>)>& op) {
    Status out;
    bool done = false;
    op([&](Status status) {
      out = status;
      done = true;
    });
    return WaitCondition([&] { return done; }) && out.ok();
  }

  bool Synced() { return session->WaitForSync(Duration::Seconds(30.0)).ok(); }
};

using TaskFn = std::function<bool(Script&)>;

struct TaskSpec {
  const char* id;
  const char* description;
  TaskFn run;
};

std::vector<TaskSpec> BuildTasks() {
  return {
      {"T1-B", "Bob starts a RCB co-browsing session",
       [](Script& s) { return s.session->agent()->running(); }},
      {"T1-A", "Alice types the agent URL and joins",
       [](Script& s) { return s.alice->joined(); }},
      {"T2-B", "Bob searches '653 5th Ave, New York' on the map",
       [](Script& s) {
         if (!s.WaitStatus([&](auto done) {
               s.app->Open(s.maps->PageUrl(), done);
             })) {
           return false;
         }
         return s.WaitStatus([&](auto done) {
           s.app->Search("653 5th Ave, New York", done);
         });
       }},
      {"T2-A", "Alice sees the location map automatically",
       [](Script& s) {
         if (!s.Synced()) {
           return false;
         }
         auto [x, y] = MapsSite::Geocode("653 5th Ave, New York");
         Element* map = s.alice_browser->document()->ById("map");
         return map != nullptr && map->AttrOr("data-x") == std::to_string(x) &&
                map->AttrOr("data-y") == std::to_string(y);
       }},
      {"T3-B", "Bob zooms in/out and drags the map",
       [](Script& s) {
         return s.WaitStatus([&](auto done) { s.app->ZoomIn(done); }) &&
                s.WaitStatus([&](auto done) { s.app->ZoomOut(done); }) &&
                s.WaitStatus([&](auto done) { s.app->Pan(1, 1, done); }) &&
                s.WaitStatus([&](auto done) { s.app->Pan(-1, 0, done); });
       }},
      {"T3-A", "Alice sees the map updates automatically",
       [](Script& s) {
         if (!s.Synced()) {
           return false;
         }
         Element* bob_map = s.bob->document()->ById("map");
         Element* alice_map = s.alice_browser->document()->ById("map");
         return bob_map != nullptr && alice_map != nullptr &&
                bob_map->AttrOr("data-x") == alice_map->AttrOr("data-x") &&
                bob_map->AttrOr("data-z") == alice_map->AttrOr("data-z");
       }},
      {"T4-B", "Bob clicks to the street view",
       [](Script& s) {
         return s.WaitStatus([&](auto done) { s.app->ShowStreetView(done); });
       }},
      {"T4-A", "Alice sees the street view automatically",
       [](Script& s) {
         return s.Synced() &&
                s.alice_browser->document()->ById("svflash") != nullptr;
       }},
      {"T5-B", "Bob points at the four red roof show-windows of Cartier",
       [](Script& s) {
         Element* caption = s.bob->document()->ById("svcaption");
         return caption != nullptr &&
                caption->TextContent().find("Cartier") != std::string::npos;
       }},
      {"T5-A", "Alice finds the show-windows and agrees on the spot",
       [](Script& s) {
         Element* caption = s.alice_browser->document()->ById("svcaption");
         return caption != nullptr &&
                caption->TextContent().find("red roof") != std::string::npos;
       }},
      {"T6-B", "Bob continues to the shop homepage",
       [](Script& s) {
         auto stats = s.session->CoNavigate(
             Url::Make("http", "www.shop.test", 80, "/"));
         return stats.ok();
       }},
      {"T6-A", "Alice sees the shop homepage automatically",
       [](Script& s) {
         return s.alice_browser->document()->ById("featured") != nullptr;
       }},
      {"T7-B", "Bob searches and clicks to find a MacBook Air",
       [](Script& s) {
         Element* form = s.bob->document()->ById("searchform");
         if (form == nullptr ||
             !Browser::FillField(form, "q", "macbook air").ok()) {
           return false;
         }
         bool done = false;
         if (!s.bob->SubmitForm(form, [&](const Status&, const PageLoadStats&) {
                    done = true;
                  })
                  .ok()) {
           return false;
         }
         if (!s.WaitCondition([&] { return done; })) {
           return false;
         }
         // Click the first result.
         Element* link = nullptr;
         s.bob->document()->ForEachElement([&](Element* element) {
           if (element->tag_name() == "a" &&
               element->AttrOr("href").find("/product/mba13") !=
                   std::string::npos) {
             link = element;
             return false;
           }
           return true;
         });
         if (link == nullptr) {
           return false;
         }
         done = false;
         if (!s.bob->ClickLink(link, [&](const Status&, const PageLoadStats&) {
                    done = true;
                  })
                  .ok()) {
           return false;
         }
         return s.WaitCondition([&] { return done; });
       }},
      {"T7-A", "Alice sees the product pages automatically",
       [](Script& s) {
         return s.Synced() &&
                s.alice_browser->document()->ById("addform") != nullptr;
       }},
      {"T8-B", "Bob asks Alice to choose a different MacBook Air",
       [](Script&) { return true; /* voice channel, out of band */ }},
      {"T8-A", "Alice searches/clicks and picks the 11-inch model",
       [](Script& s) {
         Element* link = nullptr;
         s.alice_browser->document()->ForEachElement([&](Element* element) {
           if (element->tag_name() == "a" &&
               element->AttrOr("href").find("/") != std::string::npos &&
               element->AttrOr("href").find("shop") != std::string::npos &&
               element->TextContent() == "Shop home") {
             link = element;
             return false;
           }
           return true;
         });
         if (link == nullptr || !s.alice->ClickElement(link).ok()) {
           return false;
         }
         s.alice->PollNow();
         if (!s.WaitCondition([&] {
               return s.alice_browser->document()->ById("featured") != nullptr;
             })) {
           return false;
         }
         Element* product = nullptr;
         s.alice_browser->document()->ForEachElement([&](Element* element) {
           if (element->tag_name() == "a" &&
               element->AttrOr("href").find("/product/mba11") !=
                   std::string::npos) {
             product = element;
             return false;
           }
           return true;
         });
         if (product == nullptr || !s.alice->ClickElement(product).ok()) {
           return false;
         }
         s.alice->PollNow();
         return s.WaitCondition([&] {
           Element* title = s.alice_browser->document()->ById("ptitle");
           return title != nullptr &&
                  title->TextContent().find("11-inch") != std::string::npos;
         });
       }},
      {"T9-B", "Bob adds the laptop to the cart and starts checkout",
       [](Script& s) {
         bool done = false;
         Element* add = s.bob->document()->ById("addform");
         if (add == nullptr ||
             !s.bob->SubmitForm(add, [&](const Status&, const PageLoadStats&) {
                    done = true;
                  })
                  .ok()) {
           return false;
         }
         if (!s.WaitCondition([&] { return done; })) {
           return false;
         }
         done = false;
         s.bob->Navigate(Url::Make("http", "www.shop.test", 80, "/checkout"),
                         [&](const Status&, const PageLoadStats&) {
                           done = true;
                         });
         return s.WaitCondition([&] { return done; }) &&
                s.bob->document()->ById("shipform") != nullptr;
       }},
      {"T9-A", "Alice fills the shipping address form",
       [](Script& s) {
         if (!s.Synced()) {
           return false;
         }
         Element* form = s.alice_browser->document()->ById("shipform");
         if (form == nullptr) {
           return false;
         }
         for (auto [field, value] :
              {std::pair<const char*, const char*>{"fullname", "Alice C."},
               {"street", "653 5th Ave"},
               {"city", "New York"},
               {"state", "NY"},
               {"zip", "10022"},
               {"phone", "555-0100"}}) {
           if (!s.alice->FillFormField(form, field, value).ok()) {
             return false;
           }
         }
         s.alice->PollNow();
         return s.WaitCondition([&] {
           Element* host_form = s.bob->document()->ById("shipform");
           if (host_form == nullptr) {
             return false;
           }
           bool filled = false;
           host_form->ForEachElement([&](Element* element) {
             if (element->AttrOr("name") == "phone" &&
                 element->AttrOr("value") == "555-0100") {
               filled = true;
               return false;
             }
             return true;
           });
           return filled;
         });
       }},
      {"T10-B", "Bob finishes the checkout",
       [](Script& s) {
         bool done = false;
         Element* form = s.bob->document()->ById("shipform");
         if (form == nullptr ||
             !s.bob->SubmitForm(form, [&](const Status&, const PageLoadStats&) {
                    done = true;
                  })
                  .ok()) {
           return false;
         }
         return s.WaitCondition([&] { return done; }) &&
                s.bob->document()->ById("confirm") != nullptr;
       }},
      {"T10-A", "Alice sees the confirmation and leaves the session",
       [](Script& s) {
         if (!s.Synced() ||
             s.alice_browser->document()->ById("confirm") == nullptr) {
           return false;
         }
         s.alice->Leave();
         return !s.alice->joined();
       }},
  };
}

}  // namespace

ScriptResult RunTable2Session(const ScriptOptions& options) {
  EventLoop loop;
  Network network(&loop);
  Rng think_rng(options.seed);

  SessionOptions session_options;
  session_options.profile = LanProfile();
  session_options.poll_interval = options.poll_interval;
  network.AddHost("maps.test", {.uplink_bps = 20'000'000, .downlink_bps = 0});
  network.AddHost("www.shop.test",
                  {.uplink_bps = 20'000'000, .downlink_bps = 0});
  MapsSite maps(&loop, &network, "maps.test");
  ShopSite shop(&loop, &network, "www.shop.test");

  CoBrowsingSession session(&loop, &network, session_options);
  ScriptResult result;
  if (!session.Start().ok()) {
    result.all_succeeded = false;
    return result;
  }
  MapsApp app(session.host_browser());
  Script script{&loop,
                &session,
                &maps,
                &app,
                session.host_browser(),
                session.participant_browser(0),
                session.snippet(0)};

  SimTime session_start = loop.now();
  for (const TaskSpec& task : BuildTasks()) {
    // Deterministic think time before the task (models the human subject).
    if (options.think_max > options.think_min) {
      int64_t span = options.think_max.micros() - options.think_min.micros();
      Duration think = options.think_min +
                       Duration::Micros(static_cast<int64_t>(
                           think_rng.NextBelow(static_cast<uint64_t>(span))));
      loop.RunFor(think);
    }
    SimTime task_start = loop.now();
    TaskResult task_result;
    task_result.id = task.id;
    task_result.description = task.description;
    task_result.success = task.run(script);
    task_result.sim_time = loop.now() - task_start;
    result.all_succeeded &= task_result.success;
    result.tasks.push_back(std::move(task_result));
  }
  result.total_time = loop.now() - session_start;
  result.polls = session.agent()->metrics().polls_received;
  result.actions_applied = session.agent()->metrics().actions_applied;
  return result;
}

}  // namespace benchutil
}  // namespace rcb
