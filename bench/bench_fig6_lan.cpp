// Figure 6: HTML document load time in the LAN environment.
//
// For each of the 20 Table 1 sites, compares M1 (the time the host browser
// needs to download the HTML document from the origin server) against M2
// (the time the participant browser needs to receive the same content from
// the host over the 100 Mbps LAN). Paper result: M2 < 0.4 s for all sites
// and far below M1.
#include "bench/common.h"

using namespace rcb;
using namespace rcb::benchutil;

int main() {
  PrintBenchHeader(
      "Figure 6 — HTML document load time, LAN (100 Mbps campus network)",
      "M1 = host loads HTML from origin; M2 = participant syncs it from host\n"
      "poll interval 1 s; caches cleared before each run; 5 repetitions");

  std::printf("%-3s %-15s %10s %10s %8s\n", "#", "site", "M1 (s)", "M2 (s)",
              "M2<M1");
  int m2_smaller = 0;
  int m2_under_400ms = 0;
  std::vector<SiteMeasurement> measurements;
  NetworkProfile lan = LanProfile();
  for (const SiteSpec& spec : Table1Sites()) {
    auto m = MeasureSite(spec, lan, /*cache_mode=*/true);
    if (!m.ok()) {
      std::printf("%-3d %-15s measurement failed: %s\n", spec.index,
                  spec.name.c_str(), m.status().ToString().c_str());
      continue;
    }
    bool smaller = m->m2 < m->m1;
    m2_smaller += smaller ? 1 : 0;
    m2_under_400ms += (m->m2 < Duration::Millis(400)) ? 1 : 0;
    std::printf("%-3d %-15s %10s %10s %8s\n", spec.index, spec.name.c_str(),
                Sec(m->m1).c_str(), Sec(m->m2).c_str(), smaller ? "yes" : "NO");
    measurements.push_back(*m);
  }
  PrintRule();
  std::printf("shape check: M2 < M1 on %d/20 sites (paper: 20/20)\n", m2_smaller);
  std::printf("shape check: M2 < 0.4 s on %d/20 sites (paper: 20/20)\n",
              m2_under_400ms);

  obs::BenchReport report = MakeReport("fig6_lan", "lan", /*cache_mode=*/true,
                                       /*repetitions=*/5);
  AddMeasurementDistributions(&report, measurements);
  report.AddValue("m2_smaller_than_m1_sites", "sites", obs::Provenance::kSim,
                  m2_smaller);
  report.AddValue("m2_under_400ms_sites", "sites", obs::Provenance::kSim,
                  m2_under_400ms);
  WriteReport(report);
  return 0;
}
