// Hot-path benchmark: per-update serialization cost, incremental vs full
// (docs/PERF_MODEL.md).
//
// The serialization cache makes producing snapshot bytes proportional to the
// change instead of the page. This bench quantifies that: for each corpus
// site it drives repeated single-field updates (the paper's motivating small
// mutations) through two generators sharing one host document — one with
// incremental serialization on (warm cache), one with it off (the pre-cache
// full path) — and compares the real CPU time of one update's serialization:
// the Fig. 3 extract stage plus the Fig. 4 snapshot XML encode. The encode
// step belongs in the measurement because that is where the full path pays
// its JsEscape of every payload byte; the incremental path splices
// pre-escaped CDATA there. Each update also asserts the two XML outputs are
// byte-identical, so the speedup never comes from diverging bytes.
//
// BENCH_hotpath.json carries the distributions plus `speedup_median`, the
// corpus-median full/incremental ratio that scripts/ci.sh ratchets: the
// acceptance floor is 5x, and a change may not regress the committed ratio
// by more than 20% (one re-run absorbs builder noise).
//
// RCB_HOTPATH_SITES=<n> caps the corpus subset (sanitized CI runs use a
// reduced sweep); default is the full Table 1 corpus.
#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bench/common.h"
#include "src/core/content_generator.h"
#include "src/core/protocol.h"
#include "src/html/dom.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

constexpr int kRounds = 9;            // odd: p50 is a real sample
constexpr int kUpdatesPerRound = 8;   // averaged per round for sub-us signal

double Percentile50(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0.0 : samples[samples.size() / 2];
}

struct SiteHotpath {
  double incremental_p50_us = 0;  // extract + XML encode per update, warm
  double full_p50_us = 0;         // extract + XML encode, incremental off
  double speedup = 0;             // full / incremental
  double hit_rate = 0;            // serialize-cache hits / lookups
  double generate_p50_us = 0;     // whole pipeline per update, incremental
};

int64_t MicrosBetween(std::chrono::steady_clock::time_point begin,
                      std::chrono::steady_clock::time_point end) {
  return std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
      .count();
}

// One single-field update against the bench's status element.
void MutateStatus(Browser* browser, int64_t doc_time) {
  browser->MutateDocument([&](Document* document) {
    Element* status = document->ById("rcb-bench-status");
    status->RemoveAllChildren();
    status->AppendChild(MakeText("tick " + std::to_string(doc_time)));
  });
}

SiteHotpath MeasureHotpath(const SiteSpec& spec) {
  EventLoop loop;
  Network network(&loop);
  network.AddHost(spec.host, {});
  network.AddHost("host-pc", {});
  auto server = InstallSite(&loop, &network, spec);
  Browser browser(&loop, &network, "host-pc");
  bool done = false;
  browser.Navigate(Url::Make("http", spec.host, 80, "/"),
                   [&](const Status&, const PageLoadStats&) { done = true; });
  loop.RunUntilCondition([&] { return done; });

  // The single field the updates touch, inserted once before measuring.
  browser.MutateDocument([](Document* document) {
    auto status = MakeElement("div");
    status->SetAttribute("id", "rcb-bench-status");
    status->AppendChild(MakeText("tick 0"));
    document->body()->AppendChild(std::move(status));
  });

  ContentGenerator incremental(&browser);  // defaults: incremental on
  GeneratorTuning full_tuning;
  full_tuning.incremental_serialize = false;
  ContentGenerator full(&browser, full_tuning);
  ContentGenOptions options;
  options.cache_mode = true;
  options.agent_url = Url::Make("http", "host-pc", 3000, "/");

  // Warm-up plus byte-identity gate (untimed): the incremental XML must equal
  // the full path's on every warmup update, or the speedup is meaningless.
  int64_t doc_time = 1;
  for (int update = 0; update < 3; ++update) {
    ++doc_time;
    MutateStatus(&browser, doc_time);
    GenerationResult warm = incremental.Generate(doc_time, options);
    GenerationResult cold = full.Generate(doc_time, options);
    std::string warm_xml =
        SerializeSnapshotXml(warm.snapshot, nullptr, &warm.escaped, nullptr);
    if (warm_xml != SerializeSnapshotXml(cold.snapshot)) {
      std::fprintf(stderr,
                   "FAIL: %s update %lld: incremental snapshot XML diverged "
                   "from the full path\n",
                   spec.name.c_str(), static_cast<long long>(doc_time));
      std::exit(2);
    }
  }

  // Each round measures one block of warm updates then one block of cold
  // updates. Blocks (not per-update interleaving) keep each path in the
  // steady state it would have in a deployed agent — one generator per
  // session, its cache entries resident; the first update after a block
  // switch pays the cache transition and goes uncounted. Adjacent blocks
  // share their timing epoch, so the per-round ratio cancels the machine's
  // epoch-scale noise and the site speedup is the median of paired ratios.
  std::vector<double> incremental_us, full_us, generate_us, ratios;
  for (int round = 0; round < kRounds; ++round) {
    ++doc_time;
    MutateStatus(&browser, doc_time);
    incremental.Generate(doc_time, options);  // uncounted transition update
    int64_t incremental_serialize = 0, generate_total = 0;
    for (int update = 0; update < kUpdatesPerRound; ++update) {
      ++doc_time;
      MutateStatus(&browser, doc_time);
      GenerationResult warm = incremental.Generate(doc_time, options);
      auto t0 = std::chrono::steady_clock::now();
      std::string warm_xml = SerializeSnapshotXml(
          warm.snapshot, nullptr, &warm.escaped, nullptr);
      auto t1 = std::chrono::steady_clock::now();
      incremental_serialize +=
          warm.stage_extract.micros() + MicrosBetween(t0, t1);
      generate_total += warm.wall_time.micros() + MicrosBetween(t0, t1);
    }
    ++doc_time;
    MutateStatus(&browser, doc_time);
    full.Generate(doc_time, options);  // uncounted transition update
    int64_t full_serialize = 0;
    for (int update = 0; update < kUpdatesPerRound; ++update) {
      ++doc_time;
      MutateStatus(&browser, doc_time);
      GenerationResult cold = full.Generate(doc_time, options);
      auto t0 = std::chrono::steady_clock::now();
      std::string cold_xml = SerializeSnapshotXml(cold.snapshot);
      auto t1 = std::chrono::steady_clock::now();
      full_serialize += cold.stage_extract.micros() + MicrosBetween(t0, t1);
    }
    double incremental_avg =
        static_cast<double>(incremental_serialize) / kUpdatesPerRound;
    double full_avg = static_cast<double>(full_serialize) / kUpdatesPerRound;
    incremental_us.push_back(incremental_avg);
    full_us.push_back(full_avg);
    generate_us.push_back(static_cast<double>(generate_total) /
                          kUpdatesPerRound);
    ratios.push_back(incremental_avg > 0 ? full_avg / incremental_avg : 0.0);
  }

  SiteHotpath out;
  out.incremental_p50_us = Percentile50(incremental_us);
  out.full_p50_us = Percentile50(full_us);
  out.speedup = Percentile50(ratios);
  const SerializeCache::Stats& stats = incremental.serialize_cache_stats();
  uint64_t lookups = stats.hits + stats.misses;
  out.hit_rate = lookups > 0 ? static_cast<double>(stats.hits) /
                                   static_cast<double>(lookups)
                             : 0.0;
  out.generate_p50_us = Percentile50(generate_us);
  if (std::getenv("RCB_HOTPATH_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "dbg %s: hits=%llu misses=%llu evictions=%llu spans=%zu "
                 "bytes=%zu hit_bytes=%llu miss_bytes=%llu\n",
                 spec.name.c_str(), (unsigned long long)stats.hits,
                 (unsigned long long)stats.misses,
                 (unsigned long long)stats.evictions, stats.spans, stats.bytes,
                 (unsigned long long)stats.hit_bytes,
                 (unsigned long long)stats.miss_bytes);
  }
  return out;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Hot path — per-update serialize cost, incremental vs full (real CPU)",
      "single-field updates against a warm serialization cache; per-update "
      "serialize\n(extract + snapshot XML encode) p50 over 9 rounds x 8 "
      "updates; speedup = full /\nincremental (CI floor 5x on the median)");

  size_t max_sites = Table1Sites().size();
  if (const char* env = std::getenv("RCB_HOTPATH_SITES"); env != nullptr) {
    max_sites = std::min<size_t>(max_sites, std::strtoul(env, nullptr, 10));
  }

  std::printf("%-3s %-15s %9s %14s %14s %9s %8s\n", "#", "site", "size(KB)",
              "full p50(us)", "incr p50(us)", "speedup", "hit%");
  std::vector<double> incremental_p50, full_p50, speedups, hit_rates,
      generate_p50;
  for (size_t i = 0; i < max_sites; ++i) {
    const SiteSpec& spec = Table1Sites()[i];
    SiteHotpath site = MeasureHotpath(spec);
    incremental_p50.push_back(site.incremental_p50_us);
    full_p50.push_back(site.full_p50_us);
    speedups.push_back(site.speedup);
    hit_rates.push_back(site.hit_rate);
    generate_p50.push_back(site.generate_p50_us);
    std::printf("%-3d %-15s %9.1f %14.1f %14.1f %8.1fx %7.1f%%\n", spec.index,
                spec.name.c_str(), spec.page_kb, site.full_p50_us,
                site.incremental_p50_us, site.speedup, 100.0 * site.hit_rate);
  }
  PrintRule();
  double speedup_median = Percentile50(speedups);
  std::printf("corpus median speedup %.1fx (acceptance floor 5x); cache hit "
              "rate median %.1f%%\n",
              speedup_median, 100.0 * Percentile50(hit_rates));

  obs::BenchReport report = MakeReport("hotpath", "none", /*cache_mode=*/true,
                                       /*repetitions=*/kRounds);
  report.SetConfig("updates_per_round", std::to_string(kUpdatesPerRound));
  report.SetConfig("sites", std::to_string(incremental_p50.size()));
  report.AddDistribution("serialize_full_p50_us", "us", obs::Provenance::kWall,
                         full_p50);
  report.AddDistribution("serialize_incremental_p50_us", "us",
                         obs::Provenance::kWall, incremental_p50);
  report.AddDistribution("incremental_speedup", "ratio",
                         obs::Provenance::kWall, speedups);
  report.AddDistribution("generate_incremental_p50_us", "us",
                         obs::Provenance::kWall, generate_p50);
  report.AddDistribution("serialize_cache_hit_rate", "ratio",
                         obs::Provenance::kSim, hit_rates);
  report.AddValue("speedup_median", "ratio", obs::Provenance::kWall,
                  speedup_median);
  WriteReport(report);

  // Acceptance floor, overridable for instrumented builds (the sanitized CI
  // pass slows both paths but not equally; scripts/ci.sh passes a lower bar).
  double floor = 5.0;
  if (const char* env = std::getenv("RCB_HOTPATH_FLOOR"); env != nullptr) {
    floor = std::strtod(env, nullptr);
  }
  if (speedup_median < floor) {
    std::fprintf(stderr,
                 "FAIL: corpus median incremental speedup %.2fx below the "
                 "%.1fx acceptance floor\n",
                 speedup_median, floor);
    return 1;
  }
  return 0;
}
