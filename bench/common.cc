#include "bench/common.h"

#include <cstdlib>

#include "src/obs/trace_export.h"
#include "src/util/strings.h"

namespace rcb {
namespace benchutil {
namespace {

const char* TraceDir() {
  const char* dir = std::getenv("RCB_TRACE_DIR");
  return (dir != nullptr && dir[0] != '\0') ? dir : nullptr;
}

std::string& TraceBenchName() {
  static std::string name = "bench";
  return name;
}

}  // namespace

bool TraceEnvEnabled() { return TraceDir() != nullptr; }

void SetTraceBenchName(const std::string& name) { TraceBenchName() = name; }

void ApplyTraceEnv(SessionOptions* options) {
  if (TraceEnvEnabled()) {
    options->enable_trace = true;
  }
}

void DumpSessionTraces(CoBrowsingSession* session) {
  const char* dir = TraceDir();
  if (dir == nullptr || session == nullptr) {
    return;
  }
  // Trace ids are <pid>-<poll_seq>, unique within one session but repeated
  // across the fresh sessions each repetition spins up; an "s<n>:" ordinal
  // prefix keeps ids unique across the whole appended file while preserving
  // the agent<->snippet joins within each session. The ordinal only advances
  // per dumped session, so repeated runs produce identical files.
  static uint64_t session_ordinal = 0;
  ++session_ordinal;
  std::string prefix = StrFormat("s%llu:", (unsigned long long)session_ordinal);
  auto export_log = [&prefix](const obs::TraceLog& log,
                              const std::string& component) {
    std::string out;
    for (obs::TraceEvent event : log.Events()) {
      if (!event.trace_id.empty()) {
        event.trace_id = prefix + event.trace_id;
      }
      out += obs::TraceEventJsonLine(event, component);
      out.push_back('\n');
    }
    return out;
  };
  std::string jsonl = export_log(session->agent()->trace_log(), "agent");
  for (size_t i = 0; i < session->participant_count(); ++i) {
    jsonl += export_log(session->snippet(i)->trace_log(),
                        "snippet-" + session->snippet(i)->participant_id());
  }
  std::string path =
      std::string(dir) + "/TRACE_" + TraceBenchName() + ".jsonl";
  if (Status status = obs::AppendToFile(path, jsonl); !status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
}

void DumpTraceLogs(
    const std::vector<std::pair<std::string, const obs::TraceLog*>>& logs) {
  const char* dir = TraceDir();
  if (dir == nullptr) {
    return;
  }
  std::string jsonl;
  for (const auto& [component, log] : logs) {
    for (const obs::TraceEvent& event : log->Events()) {
      jsonl += obs::TraceEventJsonLine(event, component);
      jsonl.push_back('\n');
    }
  }
  std::string path =
      std::string(dir) + "/TRACE_" + TraceBenchName() + ".jsonl";
  if (Status status = obs::AppendToFile(path, jsonl); !status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
}

StatusOr<SiteMeasurement> MeasureSite(const SiteSpec& spec,
                                      const NetworkProfile& profile,
                                      bool cache_mode, int repetitions,
                                      size_t participant_count) {
  SiteMeasurement out;
  out.spec = &spec;
  int64_t m5_total_us = 0;
  int64_t m6_total_us = 0;

  for (int rep = 0; rep < repetitions; ++rep) {
    // Fresh everything per repetition: empty caches on both browsers,
    // matching the paper's "caches of both browsers were cleaned up".
    EventLoop loop;
    Network network(&loop);
    network.set_slow_start_enabled(true);
    SessionOptions options;
    options.profile = profile;
    options.cache_mode = cache_mode;
    options.participant_count = participant_count;
    options.poll_interval = Duration::Seconds(1.0);
    ApplyTraceEnv(&options);

    AddOriginServer(&network, profile, spec.host, spec.server_bps,
                    spec.server_latency, options.host_machine,
                    options.participant_machine_prefix + "-1");
    for (size_t i = 2; i <= participant_count; ++i) {
      network.SetLatency(
          options.participant_machine_prefix + "-" + std::to_string(i),
          spec.host, spec.server_latency + profile.access_latency);
    }
    auto server = InstallSite(&loop, &network, spec);

    CoBrowsingSession session(&loop, &network, options);
    RCB_RETURN_IF_ERROR(session.Start());
    uint64_t uplink_before =
        0;  // host uplink payload ~= agent-side bytes sent on its connections
    (void)uplink_before;

    auto stats = session.CoNavigate(Url::Make("http", spec.host, 80, "/"));
    if (!stats.ok()) {
      return stats.status();
    }
    if (rep == 0) {
      out.m1 = stats->host_html_time;
      Duration worst_m2;
      Duration worst_objects;
      for (size_t i = 0; i < participant_count; ++i) {
        if (stats->participant_content_time[i] > worst_m2) {
          worst_m2 = stats->participant_content_time[i];
        }
        if (stats->participant_objects_time[i] > worst_objects) {
          worst_objects = stats->participant_objects_time[i];
        }
      }
      out.m2 = worst_m2;
      out.m3_or_m4 = worst_objects;
      out.objects_from_host = stats->participant_objects_from_host[0];
      out.snapshot_bytes = session.agent()->metrics().last_snapshot_bytes;
    }
    m5_total_us += session.agent()->metrics().last_generation_time.micros();
    m6_total_us += session.snippet(0)->metrics().last_apply_time.micros();
    DumpSessionTraces(&session);
  }
  out.m5 = Duration::Micros(m5_total_us / repetitions);
  out.m6 = Duration::Micros(m6_total_us / repetitions);
  return out;
}

StatusOr<UpdateMeasurement> MeasureSmallUpdates(const SiteSpec& spec,
                                                const NetworkProfile& profile,
                                                bool enable_delta, int rounds) {
  EventLoop loop;
  Network network(&loop);
  network.set_slow_start_enabled(true);
  SessionOptions options;
  options.profile = profile;
  options.cache_mode = true;
  options.poll_interval = Duration::Seconds(1.0);
  options.enable_delta = enable_delta;
  ApplyTraceEnv(&options);
  AddOriginServer(&network, profile, spec.host, spec.server_bps,
                  spec.server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  auto server = InstallSite(&loop, &network, spec);

  CoBrowsingSession session(&loop, &network, options);
  RCB_RETURN_IF_ERROR(session.Start());
  auto stats = session.CoNavigate(Url::Make("http", spec.host, 80, "/"));
  RCB_RETURN_IF_ERROR(stats.status());

  AjaxSnippet* snippet = session.snippet(0);
  uint64_t applied = 0;
  SimTime applied_at;
  snippet->SetUpdateListener([&](int64_t) {
    ++applied;
    applied_at = loop.now();
  });

  auto mutate = [&](int round) {
    session.host_browser()->MutateDocument([round](Document* document) {
      if (round == 0) {
        // Warm-up: insert the element the text edits below will target.
        auto status = MakeElement("p");
        status->SetAttribute("id", "rcb-bench-status");
        status->AppendChild(MakeText("live"));
        document->body()->AppendChild(std::move(status));
      } else if (round % 2 == 1) {
        Element* status = document->ById("rcb-bench-status");
        status->RemoveAllChildren();
        status->AppendChild(
            MakeText("breaking item number " + std::to_string(round)));
      } else {
        // Host-side form co-fill; pages without a form fall back to a body
        // data attribute (still a one-attribute change).
        Element* input = document->FindFirst("input");
        if (input != nullptr) {
          input->SetAttribute("value", "query " + std::to_string(round));
        } else {
          document->body()->SetAttribute("data-fill",
                                         std::to_string(round));
        }
      }
    });
  };

  UpdateMeasurement out;
  out.spec = &spec;
  double bytes_total = 0;
  double latency_total_us = 0;
  for (int round = 0; round <= rounds; ++round) {
    uint64_t applied_before = applied;
    uint64_t bytes_before = session.agent()->metrics().content_bytes_sent;
    SimTime start = loop.now();
    mutate(round);
    SimTime deadline = start + Duration::Seconds(10.0);
    while (applied == applied_before && loop.now() < deadline &&
           loop.pending_events() > 0) {
      loop.RunFor(Duration::Millis(10));
    }
    if (applied == applied_before) {
      return DeadlineExceededError("update " + std::to_string(round) +
                                   " never reached the participant");
    }
    if (round == 0) {
      continue;  // warm-up round establishes the target element
    }
    bytes_total += static_cast<double>(
        session.agent()->metrics().content_bytes_sent - bytes_before);
    latency_total_us += static_cast<double>((applied_at - start).micros());
  }
  snippet->SetUpdateListener(nullptr);
  out.bytes_per_update = bytes_total / rounds;
  out.latency_us = latency_total_us / rounds;
  out.patches_served = session.agent()->metrics().patches_served;
  out.patch_fallbacks = session.agent()->metrics().patch_fallback_no_base +
                        session.agent()->metrics().patch_fallback_oversize;
  DumpSessionTraces(&session);
  return out;
}

void PrintRule(int width) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

void PrintBenchHeader(const std::string& title, const std::string& setup) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  if (!setup.empty()) {
    std::printf("%s\n", setup.c_str());
  }
  PrintRule();
}

std::string Sec(Duration d) { return StrFormat("%.3f", d.seconds()); }

std::string Ms(Duration d) {
  return StrFormat("%.3f", static_cast<double>(d.micros()) / 1000.0);
}

obs::BenchReport MakeReport(const std::string& name, const std::string& profile,
                            bool cache_mode, int repetitions) {
  obs::BenchReport report(name);
  report.SetConfig("profile", profile);
  report.SetConfig("cache_mode", cache_mode ? "1" : "0");
  report.SetConfig("repetitions", StrFormat("%d", repetitions));
  report.SetConfig("sites", StrFormat("%zu", Table1Sites().size()));
  // Only stamped when capture is on, so default-run fingerprints are
  // unchanged from the untraced harness.
  if (TraceEnvEnabled()) {
    report.SetConfig("trace", "1");
  }
  return report;
}

void AddMeasurementDistributions(
    obs::BenchReport* report,
    const std::vector<SiteMeasurement>& measurements) {
  std::vector<double> m1, m2, m3_or_m4, m5, m6, snapshot_bytes, from_host;
  for (const SiteMeasurement& m : measurements) {
    m1.push_back(static_cast<double>(m.m1.micros()));
    m2.push_back(static_cast<double>(m.m2.micros()));
    m3_or_m4.push_back(static_cast<double>(m.m3_or_m4.micros()));
    m5.push_back(static_cast<double>(m.m5.micros()));
    m6.push_back(static_cast<double>(m.m6.micros()));
    snapshot_bytes.push_back(static_cast<double>(m.snapshot_bytes));
    from_host.push_back(static_cast<double>(m.objects_from_host));
  }
  report->AddDistribution("m1_host_html_us", "us", obs::Provenance::kSim, m1);
  report->AddDistribution("m2_participant_sync_us", "us", obs::Provenance::kSim,
                          m2);
  report->AddDistribution("m3_or_m4_objects_us", "us", obs::Provenance::kSim,
                          m3_or_m4);
  report->AddDistribution("m5_generation_us", "us", obs::Provenance::kWall, m5);
  report->AddDistribution("m6_apply_us", "us", obs::Provenance::kWall, m6);
  report->AddDistribution("snapshot_bytes", "bytes", obs::Provenance::kSim,
                          snapshot_bytes);
  report->AddDistribution("objects_from_host", "objects", obs::Provenance::kSim,
                          from_host);
}

void WriteReport(const obs::BenchReport& report) {
  Status status = report.WriteFile();
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
}

}  // namespace benchutil
}  // namespace rcb
