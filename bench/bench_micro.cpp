// Microbenchmarks (google-benchmark) of RCB's hot paths: HTML parse and
// serialize over the Table 1 corpus sizes, the Fig. 3 content-generation
// pipeline, Fig. 4 snapshot serialize/parse, the Fig. 5 apply procedure's
// innerHTML set, and HMAC request authentication.
#include <benchmark/benchmark.h>

#include <cctype>

#include "src/core/content_generator.h"
#include "src/core/protocol.h"
#include "src/obs/bench_report.h"
#include "src/crypto/hmac.h"
#include "src/html/parser.h"
#include "src/html/serializer.h"
#include "src/sites/corpus.h"
#include "src/sites/site_server.h"
#include "src/util/escape.h"

namespace rcb {
namespace {

const SiteSpec& SiteByRangeIndex(int64_t index) {
  return Table1Sites()[static_cast<size_t>(index)];
}

void BM_HtmlParse(benchmark::State& state) {
  const SiteSpec& spec = SiteByRangeIndex(state.range(0));
  GeneratedSite site = GenerateHomepage(spec);
  for (auto _ : state) {
    auto document = ParseDocument(site.html);
    benchmark::DoNotOptimize(document);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * site.html.size()));
  state.SetLabel(spec.name);
}
BENCHMARK(BM_HtmlParse)->Arg(1)->Arg(7)->Arg(12)->Arg(19);  // google..nytimes

void BM_HtmlSerialize(benchmark::State& state) {
  const SiteSpec& spec = SiteByRangeIndex(state.range(0));
  GeneratedSite site = GenerateHomepage(spec);
  auto document = ParseDocument(site.html);
  for (auto _ : state) {
    std::string out = SerializeNode(*document);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_HtmlSerialize)->Arg(1)->Arg(12);

void BM_InnerHtmlSet(benchmark::State& state) {
  const SiteSpec& spec = SiteByRangeIndex(state.range(0));
  GeneratedSite site = GenerateHomepage(spec);
  auto document = ParseDocument(site.html);
  std::string body_html = document->body()->InnerHtml();
  auto target = MakeElement("body");
  for (auto _ : state) {
    target->SetInnerHtml(body_html);
    benchmark::DoNotOptimize(target);
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_InnerHtmlSet)->Arg(1)->Arg(12);

// Full Fig. 3 pipeline against a live browser holding a corpus page.
// Incremental serialization is pinned OFF so the series keeps measuring the
// full per-generation cost across commits; the incremental path has its own
// benchmark below and a dedicated artifact (bench_hotpath).
void BM_ContentGeneration(benchmark::State& state) {
  const SiteSpec& spec = SiteByRangeIndex(state.range(0));
  EventLoop loop;
  Network network(&loop);
  network.AddHost(spec.host, {});
  network.AddHost("host-pc", {});
  auto server = InstallSite(&loop, &network, spec);
  Browser browser(&loop, &network, "host-pc");
  bool done = false;
  browser.Navigate(Url::Make("http", spec.host, 80, "/"),
                   [&](const Status&, const PageLoadStats&) { done = true; });
  loop.RunUntilCondition([&] { return done; });

  GeneratorTuning tuning;
  tuning.incremental_serialize = false;
  ContentGenerator generator(&browser, tuning);
  ContentGenOptions options;
  options.cache_mode = true;
  options.agent_url = Url::Make("http", "host-pc", 3000, "/");
  for (auto _ : state) {
    GenerationResult result = generator.Generate(1, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_ContentGeneration)->Arg(1)->Arg(7)->Arg(12);

// Same pipeline with the serialization cache warm and one single-field
// update per iteration — the change-proportional path (docs/PERF_MODEL.md).
void BM_ContentGenerationIncremental(benchmark::State& state) {
  const SiteSpec& spec = SiteByRangeIndex(state.range(0));
  EventLoop loop;
  Network network(&loop);
  network.AddHost(spec.host, {});
  network.AddHost("host-pc", {});
  auto server = InstallSite(&loop, &network, spec);
  Browser browser(&loop, &network, "host-pc");
  bool done = false;
  browser.Navigate(Url::Make("http", spec.host, 80, "/"),
                   [&](const Status&, const PageLoadStats&) { done = true; });
  loop.RunUntilCondition([&] { return done; });
  browser.MutateDocument([](Document* document) {
    auto status = MakeElement("div");
    status->SetAttribute("id", "bench-status");
    status->AppendChild(MakeText("tick"));
    document->body()->AppendChild(std::move(status));
  });

  ContentGenerator generator(&browser);  // defaults: incremental on
  ContentGenOptions options;
  options.cache_mode = true;
  options.agent_url = Url::Make("http", "host-pc", 3000, "/");
  generator.Generate(0, options);  // warm the cache
  int64_t doc_time = 0;
  for (auto _ : state) {
    ++doc_time;
    browser.MutateDocument([&](Document* document) {
      Element* status = document->ById("bench-status");
      status->RemoveAllChildren();
      status->AppendChild(MakeText("tick " + std::to_string(doc_time)));
    });
    GenerationResult result = generator.Generate(doc_time, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_ContentGenerationIncremental)->Arg(1)->Arg(7)->Arg(12);

void BM_SnapshotSerializeParse(benchmark::State& state) {
  const SiteSpec& spec = SiteByRangeIndex(state.range(0));
  GeneratedSite site = GenerateHomepage(spec);
  auto document = ParseDocument(site.html);
  Snapshot snapshot;
  snapshot.doc_time_ms = 1;
  snapshot.has_content = true;
  ElementPayload body;
  body.tag = "body";
  body.inner_html = document->body()->InnerHtml();
  snapshot.body = body;
  for (auto _ : state) {
    std::string xml = SerializeSnapshotXml(snapshot);
    auto parsed = ParseSnapshotXml(xml);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetLabel(spec.name);
}
BENCHMARK(BM_SnapshotSerializeParse)->Arg(1)->Arg(12);

void BM_HmacSign(benchmark::State& state) {
  std::string key = "sessionkey0123456789";
  std::string body(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    std::string mac = HmacSha256Hex(key, body);
    benchmark::DoNotOptimize(mac);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSign)->Arg(128)->Arg(1024)->Arg(16384);

void BM_JsEscapeRoundTrip(benchmark::State& state) {
  const SiteSpec& spec = SiteByRangeIndex(1);
  GeneratedSite site = GenerateHomepage(spec);
  for (auto _ : state) {
    std::string escaped = JsEscape(site.html);
    std::string back = JsUnescape(escaped);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * site.html.size()));
}
BENCHMARK(BM_JsEscapeRoundTrip);

// Console output stays google-benchmark's; this reporter additionally captures
// every per-iteration run so main() can emit the BENCH_micro.json artifact.
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double real_ns = 0;
    int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) {
        continue;
      }
      Captured captured;
      captured.name = run.benchmark_name();
      captured.real_ns = run.GetAdjustedRealTime();
      captured.iterations = run.iterations;
      captured_.push_back(std::move(captured));
    }
  }

  const std::vector<Captured>& captured() const { return captured_; }

 private:
  std::vector<Captured> captured_;
};

// "BM_HtmlParse/12" -> "BM_HtmlParse_12": metric names share the Prometheus
// character set, so everything outside [A-Za-z0-9_] folds to '_'.
std::string MetricName(const std::string& benchmark_name) {
  std::string out = benchmark_name;
  for (char& c : out) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      c = '_';
    }
  }
  return out;
}

}  // namespace
}  // namespace rcb

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  rcb::ArtifactReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  rcb::obs::BenchReport report("micro");
  report.SetConfig("profile", "none");
  report.SetConfig("cache_mode", "1");
  report.SetConfig("repetitions", "1");
  report.SetConfig("sites", "corpus-subset");
  for (const auto& captured : reporter.captured()) {
    std::string name = rcb::MetricName(captured.name);
    report.AddValue(name + "_real_ns", "ns", rcb::obs::Provenance::kWall,
                    captured.real_ns);
    report.AddValue(name + "_iterations", "iterations",
                    rcb::obs::Provenance::kWall,
                    static_cast<double>(captured.iterations));
  }
  rcb::Status written = report.WriteFile();
  if (!written.ok()) {
    std::fprintf(stderr, "warning: bench artifact not written: %s\n",
                 written.ToString().c_str());
  }
  benchmark::Shutdown();
  return 0;
}
