// Transport: streamed sync vs classic polling (DESIGN.md §15).
//
// Runs the same workload under four transports on each network profile
// {lan, wan, mobile} — classic 1 s polling (the committed baseline),
// adaptive polling, held long-polls, and sequence-stamped HMAC frames —
// and reports, per (profile, mode):
//   * median / worst update-visible latency: host mutation -> participant
//     applied it, over seeded mutation phases,
//   * idle traffic: wire bytes/min plus the snippet's own wasted-poll
//     counters (empty classic round trips and their request+response bytes),
//   * the drop probe: agent restart mid-stream -> stream failure -> signed
//     resume reconnect, and whether the next change still lands.
// A final fan-out section runs S sessions x P pollers on one RcbHost under
// classic polling and under framed streaming, comparing sync latency and
// idle bytes per participant.
//
// Shape checks (the ISSUE's floors, enforced here and re-checked by
// scripts/ci.sh check_transport against the committed artifact):
//   * WAN framed median latency at least RCB_TRANSPORT_LATENCY_FLOOR_X
//     (default 2) times better than 1 s polling,
//   * WAN framed idle bytes/min at least RCB_TRANSPORT_IDLE_FLOOR_X
//     (default 10) times better than 1 s polling,
//   * the framed drop probe recovers on every profile via signed resume.
//
// Env knobs (CI shrinks the sweep under sanitizers):
//   RCB_TRANSPORT_MUTATIONS        latency mutations per mode (default 15)
//   RCB_TRANSPORT_IDLE_SECONDS     idle measurement window (default 60)
//   RCB_TRANSPORT_FANOUT_SESSIONS  fan-out sessions (default 8)
//   RCB_TRANSPORT_FANOUT_PARTICIPANTS  pollers per fan-out session (default 3)
#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/host/rcb_host.h"
#include "src/html/parser.h"
#include "src/sites/corpus.h"
#include "src/util/strings.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

enum class Mode { kPoll, kAdaptive, kLongPoll, kFrames };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kPoll: return "poll";
    case Mode::kAdaptive: return "adaptive";
    case Mode::kLongPoll: return "longpoll";
    case Mode::kFrames: return "frames";
  }
  return "?";
}

struct ModeResult {
  Duration median_latency;
  Duration worst_latency;
  double idle_requests_per_minute = 0;
  double idle_bytes_per_minute = 0;
  double wasted_polls_per_minute = 0;
  double wasted_poll_bytes_per_minute = 0;
  bool recovered_after_drop = false;
  uint64_t drop_reconnects = 0;
};

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  long parsed = std::atol(value);
  return parsed <= 0 ? fallback : static_cast<size_t>(parsed);
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  double parsed = std::atof(value);
  return parsed <= 0 ? fallback : parsed;
}

SessionOptions BaseOptions(const NetworkProfile& profile, Mode mode) {
  SessionOptions options;
  options.profile = profile;
  options.participant_count = 1;
  options.poll_interval = Duration::Seconds(1.0);
  // Signed session: polls carry hmac=, framed streams carry per-frame MACs,
  // and the drop probe's reconnect is a signed resume (§3.3).
  options.enable_auth = true;
  options.poll_timeout = Duration::Seconds(2.0);
  options.reconnect_after = 1;
  options.backoff_base = Duration::Millis(250);
  options.backoff_max = Duration::Seconds(2.0);
  options.backoff_jitter = Duration::Millis(100);
  switch (mode) {
    case Mode::kPoll:
      break;
    case Mode::kAdaptive:
      options.adaptive_poll = true;
      options.adaptive_max = Duration::Seconds(8.0);
      break;
    case Mode::kLongPoll:
      options.enable_transport = true;
      options.snippet_stream_mode = 1;
      options.transport_hold = Duration::Seconds(10.0);
      break;
    case Mode::kFrames:
      options.enable_transport = true;
      options.snippet_stream_mode = 2;
      options.transport_heartbeat = Duration::Seconds(5.0);
      break;
  }
  return options;
}

ModeResult RunMode(const NetworkProfile& profile, Mode mode, int mutations,
                   int idle_seconds) {
  EventLoop loop;
  Network network(&loop);
  SessionOptions options = BaseOptions(profile, mode);
  const SiteSpec* spec = FindSite("google.com");
  AddOriginServer(&network, options.profile, spec->host, spec->server_bps,
                  spec->server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  auto server = InstallSite(&loop, &network, *spec);
  CoBrowsingSession session(&loop, &network, options);
  ModeResult result;
  if (!session.Start().ok()) {
    return result;
  }
  if (!session.CoNavigate(Url::Make("http", spec->host, 80, "/")).ok()) {
    return result;
  }

  // Update-visible latency over stratified mutation phases. The poll clock
  // re-anchors on every content response, so a small per-round stride locks
  // onto the poll grid; a 617 ms stride (coprime to the 1 s tick) keeps the
  // phases spread and the polling baseline's median samples the tick-wait
  // fairly.
  std::vector<int64_t> latencies_us;
  latencies_us.reserve(mutations);
  for (int i = 0; i < mutations; ++i) {
    loop.RunFor(Duration::Millis(
        1200 + (static_cast<int64_t>(i) * 617) % 1000));
    uint64_t before = session.snippet(0)->metrics().content_updates;
    SimTime change_at = loop.now();
    session.host_browser()->MutateDocument([i](Document* document) {
      auto marker = MakeElement("div");
      marker->SetAttribute("id", "m" + std::to_string(i));
      document->body()->AppendChild(std::move(marker));
    });
    loop.RunUntilCondition([&] {
      return session.snippet(0)->metrics().content_updates > before;
    });
    latencies_us.push_back((loop.now() - change_at).micros());
    if (std::getenv("RCB_TRANSPORT_DEBUG") != nullptr) {
      std::printf("  mutation %2d at %lld us -> latency %lld us\n", i,
                  static_cast<long long>(change_at.micros()),
                  static_cast<long long>(latencies_us.back()));
    }
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  result.median_latency = Duration::Micros(latencies_us[latencies_us.size() / 2]);
  result.worst_latency = Duration::Micros(latencies_us.back());

  // Idle window: nothing changes; measure what the transport still costs.
  const SnippetMetrics& sm = session.snippet(0)->metrics();
  uint64_t polls_before = session.agent()->metrics().polls_received;
  uint64_t bytes_before = network.total_bytes_transferred();
  uint64_t wasted_before = sm.wasted_polls;
  uint64_t wasted_bytes_before = sm.wasted_poll_bytes;
  loop.RunFor(Duration::Seconds(static_cast<double>(idle_seconds)));
  double minutes = idle_seconds / 60.0;
  result.idle_requests_per_minute = static_cast<double>(
      session.agent()->metrics().polls_received - polls_before) / minutes;
  result.idle_bytes_per_minute = static_cast<double>(
      network.total_bytes_transferred() - bytes_before) / minutes;
  result.wasted_polls_per_minute =
      static_cast<double>(sm.wasted_polls - wasted_before) / minutes;
  result.wasted_poll_bytes_per_minute =
      static_cast<double>(sm.wasted_poll_bytes - wasted_bytes_before) / minutes;

  // Drop probe: restart the agent (every connection including a framed
  // stream dies), then change the page. Recovery must come through the
  // ladder — failure detection, signed resume reconnect, resync — with no
  // operator help.
  uint64_t reconnects_before = sm.reconnects;
  session.agent()->Stop();
  loop.RunFor(Duration::Seconds(1.0));
  if (!session.agent()->Start().ok()) {
    return result;
  }
  uint64_t before = sm.content_updates;
  session.host_browser()->MutateDocument([](Document* document) {
    auto marker = MakeElement("div");
    marker->SetAttribute("id", "after-restart");
    document->body()->AppendChild(std::move(marker));
  });
  SimTime deadline = loop.now() + Duration::Seconds(15.0);
  while (sm.content_updates == before && loop.now() < deadline &&
         loop.pending_events() > 0) {
    loop.RunFor(Duration::Millis(100));
  }
  result.recovered_after_drop = sm.content_updates > before;
  result.drop_reconnects = sm.reconnects - reconnects_before;
  return result;
}

struct FanoutResult {
  double median_latency_us = 0;
  double idle_bytes_per_minute_per_participant = 0;
  std::string health_json;  // /host/health snapshot at the end of the run
};

FanoutResult RunFanout(bool frames, size_t sessions, size_t participants) {
  FanoutResult result;
  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  for (size_t p = 0; p < participants; ++p) {
    std::string machine = "poller-pc-" + std::to_string(p + 1);
    network.AddHost(machine, {});
    network.SetLatency("host-pc", machine, Duration::Millis(1));
  }

  HostConfig config;
  config.base_port = 3000;
  config.limits.metrics_sessions = 0;
  config.limits.max_sessions = 0;
  config.agent_defaults.poll_interval = Duration::Seconds(1.0);
  if (frames) {
    config.agent_defaults.transport.enable_stream = true;
    config.agent_defaults.transport.heartbeat_interval = Duration::Seconds(5.0);
  }
  RcbHost host(&loop, &network, config);
  if (!host.Start().ok()) {
    return result;
  }

  std::vector<HostSession*> hosted(sessions);
  for (size_t s = 0; s < sessions; ++s) {
    auto session = host.CreateSession("s" + std::to_string(s));
    if (!session.ok()) {
      return result;
    }
    hosted[s] = *session;
    hosted[s]->browser->ReplaceDocument(
        ParseDocument(StrFormat(
            "<html><head><title>fanout %zu</title></head>"
            "<body><p id=\"status\">round 0</p></body></html>", s)),
        Url::Make("http", "host-pc", hosted[s]->port, "/doc"));
  }

  struct Poller {
    std::unique_ptr<Browser> browser;
    std::unique_ptr<AjaxSnippet> snippet;
  };
  constexpr int kFirstRoundMs = 2000;
  std::vector<Poller> pollers;
  pollers.reserve(sessions * participants);
  std::vector<int64_t> latency_samples_us;
  size_t joined = 0;
  for (size_t s = 0; s < sessions; ++s) {
    for (size_t p = 0; p < participants; ++p) {
      Poller poller;
      poller.browser = std::make_unique<Browser>(
          &loop, &network, "poller-pc-" + std::to_string(p + 1));
      SnippetConfig snippet_config;
      snippet_config.fetch_objects = false;
      if (frames) {
        snippet_config.stream_mode = 2;
      }
      poller.snippet = std::make_unique<AjaxSnippet>(poller.browser.get(),
                                                     snippet_config);
      poller.snippet->SetUpdateListener(
          [&loop, &latency_samples_us](int64_t doc_time_ms) {
            if (doc_time_ms >= kFirstRoundMs) {
              latency_samples_us.push_back(loop.now().micros() -
                                           doc_time_ms * 1000);
            }
          });
      poller.snippet->Join(hosted[s]->agent->AgentUrl(),
                           [&joined](Status status) {
                             if (status.ok()) {
                               ++joined;
                             }
                           });
      pollers.push_back(std::move(poller));
    }
  }
  loop.RunUntilCondition([&] { return joined == sessions * participants; });
  if (joined != sessions * participants) {
    return result;
  }

  // Two mutation rounds per session, spaced past kFirstRoundMs so the warm-up
  // joins never pollute the latency samples.
  for (int round = 1; round <= 2; ++round) {
    loop.RunFor(Duration::Millis(kFirstRoundMs));
    for (size_t s = 0; s < sessions; ++s) {
      hosted[s]->browser->MutateDocument([round](Document* document) {
        auto marker = MakeElement("div");
        marker->SetAttribute("id", "round-" + std::to_string(round));
        document->body()->AppendChild(std::move(marker));
      });
    }
    loop.RunUntilCondition([&] {
      return latency_samples_us.size() >=
             sessions * participants * static_cast<size_t>(round);
    });
  }
  if (!latency_samples_us.empty()) {
    std::sort(latency_samples_us.begin(), latency_samples_us.end());
    result.median_latency_us = static_cast<double>(
        latency_samples_us[latency_samples_us.size() / 2]);
  }

  // Idle half-minute across the whole fleet, normalized per participant.
  uint64_t bytes_before = network.total_bytes_transferred();
  loop.RunFor(Duration::Seconds(30.0));
  result.idle_bytes_per_minute_per_participant =
      static_cast<double>(network.total_bytes_transferred() - bytes_before) *
      2.0 / static_cast<double>(sessions * participants);

  // Health plane (DESIGN.md §16): the artifact ships this fleet's end-of-run
  // /host/health snapshot.
  HttpRequest health_request;
  health_request.method = HttpMethod::kGet;
  health_request.target = "/host/health";
  result.health_json = host.Route(health_request).body;
  return result;
}

}  // namespace

int main() {
  const int mutations =
      static_cast<int>(EnvSize("RCB_TRANSPORT_MUTATIONS", 15));
  const int idle_seconds =
      static_cast<int>(EnvSize("RCB_TRANSPORT_IDLE_SECONDS", 60));
  const size_t fanout_sessions = EnvSize("RCB_TRANSPORT_FANOUT_SESSIONS", 8);
  const size_t fanout_participants =
      EnvSize("RCB_TRANSPORT_FANOUT_PARTICIPANTS", 3);
  const double latency_floor_x = EnvDouble("RCB_TRANSPORT_LATENCY_FLOOR_X", 2.0);
  const double idle_floor_x = EnvDouble("RCB_TRANSPORT_IDLE_FLOOR_X", 10.0);

  PrintBenchHeader(
      "Transport — streamed sync vs classic polling (DESIGN.md §15)",
      StrFormat("google.com replica, signed session, 1 s poll baseline; "
                "%d mutations; %d s idle window; agent restart probe; "
                "fan-out %zu sessions x %zu pollers",
                mutations, idle_seconds, fanout_sessions, fanout_participants)
          .c_str());

  struct ProfileRow {
    const char* key;
    NetworkProfile profile;
  };
  ProfileRow profiles[] = {
      {"lan", LanProfile()}, {"wan", WanProfile()}, {"mobile", MobileProfile()}};
  Mode modes[] = {Mode::kPoll, Mode::kAdaptive, Mode::kLongPoll, Mode::kFrames};

  obs::BenchReport report = MakeReport("transport", "lan+wan+mobile",
                                       /*cache_mode=*/true, /*repetitions=*/1);
  report.SetConfig("site", "google.com");
  report.SetConfig("mutations", StrFormat("%d", mutations));
  report.SetConfig("idle_seconds", StrFormat("%d", idle_seconds));
  report.SetConfig("poll_interval_ms", "1000");
  report.SetConfig("fanout_sessions", StrFormat("%zu", fanout_sessions));
  report.SetConfig("fanout_participants", StrFormat("%zu", fanout_participants));

  ModeResult wan_poll, wan_frames;
  bool all_frames_recovered = true;
  for (const auto& row : profiles) {
    std::printf("\n[%s]\n", row.key);
    std::printf("%-24s %12s %12s %12s %12s\n", "", "poll", "adaptive",
                "longpoll", "frames");
    ModeResult results[4];
    for (int m = 0; m < 4; ++m) {
      results[m] = RunMode(row.profile, modes[m], mutations, idle_seconds);
    }
    std::printf("%-24s %12s %12s %12s %12s\n", "median change latency",
                results[0].median_latency.ToString().c_str(),
                results[1].median_latency.ToString().c_str(),
                results[2].median_latency.ToString().c_str(),
                results[3].median_latency.ToString().c_str());
    std::printf("%-24s %12.0f %12.0f %12.0f %12.0f\n", "idle requests/min",
                results[0].idle_requests_per_minute,
                results[1].idle_requests_per_minute,
                results[2].idle_requests_per_minute,
                results[3].idle_requests_per_minute);
    std::printf("%-24s %12.0f %12.0f %12.0f %12.0f\n", "idle bytes/min",
                results[0].idle_bytes_per_minute,
                results[1].idle_bytes_per_minute,
                results[2].idle_bytes_per_minute,
                results[3].idle_bytes_per_minute);
    std::printf("%-24s %12.0f %12.0f %12.0f %12.0f\n", "wasted polls/min",
                results[0].wasted_polls_per_minute,
                results[1].wasted_polls_per_minute,
                results[2].wasted_polls_per_minute,
                results[3].wasted_polls_per_minute);
    std::printf("%-24s %12s %12s %12s %12s\n", "recovers after drop",
                results[0].recovered_after_drop ? "yes" : "NO",
                results[1].recovered_after_drop ? "yes" : "NO",
                results[2].recovered_after_drop ? "yes" : "NO",
                results[3].recovered_after_drop ? "yes" : "NO");

    for (int m = 0; m < 4; ++m) {
      std::string prefix = StrFormat("%s_%s_", row.key, ModeName(modes[m]));
      const ModeResult& r = results[m];
      report.AddValue(prefix + "median_latency_us", "us",
                      obs::Provenance::kSim,
                      static_cast<double>(r.median_latency.micros()));
      report.AddValue(prefix + "worst_latency_us", "us", obs::Provenance::kSim,
                      static_cast<double>(r.worst_latency.micros()));
      report.AddValue(prefix + "idle_requests_per_minute", "requests",
                      obs::Provenance::kSim, r.idle_requests_per_minute);
      report.AddValue(prefix + "idle_bytes_per_minute", "bytes",
                      obs::Provenance::kSim, r.idle_bytes_per_minute);
      report.AddValue(prefix + "wasted_polls_per_minute", "polls",
                      obs::Provenance::kSim, r.wasted_polls_per_minute);
      report.AddValue(prefix + "wasted_poll_bytes_per_minute", "bytes",
                      obs::Provenance::kSim, r.wasted_poll_bytes_per_minute);
      report.AddValue(prefix + "recovered_after_drop", "bool",
                      obs::Provenance::kSim, r.recovered_after_drop ? 1 : 0);
      report.AddValue(prefix + "drop_reconnects", "count",
                      obs::Provenance::kSim,
                      static_cast<double>(r.drop_reconnects));
    }
    if (std::string(row.key) == "wan") {
      wan_poll = results[0];
      wan_frames = results[3];
    }
    all_frames_recovered = all_frames_recovered && results[3].recovered_after_drop;
  }

  std::printf("\n[fan-out: %zu sessions x %zu pollers, 1 ms links]\n",
              fanout_sessions, fanout_participants);
  FanoutResult fan_poll = RunFanout(false, fanout_sessions, fanout_participants);
  FanoutResult fan_frames = RunFanout(true, fanout_sessions, fanout_participants);
  std::printf("%-36s %12.0f %12.0f\n", "median sync latency (us)",
              fan_poll.median_latency_us, fan_frames.median_latency_us);
  std::printf("%-36s %12.0f %12.0f\n", "idle bytes/min/participant",
              fan_poll.idle_bytes_per_minute_per_participant,
              fan_frames.idle_bytes_per_minute_per_participant);
  report.AddValue("fanout_poll_median_latency_us", "us", obs::Provenance::kSim,
                  fan_poll.median_latency_us);
  report.AddValue("fanout_frames_median_latency_us", "us",
                  obs::Provenance::kSim, fan_frames.median_latency_us);
  report.AddValue("fanout_poll_idle_bytes_per_minute_per_participant", "bytes",
                  obs::Provenance::kSim,
                  fan_poll.idle_bytes_per_minute_per_participant);
  report.AddValue("fanout_frames_idle_bytes_per_minute_per_participant",
                  "bytes", obs::Provenance::kSim,
                  fan_frames.idle_bytes_per_minute_per_participant);
  report.SetHealthJson(fan_frames.health_json);

  double latency_x =
      wan_frames.median_latency.micros() > 0
          ? static_cast<double>(wan_poll.median_latency.micros()) /
                static_cast<double>(wan_frames.median_latency.micros())
          : 0;
  double idle_x = wan_frames.idle_bytes_per_minute > 0
                      ? wan_poll.idle_bytes_per_minute /
                            wan_frames.idle_bytes_per_minute
                      : 0;
  report.AddValue("wan_latency_improvement_x", "ratio", obs::Provenance::kSim,
                  latency_x);
  report.AddValue("wan_idle_bytes_improvement_x", "ratio",
                  obs::Provenance::kSim, idle_x);
  WriteReport(report);

  PrintRule();
  std::printf("shape check: WAN framed streaming must cut median latency "
              ">= %.1fx and idle bytes/min >= %.1fx vs 1 s polling, and the "
              "framed drop probe must recover on every profile.\n",
              latency_floor_x, idle_floor_x);
  std::printf("  wan latency improvement: %.1fx   wan idle bytes "
              "improvement: %.1fx   framed drop recovery: %s\n",
              latency_x, idle_x, all_frames_recovered ? "yes" : "NO");
  bool ok = latency_x >= latency_floor_x && idle_x >= idle_floor_x &&
            all_frames_recovered;
  if (!ok) {
    std::printf("SHAPE CHECK FAILED\n");
    return 1;
  }
  return 0;
}
