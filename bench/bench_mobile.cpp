// §6 future work: co-browsing hosted from a mobile device (the paper's
// Fennec/Nokia-N810 port). The host sits on a 3G-era HSPA link (1 Mbps down,
// 128 Kbps up, high radio latency); the participant on home ADSL. Reports
// M1/M2/M4 for a five-site subset and checks that mobile hosting remains
// usable — synchronization still beats direct downloads on the big pages the
// paper's remote-support scenarios care about.
#include "bench/common.h"

using namespace rcb;
using namespace rcb::benchutil;

int main() {
  PrintBenchHeader(
      "Mobile hosting (§6 future work: RCB-Agent on a Nokia-N810-class "
      "handheld)",
      "host on 802.11g Wi-Fi (~12 Mbps), participant on the same access "
      "network");

  std::printf("%-3s %-15s %10s %10s %10s %8s\n", "#", "site", "M1 (s)",
              "M2 (s)", "M4 (s)", "M2<M1");
  NetworkProfile mobile = MobileProfile();
  int syncs_faster = 0;
  int measured = 0;
  std::vector<SiteMeasurement> measurements;
  for (const char* name :
       {"google.com", "facebook.com", "wikipedia.org", "cnn.com", "amazon.com"}) {
    const SiteSpec* spec = FindSite(name);
    auto m = MeasureSite(*spec, mobile, /*cache_mode=*/true, /*repetitions=*/1);
    if (!m.ok()) {
      std::printf("%-3d %-15s failed: %s\n", spec->index, name,
                  m.status().ToString().c_str());
      continue;
    }
    ++measured;
    measurements.push_back(*m);
    bool faster = m->m2 < m->m1;
    syncs_faster += faster ? 1 : 0;
    std::printf("%-3d %-15s %10s %10s %10s %8s\n", spec->index, name,
                Sec(m->m1).c_str(), Sec(m->m2).c_str(),
                Sec(m->m3_or_m4).c_str(), faster ? "yes" : "NO");
  }
  PrintRule();
  std::printf("shape check: mobile hosting works end-to-end and M2 < M1 on "
              "%d/%d sites (paper: 'RCB-Agent can also\nefficiently support "
              "co-browsing using mobile devices').\n",
              syncs_faster, measured);

  obs::BenchReport report = MakeReport("mobile", "mobile",
                                       /*cache_mode=*/true, /*repetitions=*/1);
  report.SetConfig("sites", std::to_string(measured));
  AddMeasurementDistributions(&report, measurements);
  report.AddValue("m2_smaller_than_m1_sites", "sites", obs::Provenance::kSim,
                  syncs_faster);
  report.AddValue("sites_measured", "sites", obs::Provenance::kSim, measured);
  WriteReport(report);
  return 0;
}
