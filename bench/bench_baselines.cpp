// Baseline comparison backing the §1/§2 arguments.
//
// Three page classes x three co-browsing approaches:
//   - URL sharing (paste the address into an IM),
//   - proxy-based co-browsing (third-party relay, CWB-style),
//   - RCB.
// Page classes: a static public page (everything works), a session-protected
// shop cart (URL sharing shows the wrong page), and an Ajax-updated map view
// (URL sharing cannot express it at all). The proxy column also reports the
// relayed bytes every user must entrust to the third party.
#include "bench/common.h"
#include "src/baselines/proxy_cobrowse.h"
#include "src/baselines/url_sharing.h"
#include "src/sites/corpus.h"
#include "src/sites/maps_site.h"
#include "src/sites/shop_site.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

struct Row {
  const char* page;
  bool url_share_match = false;
  Duration url_share_time;
  bool proxy_match = false;
  Duration proxy_time;
  uint64_t proxy_bytes = 0;
  bool rcb_match = false;
  Duration rcb_time;
};

// ---------------------------------------------------------------------------
// Shared environment: shop + maps + one static corpus site, host/participant
// machines, and a proxy machine.
// ---------------------------------------------------------------------------
class Env {
 public:
  Env() : network_(&loop_) {
    network_.AddHost("host-pc", LanProfile().host_interface);
    network_.AddHost("participant-pc", LanProfile().participant_interface);
    network_.AddHost("cobrowse-proxy", {});
    network_.SetLatency("host-pc", "participant-pc",
                        LanProfile().host_participant_latency);
    network_.AddHost("www.shop.test", {});
    network_.AddHost("maps.test", {});
    shop_ = std::make_unique<ShopSite>(&loop_, &network_, "www.shop.test");
    maps_ = std::make_unique<MapsSite>(&loop_, &network_, "maps.test");
  }

  EventLoop loop_;
  Network network_;
  std::unique_ptr<ShopSite> shop_;
  std::unique_ptr<MapsSite> maps_;
};

// Prepares the host browser on one of the three page classes; returns the
// marker element id whose presence on the participant means "sees what the
// host sees".
std::string PrepareHostPage(Env* env, Browser* host, const std::string& page) {
  if (page == "static") {
    bool done = false;
    host->Navigate(Url::Make("http", "www.shop.test", 80, "/product/kindl"),
                   [&](const Status&, const PageLoadStats&) { done = true; });
    env->loop_.RunUntilCondition([&] { return done; });
    return "ptitle";
  }
  if (page == "session") {
    bool done = false;
    host->Navigate(Url::Make("http", "www.shop.test", 80, "/"),
                   [&](const Status&, const PageLoadStats&) { done = true; });
    env->loop_.RunUntilCondition([&] { return done; });
    done = false;
    host->Navigate(Url::Make("http", "www.shop.test", 80, "/product/mba13"),
                   [&](const Status&, const PageLoadStats&) { done = true; });
    env->loop_.RunUntilCondition([&] { return done; });
    done = false;
    Status s = host->SubmitForm(
        host->document()->ById("addform"),
        [&](const Status&, const PageLoadStats&) { done = true; });
    env->loop_.RunUntilCondition([&] { return done && s.ok(); });
    return "cartlist";
  }
  // ajax: maps page after a search (URL unchanged).
  MapsApp app(host);
  bool done = false;
  app.Open(env->maps_->PageUrl(), [&](Status) { done = true; });
  env->loop_.RunUntilCondition([&] { return done; });
  done = false;
  app.Search("cartier fifth avenue", [&](Status) { done = true; });
  env->loop_.RunUntilCondition([&] { return done; });
  return "status";  // carries the searched view string
}

bool ParticipantMatches(Browser* host, Browser* participant,
                        const std::string& marker) {
  Element* host_marker = host->document()->ById(marker);
  Element* participant_marker =
      participant->document() != nullptr
          ? participant->document()->ById(marker)
          : nullptr;
  if (host_marker == nullptr || participant_marker == nullptr) {
    return false;
  }
  return host_marker->TextContent() == participant_marker->TextContent();
}

Row RunPageClass(const char* page) {
  Row row;
  row.page = page;

  // --- URL sharing --------------------------------------------------------
  {
    Env env;
    Browser host(&env.loop_, &env.network_, "host-pc");
    Browser participant(&env.loop_, &env.network_, "participant-pc");
    std::string marker = PrepareHostPage(&env, &host, page);
    UrlSharingCoBrowse sharing(&env.loop_, &host, &participant);
    auto result = sharing.ShareCurrentUrl();
    row.url_share_time = result.participant_load_time;
    row.url_share_match = result.participant_status.ok() &&
                          ParticipantMatches(&host, &participant, marker);
  }

  // --- Proxy-based --------------------------------------------------------
  {
    Env env;
    CoBrowseProxy proxy(&env.loop_, &env.network_, "cobrowse-proxy");
    Browser host(&env.loop_, &env.network_, "host-pc");
    Browser participant(&env.loop_, &env.network_, "participant-pc");
    std::string marker = PrepareHostPage(&env, &host, page);
    // The leader re-navigates through the proxy to the current URL; the
    // proxy fetches its own copy (with its own cookies!) and relays it.
    ProxyCoBrowseClient follower(&participant, proxy.ProxyUrl(),
                                 Duration::Millis(500));
    follower.Start();
    bool navigated = false;
    ProxyCoBrowseClient leader(&host, proxy.ProxyUrl(), Duration::Millis(500));
    leader.Navigate(host.current_url(), [&](Status) { navigated = true; });
    env.loop_.RunUntilCondition([&] { return navigated; });
    SimTime start = env.loop_.now();
    env.loop_.RunUntilCondition([&] { return follower.updates_received() > 0; });
    row.proxy_time = env.loop_.now() - start;
    row.proxy_bytes = proxy.bytes_relayed();
    row.proxy_match = ParticipantMatches(&host, &participant, marker);
    follower.Stop();
    leader.Stop();
  }

  // --- RCB ----------------------------------------------------------------
  {
    Env env;
    SessionOptions options;
    options.profile = LanProfile();
    options.poll_interval = Duration::Millis(500);
    options.host_machine = "rcb-host";
    options.participant_machine_prefix = "rcb-part";
    CoBrowsingSession session(&env.loop_, &env.network_, options);
    if (!session.Start().ok()) {
      return row;
    }
    std::string marker = PrepareHostPage(&env, session.host_browser(), page);
    SimTime start = env.loop_.now();
    Status synced = session.WaitForSync(Duration::Seconds(30.0));
    row.rcb_time = env.loop_.now() - start;
    row.rcb_match = synced.ok() &&
                    ParticipantMatches(session.host_browser(),
                                       session.participant_browser(0), marker);
  }
  return row;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Baselines — URL sharing vs proxy-based vs RCB (§1/§2 arguments)",
      "static public page | session-protected cart | Ajax-updated map view");

  std::printf("%-10s | %-18s | %-26s | %-18s\n", "page", "URL sharing",
              "proxy-based", "RCB");
  std::printf("%-10s | %-7s %-10s | %-7s %-9s %-8s | %-7s %-10s\n", "",
              "match", "time", "match", "time", "bytes", "match", "time");
  obs::BenchReport report = MakeReport("baselines", "lan",
                                       /*cache_mode=*/true, /*repetitions=*/1);
  report.SetConfig("page_classes", "static,session,ajax");
  for (const char* page : {"static", "session", "ajax"}) {
    Row row = RunPageClass(page);
    std::printf("%-10s | %-7s %-10s | %-7s %-9s %-8llu | %-7s %-10s\n",
                row.page, row.url_share_match ? "yes" : "NO",
                row.url_share_time.ToString().c_str(),
                row.proxy_match ? "yes" : "NO", row.proxy_time.ToString().c_str(),
                static_cast<unsigned long long>(row.proxy_bytes),
                row.rcb_match ? "yes" : "NO", row.rcb_time.ToString().c_str());
    std::string prefix = std::string(page) + "_";
    report.AddValue(prefix + "url_share_match", "bool", obs::Provenance::kSim,
                    row.url_share_match ? 1 : 0);
    report.AddValue(prefix + "url_share_time_us", "us", obs::Provenance::kSim,
                    static_cast<double>(row.url_share_time.micros()));
    report.AddValue(prefix + "proxy_match", "bool", obs::Provenance::kSim,
                    row.proxy_match ? 1 : 0);
    report.AddValue(prefix + "proxy_time_us", "us", obs::Provenance::kSim,
                    static_cast<double>(row.proxy_time.micros()));
    report.AddValue(prefix + "proxy_bytes", "bytes", obs::Provenance::kSim,
                    static_cast<double>(row.proxy_bytes));
    report.AddValue(prefix + "rcb_match", "bool", obs::Provenance::kSim,
                    row.rcb_match ? 1 : 0);
    report.AddValue(prefix + "rcb_time_us", "us", obs::Provenance::kSim,
                    static_cast<double>(row.rcb_time.micros()));
  }
  WriteReport(report);
  PrintRule();
  std::printf(
      "shape check (paper §1/§2): URL sharing matches only the static page; "
      "a URL-relaying proxy also fails on\nsession and Ajax pages unless the "
      "entire session is conducted through it (cookie ownership + injected\n"
      "trackers) — the third-party cost and trust burden the paper argues "
      "against. RCB matches all three with\nno third party.\n");
  return 0;
}
