// Table 1: homepage size and processing time of the 20 sites.
//
// Reproduces the paper's four measured columns: page size (KB), M5 in
// non-cache mode, M5 in cache mode (slower: extra cache lookups during URL
// rewriting), and M6 (participant-side content apply). M5/M6 are real CPU
// times of the actual Fig. 3 / Fig. 5 pipelines, averaged over repetitions.
// Absolute values are far below the paper's 2009 JavaScript numbers; the
// shape to check is (a) bigger pages take longer, (b) M5 cache > M5
// non-cache, (c) all values small relative to network time.
#include "bench/common.h"

using namespace rcb;
using namespace rcb::benchutil;

int main() {
  PrintBenchHeader(
      "Table 1 — homepage size and processing time (M5 / M6, real CPU ms)",
      "M5 = response content generation on host; M6 = snapshot apply on "
      "participant\naveraged over 10 repetitions; page size fixed by corpus");

  std::printf("%-3s %-15s %9s %14s %11s %9s %9s %6s\n", "#", "site",
              "size(KB)", "M5 noncache", "M5 cache", "M6", "snap(KB)", "infl");
  NetworkProfile lan = LanProfile();
  int cache_slower = 0;
  std::vector<std::pair<double, double>> size_vs_m5;
  std::vector<double> m5_noncache_us, m5_cache_us, m6_us, inflation;
  for (const SiteSpec& spec : Table1Sites()) {
    auto non_cache = MeasureSite(spec, lan, /*cache_mode=*/false,
                                 /*repetitions=*/10);
    auto cache = MeasureSite(spec, lan, /*cache_mode=*/true, /*repetitions=*/10);
    if (!non_cache.ok() || !cache.ok()) {
      std::printf("%-3d %-15s measurement failed\n", spec.index, spec.name.c_str());
      continue;
    }
    cache_slower += cache->m5 > non_cache->m5 ? 1 : 0;
    size_vs_m5.emplace_back(spec.page_kb,
                            static_cast<double>(non_cache->m5.micros()));
    double snap_kb = static_cast<double>(non_cache->snapshot_bytes) / 1024.0;
    m5_noncache_us.push_back(static_cast<double>(non_cache->m5.micros()));
    m5_cache_us.push_back(static_cast<double>(cache->m5.micros()));
    m6_us.push_back(static_cast<double>(non_cache->m6.micros()));
    inflation.push_back(snap_kb / spec.page_kb);
    std::printf("%-3d %-15s %9.1f %14s %11s %9s %9.1f %5.2fx\n", spec.index,
                spec.name.c_str(), spec.page_kb, Ms(non_cache->m5).c_str(),
                Ms(cache->m5).c_str(), Ms(non_cache->m6).c_str(), snap_kb,
                snap_kb / spec.page_kb);
  }
  PrintRule();
  // Rank correlation between page size and M5 (paper: larger page -> more
  // processing time).
  double concordant = 0;
  double pairs = 0;
  for (size_t i = 0; i < size_vs_m5.size(); ++i) {
    for (size_t j = i + 1; j < size_vs_m5.size(); ++j) {
      if (size_vs_m5[i].first == size_vs_m5[j].first) {
        continue;
      }
      ++pairs;
      bool same_order = (size_vs_m5[i].first < size_vs_m5[j].first) ==
                        (size_vs_m5[i].second < size_vs_m5[j].second);
      concordant += same_order ? 1 : 0;
    }
  }
  std::printf("shape check: size/M5 rank concordance %.0f%% (paper: strongly "
              "size-dependent)\n",
              pairs > 0 ? 100.0 * concordant / pairs : 0.0);
  std::printf("shape check: M5 cache > M5 non-cache on %d/20 sites "
              "(paper: 20/20, extra cache lookups)\n",
              cache_slower);
  std::printf("the snap(KB)/infl columns quantify the Fig. 4 escape()+XML "
              "overhead the WAN M2 pays (EXPERIMENTS.md)\n");

  obs::BenchReport report = MakeReport("table1_processing", "lan",
                                       /*cache_mode=*/true, /*repetitions=*/10);
  report.AddDistribution("m5_noncache_us", "us", obs::Provenance::kWall,
                         m5_noncache_us);
  report.AddDistribution("m5_cache_us", "us", obs::Provenance::kWall,
                         m5_cache_us);
  report.AddDistribution("m6_apply_us", "us", obs::Provenance::kWall, m6_us);
  report.AddDistribution("snapshot_inflation", "ratio", obs::Provenance::kSim,
                         inflation);
  report.AddValue("size_m5_rank_concordance_pct", "percent",
                  obs::Provenance::kWall,
                  pairs > 0 ? 100.0 * concordant / pairs : 0.0);
  report.AddValue("m5_cache_slower_sites", "sites", obs::Provenance::kWall,
                  cache_slower);
  WriteReport(report);
  return 0;
}
