// §5.1.1 remark: "User browsing action information (such as form co-filling
// data) can be carried in a small-sized request or response and efficiently
// transmitted."
//
// Quantifies that: wire sizes of the action payloads, the cost of an empty
// poll (the timestamp mechanism's steady-state overhead), and the end-to-end
// action round-trip (participant gesture -> applied on host) in LAN and WAN.
#include "bench/common.h"
#include "src/sites/shop_site.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

Duration MeasureActionRoundTrip(const NetworkProfile& profile) {
  EventLoop loop;
  Network network(&loop);
  network.AddHost("www.shop.test", {.uplink_bps = 20'000'000, .downlink_bps = 0});
  ShopSite shop(&loop, &network, "www.shop.test");
  SessionOptions options;
  options.profile = profile;
  options.poll_interval = Duration::Seconds(1.0);
  CoBrowsingSession session(&loop, &network, options);
  if (!session.Start().ok()) {
    return Duration::Zero();
  }
  auto stats = session.CoNavigate(Url::Make("http", "www.shop.test", 80, "/"));
  if (!stats.ok()) {
    return Duration::Zero();
  }
  Browser* alice_browser = session.participant_browser(0);
  AjaxSnippet* alice = session.snippet(0);
  Element* form = alice_browser->document()->ById("searchform");
  if (form == nullptr ||
      !alice->FillFormField(form, "q", "kindle").ok()) {
    return Duration::Zero();
  }
  SimTime start = loop.now();
  alice->PollNow();
  bool applied = loop.RunUntilCondition([&] {
    Element* host_form = session.host_browser()->document()->ById("searchform");
    if (host_form == nullptr) {
      return false;
    }
    bool filled = false;
    host_form->ForEachElement([&](Element* element) {
      if (element->AttrOr("name") == "q" && element->AttrOr("value") == "kindle") {
        filled = true;
        return false;
      }
      return true;
    });
    return filled;
  });
  return applied ? loop.now() - start : Duration::Zero();
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Action payloads and round-trips (§5.1.1 small-request remark, §4.1.1 "
      "timestamp mechanism)",
      "");

  // Wire sizes.
  UserAction click;
  click.type = ActionType::kClick;
  click.target = 12;
  UserAction fill;
  fill.type = ActionType::kFormFill;
  fill.target = 7;
  fill.fields = {{"fullname", "Alice Cousin"}, {"street", "653 5th Ave"},
                 {"city", "New York"}, {"state", "NY"}, {"zip", "10022"},
                 {"phone", "555-0100"}};
  UserAction mouse;
  mouse.type = ActionType::kMouseMove;
  mouse.x = 512;
  mouse.y = 384;

  auto poll_size = [](const std::vector<UserAction>& actions) {
    PollRequest poll;
    poll.participant_id = "p1";
    poll.doc_time_ms = 123456789;
    poll.actions = actions;
    HttpRequest request;
    request.method = HttpMethod::kPost;
    request.target = "/";
    request.headers.Set("Host", "host-pc:3000");
    request.headers.Set("Content-Type", "application/x-www-form-urlencoded");
    request.body = EncodePollRequest(poll);
    return request.Serialize().size();
  };

  std::printf("%-38s %8s\n", "poll request on the wire", "bytes");
  std::printf("%-38s %8zu\n", "empty poll (timestamp only)", poll_size({}));
  std::printf("%-38s %8zu\n", "poll + click action", poll_size({click}));
  std::printf("%-38s %8zu\n", "poll + 6-field address co-fill",
              poll_size({fill}));
  std::printf("%-38s %8zu\n", "poll + mouse-pointer move", poll_size({mouse}));
  HttpResponse empty_response = HttpResponse::Ok("application/xml", "");
  std::printf("%-38s %8zu\n", "'no new content' response",
              empty_response.Serialize().size());
  PrintRule();

  // Round trips.
  Duration lan_rtt = MeasureActionRoundTrip(LanProfile());
  Duration wan_rtt = MeasureActionRoundTrip(WanProfile());
  std::printf("co-fill gesture -> merged on host (LAN): %s\n",
              lan_rtt.ToString().c_str());
  std::printf("co-fill gesture -> merged on host (WAN): %s\n",
              wan_rtt.ToString().c_str());
  std::printf("shape check: both far below the 1 s poll interval, i.e. "
              "actions ride the next poll essentially free\n");

  obs::BenchReport report = MakeReport("actions", "lan+wan",
                                       /*cache_mode=*/true, /*repetitions=*/1);
  report.AddValue("empty_poll_bytes", "bytes", obs::Provenance::kSim,
                  static_cast<double>(poll_size({})));
  report.AddValue("click_poll_bytes", "bytes", obs::Provenance::kSim,
                  static_cast<double>(poll_size({click})));
  report.AddValue("cofill_poll_bytes", "bytes", obs::Provenance::kSim,
                  static_cast<double>(poll_size({fill})));
  report.AddValue("mousemove_poll_bytes", "bytes", obs::Provenance::kSim,
                  static_cast<double>(poll_size({mouse})));
  report.AddValue("empty_response_bytes", "bytes", obs::Provenance::kSim,
                  static_cast<double>(empty_response.Serialize().size()));
  report.AddValue("cofill_rtt_lan_us", "us", obs::Provenance::kSim,
                  static_cast<double>(lan_rtt.micros()));
  report.AddValue("cofill_rtt_wan_us", "us", obs::Provenance::kSim,
                  static_cast<double>(wan_rtt.micros()));
  WriteReport(report);
  return 0;
}
