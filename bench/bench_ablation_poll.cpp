// Ablation: the poll-based synchronization model's interval (§3.2.3).
//
// The paper fixes the Ajax-Snippet poll interval at 1 s, arguing it is small
// against ~10 s average user think time. This sweep quantifies the trade:
// smaller intervals cut the host-change -> participant-visible latency but
// multiply request volume (and therefore host upload traffic in WAN
// settings).
#include "bench/common.h"
#include "src/sites/corpus.h"
#include "src/util/rand.h"
#include "src/util/strings.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

struct SweepPoint {
  Duration interval;
  Duration mean_latency;
  Duration worst_latency;
  double polls_per_minute = 0;
  uint64_t idle_bytes_per_minute = 0;
};

SweepPoint RunSweep(Duration interval) {
  EventLoop loop;
  Network network(&loop);
  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = interval;
  const SiteSpec* spec = FindSite("google.com");
  AddOriginServer(&network, options.profile, spec->host, spec->server_bps,
                  spec->server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  auto server = InstallSite(&loop, &network, *spec);
  CoBrowsingSession session(&loop, &network, options);
  SweepPoint point;
  point.interval = interval;
  if (!session.Start().ok()) {
    return point;
  }
  auto stats = session.CoNavigate(Url::Make("http", spec->host, 80, "/"));
  if (!stats.ok()) {
    return point;
  }

  // 24 scripted host mutations at pseudo-random offsets against the poll
  // phase; measure change -> applied-on-participant latency for each.
  Rng rng(42);
  int64_t total_us = 0;
  Duration worst;
  constexpr int kChanges = 24;
  for (int i = 0; i < kChanges; ++i) {
    loop.RunFor(Duration::Millis(
        static_cast<int64_t>(rng.NextBelow(4000)) + 500));
    uint64_t updates_before = session.snippet(0)->metrics().content_updates;
    SimTime change_at = loop.now();
    session.host_browser()->MutateDocument([i](Document* document) {
      Element* body = document->body();
      auto marker = MakeElement("div");
      marker->SetAttribute("id", "marker" + std::to_string(i));
      body->AppendChild(std::move(marker));
    });
    loop.RunUntilCondition([&] {
      return session.snippet(0)->metrics().content_updates > updates_before;
    });
    Duration latency = loop.now() - change_at;
    total_us += latency.micros();
    if (latency > worst) {
      worst = latency;
    }
  }
  point.mean_latency = Duration::Micros(total_us / kChanges);
  point.worst_latency = worst;

  // Steady-state cost: run one idle minute and count polls + bytes.
  uint64_t polls_before = session.agent()->metrics().polls_received;
  uint64_t bytes_before = network.total_bytes_transferred();
  loop.RunFor(Duration::Seconds(60.0));
  point.polls_per_minute = static_cast<double>(
      session.agent()->metrics().polls_received - polls_before);
  point.idle_bytes_per_minute = network.total_bytes_transferred() - bytes_before;
  return point;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Ablation — poll interval vs sync latency and overhead (§3.2.3)",
      "LAN, google.com replica; 24 host mutations at random poll phases");

  std::printf("%-10s %12s %12s %12s %16s\n", "interval", "mean lat.",
              "worst lat.", "polls/min", "idle bytes/min");
  obs::BenchReport report = MakeReport("ablation_poll", "lan",
                                       /*cache_mode=*/true, /*repetitions=*/1);
  report.SetConfig("site", "google.com");
  report.SetConfig("mutations", "24");
  for (int64_t ms : {100, 250, 500, 1000, 2000, 5000}) {
    SweepPoint point = RunSweep(Duration::Millis(ms));
    std::printf("%-10s %12s %12s %12.0f %16llu\n",
                point.interval.ToString().c_str(),
                point.mean_latency.ToString().c_str(),
                point.worst_latency.ToString().c_str(), point.polls_per_minute,
                static_cast<unsigned long long>(point.idle_bytes_per_minute));
    std::string prefix = StrFormat("interval_%lldms_", static_cast<long long>(ms));
    report.AddValue(prefix + "mean_latency_us", "us", obs::Provenance::kSim,
                    static_cast<double>(point.mean_latency.micros()));
    report.AddValue(prefix + "worst_latency_us", "us", obs::Provenance::kSim,
                    static_cast<double>(point.worst_latency.micros()));
    report.AddValue(prefix + "polls_per_minute", "polls", obs::Provenance::kSim,
                    point.polls_per_minute);
    report.AddValue(prefix + "idle_bytes_per_minute", "bytes",
                    obs::Provenance::kSim,
                    static_cast<double>(point.idle_bytes_per_minute));
  }
  WriteReport(report);
  PrintRule();
  std::printf("shape check: mean latency ~ interval/2 + transfer; request "
              "volume ~ 1/interval.\n");
  std::printf("the paper's 1 s choice keeps latency well under the ~10 s "
              "think time at 60 polls/min.\n");
  return 0;
}
