// Shared harness for the paper-reproduction benchmarks.
//
// Each Fig. 6/7/8 and Table 1 measurement follows the paper's procedure
// (§5.1.1): a fresh host + participant pair with cleared caches co-browses a
// site's homepage; M1–M4 come from the simulated clock, M5/M6 from real CPU
// time of the actual pipelines.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/trace.h"

#include "src/core/session.h"
#include "src/obs/bench_report.h"
#include "src/sites/corpus.h"

namespace rcb {
namespace benchutil {

struct SiteMeasurement {
  const SiteSpec* spec = nullptr;
  // The six metrics of §5.1.1.
  Duration m1;        // host HTML document load time
  Duration m2;        // participant HTML content sync time
  Duration m3_or_m4;  // participant supplementary-object time
  Duration m5;        // host response-content generation (real CPU)
  Duration m6;        // participant content apply (real CPU)
  size_t objects_from_host = 0;
  size_t snapshot_bytes = 0;
  uint64_t host_uplink_payload = 0;  // bytes the host pushed for this page
};

// One clean-cache co-browsing run of `spec`'s homepage under `profile`.
// `repetitions` re-runs average the real-time metrics (M5/M6); the simulated
// metrics are deterministic and identical across runs.
StatusOr<SiteMeasurement> MeasureSite(const SiteSpec& spec,
                                      const NetworkProfile& profile,
                                      bool cache_mode, int repetitions = 5,
                                      size_t participant_count = 1);

// Steady-state update cost for the delta-snapshot comparison (src/delta).
struct UpdateMeasurement {
  const SiteSpec* spec = nullptr;
  double bytes_per_update = 0;   // mean content-response bytes per update
  double latency_us = 0;         // mean host-mutation -> participant-applied
  uint64_t patches_served = 0;   // newPatch responses (0 in full mode)
  uint64_t patch_fallbacks = 0;  // no-base + oversize full-snapshot fallbacks
};

// Co-browses `spec`'s homepage under `profile`, then drives `rounds` small
// host-side updates — alternating a single-element text edit and a form
// co-fill attribute write, the paper's motivating small mutations — and
// measures per-update wire bytes and sim latency on the participant.
// `enable_delta` toggles the src/delta patch path; off means every update
// ships the full snapshot. A warm-up round (not measured) first inserts the
// status element the text edits target.
StatusOr<UpdateMeasurement> MeasureSmallUpdates(const SiteSpec& spec,
                                                const NetworkProfile& profile,
                                                bool enable_delta,
                                                int rounds = 6);

// Formatted table output shared by the bench binaries.
void PrintRule(int width = 78);
void PrintBenchHeader(const std::string& title, const std::string& setup);

// Formats a Duration in seconds with millisecond precision ("0.123").
std::string Sec(Duration d);
// Milliseconds with 3 decimals ("12.345").
std::string Ms(Duration d);

// ---------------------------------------------------------------------------
// Machine-readable artifacts. Every bench binary writes BENCH_<name>.json
// (schema: src/obs/bench_report.h, documented in EXPERIMENTS.md) next to its
// human-readable table; scripts/bench_all.sh collects them and scripts/ci.sh
// validates them.
// ---------------------------------------------------------------------------

// Creates a report pre-populated with the config keys shared by every bench
// (schema version is implicit; benches add their own keys with SetConfig).
obs::BenchReport MakeReport(const std::string& name,
                            const std::string& profile,
                            bool cache_mode, int repetitions);

// Adds the §5.1.1 per-site metric distributions over `measurements`:
// m1/m2/m3_or_m4 + snapshot_bytes/objects_from_host as sim distributions,
// m5/m6 as wall distributions.
void AddMeasurementDistributions(
    obs::BenchReport* report,
    const std::vector<SiteMeasurement>& measurements);

// Writes the artifact; a failure warns on stderr but never fails the bench.
void WriteReport(const obs::BenchReport& report);

// ---------------------------------------------------------------------------
// Optional trace capture (DESIGN.md §11). Setting RCB_TRACE_DIR turns on
// causal tracing for every bench session and appends each session's spans to
// $RCB_TRACE_DIR/TRACE_<bench>.jsonl, which tools/trace_report ingests. With
// the variable unset, sessions run untraced and the wire format and report
// fingerprints are unchanged.
// ---------------------------------------------------------------------------

// True when $RCB_TRACE_DIR is set (and non-empty).
bool TraceEnvEnabled();

// Names the TRACE_<name>.jsonl file the harness appends to; call once at the
// top of main() before any measurement. Defaults to "bench".
void SetTraceBenchName(const std::string& name);

// Turns tracing on in `options` when the env var is set.
void ApplyTraceEnv(SessionOptions* options);

// Appends the agent's and every snippet's retained spans to the trace file.
// No-op when the env var is unset or tracing was off for the session.
void DumpSessionTraces(CoBrowsingSession* session);

// Appends arbitrary (component, trace log) pairs to the trace file with the
// trace ids left raw — unlike DumpSessionTraces there is no per-session
// ordinal prefix, so ids recorded elsewhere from the same logs (the health
// plane's exemplar trace ids, DESIGN.md §16) resolve against the dump via
// `trace_report --trace-id`. Host-based benches use this; ids are unique
// within one session only. No-op when the env var is unset.
void DumpTraceLogs(
    const std::vector<std::pair<std::string, const obs::TraceLog*>>& logs);

}  // namespace benchutil
}  // namespace rcb

#endif  // BENCH_COMMON_H_
