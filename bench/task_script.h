// The 20-task co-browsing session of Table 2, executed by scripted
// role-players over the real RCB stack.
//
// Bob performs T1-B..T10-B on the host browser; Alice performs T1-A..T10-A
// on a participant browser. Human subjects are not reproducible, so the
// usability benches replace them with these deterministic role-players and
// report task success and timing instead of Likert opinions (see DESIGN.md).
#ifndef BENCH_TASK_SCRIPT_H_
#define BENCH_TASK_SCRIPT_H_

#include <string>
#include <vector>

#include "src/core/session.h"
#include "src/sites/maps_site.h"
#include "src/sites/shop_site.h"

namespace rcb {
namespace benchutil {

struct TaskResult {
  std::string id;           // "T1-B"
  std::string description;
  bool success = false;
  Duration sim_time;        // simulated time this task consumed
};

struct ScriptResult {
  std::vector<TaskResult> tasks;
  Duration total_time;
  bool all_succeeded = true;
  uint64_t polls = 0;
  uint64_t actions_applied = 0;
};

struct ScriptOptions {
  // Deterministic per-task user think time is drawn from [min,max] with this
  // seed; zero range means mechanics-only timing.
  Duration think_min = Duration::Zero();
  Duration think_max = Duration::Zero();
  uint64_t seed = 1;
  Duration poll_interval = Duration::Seconds(1.0);
};

// Runs one full Table 2 session (maps scenario + shop scenario) on a fresh
// network and returns the 20 per-task outcomes.
ScriptResult RunTable2Session(const ScriptOptions& options);

}  // namespace benchutil
}  // namespace rcb

#endif  // BENCH_TASK_SCRIPT_H_
