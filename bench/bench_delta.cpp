// Delta snapshots (src/delta): bytes-on-wire and latency per small update.
//
// RCB's Fig. 3/Fig. 5 pipelines ship a full XML snapshot on every content
// change, so steady-state co-browsing cost scales with page size rather than
// change size. The delta subsystem diffs the last-acked tree against the
// current one and ships a digest-checked patch instead, falling back to the
// full snapshot when the patch is not clearly smaller. This bench drives the
// paper's motivating small mutations — a single-element text edit and a form
// co-fill — across the 20-site corpus under the WAN profile and compares
// both modes run-for-run.
#include <algorithm>

#include "bench/common.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

double Median(std::vector<double> values) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Delta snapshots — bytes on wire and latency per small update, WAN",
      "6 host-side updates per site (single-element text edit / form co-fill)\n"
      "full = every update ships the snapshot; delta = src/delta patches\n"
      "1 s poll interval; ADSL 1.5 Mbps down / 384 Kbps up");

  std::printf("%-3s %-15s %11s %11s %7s %9s %9s\n", "#", "site", "full B/upd",
              "delta B/upd", "ratio", "full ms", "delta ms");

  std::vector<double> full_bytes, delta_bytes, ratios, full_lat, delta_lat;
  uint64_t patches = 0;
  uint64_t fallbacks = 0;
  NetworkProfile wan = WanProfile();
  for (const SiteSpec& spec : Table1Sites()) {
    auto full = MeasureSmallUpdates(spec, wan, /*enable_delta=*/false);
    auto delta = MeasureSmallUpdates(spec, wan, /*enable_delta=*/true);
    if (!full.ok() || !delta.ok()) {
      std::printf("%-3d %-15s measurement failed: %s\n", spec.index,
                  spec.name.c_str(),
                  (full.ok() ? delta.status() : full.status()).ToString().c_str());
      continue;
    }
    double ratio = delta->bytes_per_update > 0
                       ? full->bytes_per_update / delta->bytes_per_update
                       : 0;
    std::printf("%-3d %-15s %11.0f %11.0f %6.1fx %9.1f %9.1f\n", spec.index,
                spec.name.c_str(), full->bytes_per_update,
                delta->bytes_per_update, ratio, full->latency_us / 1000.0,
                delta->latency_us / 1000.0);
    full_bytes.push_back(full->bytes_per_update);
    delta_bytes.push_back(delta->bytes_per_update);
    ratios.push_back(ratio);
    full_lat.push_back(full->latency_us);
    delta_lat.push_back(delta->latency_us);
    patches += delta->patches_served;
    fallbacks += delta->patch_fallbacks;
  }
  PrintRule();
  double median_ratio = Median(ratios);
  std::printf("median bytes-on-wire per update: %.0f B full vs %.0f B delta "
              "(%.1fx reduction; acceptance: >= 3x)\n",
              Median(full_bytes), Median(delta_bytes), median_ratio);
  std::printf("patches served %llu, full-snapshot fallbacks %llu\n",
              static_cast<unsigned long long>(patches),
              static_cast<unsigned long long>(fallbacks));

  obs::BenchReport report = MakeReport("delta", "wan", /*cache_mode=*/true,
                                       /*repetitions=*/1);
  report.SetConfig("updates_per_site", "6");
  report.AddDistribution("full_update_bytes", "bytes", obs::Provenance::kSim,
                         full_bytes);
  report.AddDistribution("delta_update_bytes", "bytes", obs::Provenance::kSim,
                         delta_bytes);
  report.AddDistribution("update_bytes_ratio", "ratio", obs::Provenance::kSim,
                         ratios);
  report.AddDistribution("full_update_latency_us", "us", obs::Provenance::kSim,
                         full_lat);
  report.AddDistribution("delta_update_latency_us", "us", obs::Provenance::kSim,
                         delta_lat);
  report.AddValue("median_update_bytes_ratio", "ratio", obs::Provenance::kSim,
                  median_ratio);
  report.AddValue("patches_served", "patches", obs::Provenance::kSim,
                  static_cast<double>(patches));
  report.AddValue("patch_fallbacks", "patches", obs::Provenance::kSim,
                  static_cast<double>(fallbacks));
  WriteReport(report);
  return 0;
}
