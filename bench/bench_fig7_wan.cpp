// Figure 7: HTML document load time in the WAN environment.
//
// Same comparison as Fig. 6 but between two residential connections
// (1.5 Mbps down / 384 Kbps up). The host's slow uplink makes M2 larger than
// in the LAN, yet for most sites M2 still beats M1. Paper result: M2 < M1 on
// 17 of 20 sites.
#include "bench/common.h"

using namespace rcb;
using namespace rcb::benchutil;

int main() {
  SetTraceBenchName("fig7_wan");
  PrintBenchHeader(
      "Figure 7 — HTML document load time, WAN (ADSL 1.5 Mbps down / 384 Kbps up)",
      "M1 = host loads HTML from origin; M2 = participant syncs it from host\n"
      "host uplink 384 Kbps dominates M2; caches cleared; 5 repetitions");

  std::printf("%-3s %-15s %10s %10s %8s\n", "#", "site", "M1 (s)", "M2 (s)",
              "M2<M1");
  int m2_smaller = 0;
  std::vector<SiteMeasurement> measurements;
  NetworkProfile wan = WanProfile();
  for (const SiteSpec& spec : Table1Sites()) {
    auto m = MeasureSite(spec, wan, /*cache_mode=*/true);
    if (!m.ok()) {
      std::printf("%-3d %-15s measurement failed: %s\n", spec.index,
                  spec.name.c_str(), m.status().ToString().c_str());
      continue;
    }
    bool smaller = m->m2 < m->m1;
    m2_smaller += smaller ? 1 : 0;
    std::printf("%-3d %-15s %10s %10s %8s\n", spec.index, spec.name.c_str(),
                Sec(m->m1).c_str(), Sec(m->m2).c_str(), smaller ? "yes" : "NO");
    measurements.push_back(*m);
  }
  PrintRule();
  std::printf("shape check: M2 < M1 on %d/20 sites (paper: 17/20)\n", m2_smaller);

  // Steady-state follow-up: the same WAN link, but per-update cost after the
  // initial load — full snapshots vs src/delta patches (bench_delta has the
  // full per-site breakdown; this records the headline distributions next to
  // the load-time numbers they contextualize).
  std::vector<double> full_update_bytes, delta_update_bytes;
  for (const SiteSpec& spec : Table1Sites()) {
    auto full = MeasureSmallUpdates(spec, wan, /*enable_delta=*/false,
                                    /*rounds=*/4);
    auto delta = MeasureSmallUpdates(spec, wan, /*enable_delta=*/true,
                                     /*rounds=*/4);
    if (!full.ok() || !delta.ok()) {
      continue;
    }
    full_update_bytes.push_back(full->bytes_per_update);
    delta_update_bytes.push_back(delta->bytes_per_update);
  }
  PrintRule();
  std::printf("steady state: a small update costs O(page) as a full snapshot "
              "but O(change) as a patch\n(per-update byte distributions in "
              "the artifact; see bench_delta for the full table)\n");

  obs::BenchReport report = MakeReport("fig7_wan", "wan", /*cache_mode=*/true,
                                       /*repetitions=*/5);
  AddMeasurementDistributions(&report, measurements);
  report.AddValue("m2_smaller_than_m1_sites", "sites", obs::Provenance::kSim,
                  m2_smaller);
  report.AddDistribution("full_update_bytes", "bytes", obs::Provenance::kSim,
                         full_update_bytes);
  report.AddDistribution("delta_update_bytes", "bytes", obs::Provenance::kSim,
                         delta_update_bytes);
  WriteReport(report);
  return 0;
}
