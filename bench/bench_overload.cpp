// Overload protection: participant count x request rate vs agent latency.
//
// The RCB-Agent lives inside one host browser on a consumer uplink, so a
// handful of misbehaving (or merely numerous) participants can saturate it
// long before the network fails. This bench drives the agent with open-loop
// pollers that all request full content (ts=-1) far faster than the advertised
// interval, and compares an unprotected agent (all AgentLimits disabled)
// against a protected one (participant cap + per-participant poll token
// bucket). The protected agent sheds excess polls with tiny 429/503 responses
// that bypass the uplink serialization queue, so its poll latency stays
// bounded where the unprotected configuration collapses.
//
// All numbers come from the simulated clock and are bit-identical across
// runs; the protected configuration is run twice at the heaviest load to
// prove it.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/protocol.h"
#include "src/util/strings.h"
#include "src/core/rcb_agent.h"
#include "src/sites/site_server.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

// Host interface: ~1 Mbps uplink (consumer ADSL-class, §5.1.2's WAN spirit).
constexpr int64_t kHostUplinkBps = 1'000'000;
constexpr int64_t kHostDownlinkBps = 8'000'000;
constexpr int kPollsPerSec = 10;            // open-loop offered rate per poller
constexpr double kRunSeconds = 20.0;        // load phase
constexpr double kDrainSeconds = 30.0;      // let queued responses finish

struct LoadResult {
  size_t pollers = 0;
  uint64_t issued = 0;
  uint64_t answered = 0;
  uint64_t ok200 = 0;
  uint64_t shed = 0;  // 429 + 503 responses observed by pollers
  int64_t p50_ms = -1;
  int64_t p99_ms = -1;
  int64_t max_ms = -1;
  // Agent-side shed counters.
  uint64_t polls_rate_limited = 0;
  uint64_t participants_rejected = 0;
  uint64_t connections_rejected = 0;
  uint64_t generations = 0;

  // Everything that must be bit-identical across two runs of the same seed.
  std::string Fingerprint() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%zu/%llu/%llu/%llu/%llu/%lld/%lld/%lld/%llu/%llu/%llu/%llu",
                  pollers, static_cast<unsigned long long>(issued),
                  static_cast<unsigned long long>(answered),
                  static_cast<unsigned long long>(ok200),
                  static_cast<unsigned long long>(shed),
                  static_cast<long long>(p50_ms), static_cast<long long>(p99_ms),
                  static_cast<long long>(max_ms),
                  static_cast<unsigned long long>(polls_rate_limited),
                  static_cast<unsigned long long>(participants_rejected),
                  static_cast<unsigned long long>(connections_rejected),
                  static_cast<unsigned long long>(generations));
    return buf;
  }
};

int64_t PercentileMs(std::vector<int64_t>& micros, double p) {
  if (micros.empty()) {
    return -1;
  }
  std::sort(micros.begin(), micros.end());
  size_t rank = static_cast<size_t>(p * static_cast<double>(micros.size()));
  if (rank >= micros.size()) {
    rank = micros.size() - 1;
  }
  return micros[rank] / 1000;
}

LoadResult RunLoad(size_t pollers, bool protect) {
  EventLoop loop;
  Network network(&loop);
  network.SetDefaultLatency(Duration::Millis(20));
  network.AddHost("host-pc", {kHostUplinkBps, kHostDownlinkBps});
  network.AddHost("www.site.test", {});
  for (size_t i = 0; i < pollers; ++i) {
    network.AddHost(StrFormat("load-pc-%zu", i), {});
  }

  // A page whose snapshot (~4 KB) far exceeds the small-message cutoff, so
  // content responses serialize on the host uplink while 429/503s interleave.
  SiteServer site(&loop, &network, "www.site.test");
  std::string paragraphs;
  for (int i = 0; i < 20; ++i) {
    paragraphs += "<p>A co-browsed page with enough prose that every full "
                  "snapshot costs real uplink serialization time.</p>";
  }
  site.ServeStatic("/", "text/html",
                   "<html><head><title>Load</title></head><body>" + paragraphs +
                       "</body></html>");

  Browser host(&loop, &network, "host-pc");
  AgentConfig config;
  config.cache_mode = false;
  config.poll_interval = Duration::Seconds(1.0);
  if (protect) {
    config.limits.max_participants = 12;   // roster cap: excess pollers get 503
    config.limits.poll_rate_per_sec = 0.5; // admitted pollers: 1 content per 2s
    config.limits.poll_burst = 2.0;
  } else {
    config.limits = AgentLimits{};
    config.limits.max_connections = 0;
    config.limits.max_participants = 0;
    config.limits.max_request_head_bytes = 0;
    config.limits.max_request_body_bytes = 0;
  }
  RcbAgent agent(&host, config);
  if (!agent.Start().ok()) {
    return {};
  }

  bool loaded = false;
  host.Navigate(Url::Make("http", "www.site.test", 80, "/"),
                [&](const Status& status, const PageLoadStats&) {
                  loaded = status.ok();
                });
  loop.RunUntilCondition([&] { return loaded; });
  if (!loaded) {
    return {};
  }

  // The host keeps mutating the page so versions advance during the run.
  SimTime load_end = loop.now() + Duration::Seconds(kRunSeconds);
  std::function<void()> mutate = [&] {
    if (loop.now() >= load_end) {
      return;
    }
    host.MutateDocument([](Document*) {});
    loop.Schedule(Duration::Millis(500), mutate);
  };
  loop.Schedule(Duration::Millis(500), mutate);

  LoadResult result;
  result.pollers = pollers;
  std::vector<int64_t> latencies_us;
  std::vector<std::unique_ptr<Browser>> clients;
  Url agent_url = agent.AgentUrl();
  for (size_t i = 0; i < pollers; ++i) {
    clients.push_back(std::make_unique<Browser>(&loop, &network,
                                                StrFormat("load-pc-%zu", i)));
  }
  // Open-loop pollers: every 100 ms each fires a full-content poll (ts=-1)
  // regardless of whether earlier polls were answered — the misbehaving (or
  // merely numerous) participant the overload layer exists for.
  std::vector<std::function<void()>> tick(pollers);
  for (size_t i = 0; i < pollers; ++i) {
    Browser* client = clients[i].get();
    std::string pid = StrFormat("load-%zu", i);
    tick[i] = [&, client, pid, i] {
      if (loop.now() >= load_end) {
        return;
      }
      PollRequest poll;
      poll.participant_id = pid;
      poll.doc_time_ms = -1;
      ++result.issued;
      client->Fetch(HttpMethod::kPost, agent_url, EncodePollRequest(poll),
                    "application/x-www-form-urlencoded", [&](FetchResult r) {
                      if (!r.status.ok()) {
                        return;
                      }
                      ++result.answered;
                      latencies_us.push_back(r.elapsed.micros());
                      if (r.response.status_code == 200) {
                        ++result.ok200;
                      } else if (r.response.status_code == 429 ||
                                 r.response.status_code == 503) {
                        ++result.shed;
                      }
                    });
      loop.Schedule(Duration::Millis(1000 / kPollsPerSec), tick[i]);
    };
    // Staggered start so pollers (and hence token-bucket refills) are not
    // phase-locked — lockstep refills would burst content responses onto the
    // uplink together and inflate the protected tail artificially.
    loop.Schedule(Duration::Millis(100 + 17 * static_cast<int64_t>(i)),
                  tick[i]);
  }

  loop.RunUntil(load_end + Duration::Seconds(kDrainSeconds));

  result.p50_ms = PercentileMs(latencies_us, 0.50);
  result.p99_ms = PercentileMs(latencies_us, 0.99);
  result.max_ms = latencies_us.empty() ? -1 : latencies_us.back() / 1000;
  const AgentMetrics& metrics = agent.metrics();
  result.polls_rate_limited = metrics.polls_rate_limited;
  result.participants_rejected = metrics.participants_rejected;
  result.connections_rejected = metrics.connections_rejected;
  result.generations = metrics.generations;
  agent.Stop();
  return result;
}

void PrintRow(const char* mode, const LoadResult& r) {
  std::printf("%-11s %4zu %7llu %8llu %7llu %7llu %8lld %8lld %9lld %7llu %7llu\n",
              mode, r.pollers, static_cast<unsigned long long>(r.issued),
              static_cast<unsigned long long>(r.answered),
              static_cast<unsigned long long>(r.ok200),
              static_cast<unsigned long long>(r.shed),
              static_cast<long long>(r.p50_ms), static_cast<long long>(r.p99_ms),
              static_cast<long long>(r.max_ms),
              static_cast<unsigned long long>(r.polls_rate_limited),
              static_cast<unsigned long long>(r.participants_rejected));
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Overload protection — open-loop poll flood vs agent latency",
      StrFormat("host uplink %lld kbps; %d polls/s per poller, ts=-1 (full "
                "content each poll), %.0fs load phase; protected = "
                "12-participant cap + 0.5/s poll bucket (burst 2)",
                static_cast<long long>(kHostUplinkBps / 1000), kPollsPerSec,
                kRunSeconds));

  std::printf("%-11s %4s %7s %8s %7s %7s %8s %8s %9s %7s %7s\n", "config",
              "N", "issued", "answered", "200s", "shed", "p50(ms)", "p99(ms)",
              "max(ms)", "429cnt", "503cnt");
  PrintRule(96);

  const size_t kSweep[] = {2, 4, 8, 16, 32};
  std::vector<LoadResult> unprotected, protected_;
  for (size_t n : kSweep) {
    unprotected.push_back(RunLoad(n, /*protect=*/false));
    PrintRow("unprotected", unprotected.back());
  }
  PrintRule(96);
  for (size_t n : kSweep) {
    protected_.push_back(RunLoad(n, /*protect=*/true));
    PrintRow("protected", protected_.back());
  }
  PrintRule(96);

  // Determinism probe: the heaviest protected run, repeated, must be
  // bit-identical (all shed decisions flow from the sim clock).
  LoadResult repeat = RunLoad(kSweep[4], /*protect=*/true);
  bool deterministic =
      repeat.Fingerprint() == protected_[4].Fingerprint();

  // Shape check: the protected agent holds bounded p99 at 4x the load where
  // the unprotected one stalls (p99 above 1s), with real shedding going on.
  constexpr int64_t kStallMs = 1000;
  int stall_index = -1;
  for (size_t i = 0; i < protected_.size(); ++i) {
    if (unprotected[i].p99_ms > kStallMs) {
      stall_index = static_cast<int>(i);
      break;
    }
  }
  obs::BenchReport report = MakeReport("overload", "uplink1mbps",
                                       /*cache_mode=*/false, /*repetitions=*/1);
  report.SetConfig("polls_per_sec", StrFormat("%d", kPollsPerSec));
  for (size_t i = 0; i < protected_.size(); ++i) {
    struct { const char* mode; const LoadResult* r; } rows[] = {
        {"unprotected", &unprotected[i]}, {"protected", &protected_[i]}};
    for (const auto& row : rows) {
      std::string prefix = StrFormat("%s_n%zu_", row.mode, kSweep[i]);
      report.AddValue(prefix + "issued", "polls", obs::Provenance::kSim,
                      static_cast<double>(row.r->issued));
      report.AddValue(prefix + "answered", "polls", obs::Provenance::kSim,
                      static_cast<double>(row.r->answered));
      report.AddValue(prefix + "shed", "polls", obs::Provenance::kSim,
                      static_cast<double>(row.r->shed));
      report.AddValue(prefix + "p50_ms", "ms", obs::Provenance::kSim,
                      static_cast<double>(row.r->p50_ms));
      report.AddValue(prefix + "p99_ms", "ms", obs::Provenance::kSim,
                      static_cast<double>(row.r->p99_ms));
    }
  }

  bool shape_ok = deterministic && stall_index >= 0;
  if (shape_ok) {
    size_t stall_n = kSweep[stall_index];
    // 4x the stall load is two sweep steps up (each step doubles N).
    size_t idx4 = static_cast<size_t>(stall_index) + 2;
    if (idx4 >= protected_.size()) {
      idx4 = protected_.size() - 1;
    }
    const LoadResult& at4x = protected_[idx4];
    bool bounded = at4x.p99_ms >= 0 && at4x.p99_ms <= kStallMs;
    bool shedding = at4x.polls_rate_limited > 0 && at4x.participants_rejected > 0;
    shape_ok = bounded && shedding && kSweep[idx4] >= 4 * stall_n;
    std::printf("\nshape check: %s (unprotected stalls at N=%zu "
                "[p99 %lld ms]; protected at N=%zu holds p99 %lld ms with "
                "%llu polls 429'd, %llu participants 503'd; deterministic: %s)\n",
                shape_ok ? "OK" : "FAIL", stall_n,
                static_cast<long long>(unprotected[stall_index].p99_ms),
                kSweep[idx4], static_cast<long long>(at4x.p99_ms),
                static_cast<unsigned long long>(at4x.polls_rate_limited),
                static_cast<unsigned long long>(at4x.participants_rejected),
                deterministic ? "yes" : "NO");
  } else {
    std::printf("\nshape check: FAIL (stall_index=%d deterministic=%s)\n",
                stall_index, deterministic ? "yes" : "NO");
  }
  report.AddValue("deterministic", "bool", obs::Provenance::kSim,
                  deterministic ? 1 : 0);
  report.AddValue("shape_ok", "bool", obs::Provenance::kSim, shape_ok ? 1 : 0);
  WriteReport(report);
  return shape_ok ? 0 : 1;
}
