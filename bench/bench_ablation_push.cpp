// Ablation: poll-based vs push-based synchronization (§3.2.3).
//
// The paper chooses polling and mentions "multipart/x-mixed-replace" pushing
// as the alternative that "increases the complexity of co-browsing
// synchronization and decreases its reliability". This bench quantifies the
// trade on the same workload. The push column runs through src/transport's
// framed streaming (DESIGN.md §15): sequence-stamped HMAC frames with
// heartbeats and a signed-resume reconnect ladder, which is how this repo
// makes push reliable.
//   latency    — host change -> participant applied (push wins: no tick wait)
//   overhead   — idle requests/bytes per minute (push wins: nothing polls)
//   resilience — recovery after a dropped transport (both recover: the poll
//                tick reconnects by construction; the framed stream detects
//                the drop and re-handshakes via signed resume)
#include "bench/common.h"
#include "src/sites/corpus.h"
#include "src/util/rand.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

struct ModeResult {
  Duration mean_latency;
  Duration worst_latency;
  double idle_requests_per_minute = 0;
  uint64_t idle_bytes_per_minute = 0;
  bool recovered_after_drop = false;
};

ModeResult RunMode(bool framed) {
  EventLoop loop;
  Network network(&loop);
  SessionOptions options;
  options.profile = LanProfile();
  options.poll_interval = Duration::Seconds(1.0);
  // Both columns share the recovery ladder (§3.2.3) and a signed session so
  // the restart probe exercises signed-resume reconnects, not fresh joins.
  options.enable_auth = true;
  options.poll_timeout = Duration::Seconds(2.0);
  options.reconnect_after = 1;
  options.backoff_base = Duration::Millis(250);
  options.backoff_max = Duration::Seconds(2.0);
  if (framed) {
    // Push rides the streamed transport: the agent grants framed streaming
    // and pushes sequence-stamped HMAC frames instead of answering ticks.
    options.enable_transport = true;
    options.snippet_stream_mode = 2;
    options.transport_heartbeat = Duration::Seconds(5.0);
  }
  const SiteSpec* spec = FindSite("google.com");
  AddOriginServer(&network, options.profile, spec->host, spec->server_bps,
                  spec->server_latency, options.host_machine,
                  options.participant_machine_prefix + "-1");
  auto server = InstallSite(&loop, &network, *spec);
  CoBrowsingSession session(&loop, &network, options);
  ModeResult result;
  if (!session.Start().ok()) {
    return result;
  }
  auto stats = session.CoNavigate(Url::Make("http", spec->host, 80, "/"));
  if (!stats.ok()) {
    return result;
  }

  // Latency over 24 mutations at random phases.
  Rng rng(7);
  int64_t total_us = 0;
  Duration worst;
  constexpr int kChanges = 24;
  for (int i = 0; i < kChanges; ++i) {
    loop.RunFor(Duration::Millis(static_cast<int64_t>(rng.NextBelow(3000)) + 200));
    uint64_t before = session.snippet(0)->metrics().content_updates;
    SimTime change_at = loop.now();
    session.host_browser()->MutateDocument([i](Document* document) {
      auto marker = MakeElement("div");
      marker->SetAttribute("id", "m" + std::to_string(i));
      document->body()->AppendChild(std::move(marker));
    });
    loop.RunUntilCondition([&] {
      return session.snippet(0)->metrics().content_updates > before;
    });
    Duration latency = loop.now() - change_at;
    total_us += latency.micros();
    if (latency > worst) {
      worst = latency;
    }
  }
  result.mean_latency = Duration::Micros(total_us / kChanges);
  result.worst_latency = worst;

  // Idle minute.
  uint64_t polls_before = session.agent()->metrics().polls_received;
  uint64_t bytes_before = network.total_bytes_transferred();
  loop.RunFor(Duration::Seconds(60.0));
  result.idle_requests_per_minute = static_cast<double>(
      session.agent()->metrics().polls_received - polls_before);
  result.idle_bytes_per_minute = network.total_bytes_transferred() - bytes_before;

  // Reliability probe: restart the agent (drops every connection), then
  // change the page and see whether the participant ever hears about it.
  session.agent()->Stop();
  loop.RunFor(Duration::Seconds(1.0));
  Status restarted = session.agent()->Start();
  if (!restarted.ok()) {
    return result;
  }
  uint64_t before = session.snippet(0)->metrics().content_updates;
  session.host_browser()->MutateDocument([](Document* document) {
    auto marker = MakeElement("div");
    marker->SetAttribute("id", "after-restart");
    document->body()->AppendChild(std::move(marker));
  });
  SimTime deadline = loop.now() + Duration::Seconds(10.0);
  while (session.snippet(0)->metrics().content_updates == before &&
         loop.now() < deadline && loop.pending_events() > 0) {
    loop.RunFor(Duration::Millis(100));
  }
  result.recovered_after_drop =
      session.snippet(0)->metrics().content_updates > before;
  return result;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Ablation — poll vs push synchronization (§3.2.3)",
      "LAN, google.com replica, 1 s poll interval; 24 mutations; 1 idle "
      "minute; agent restart probe");

  std::printf("%-22s %14s %14s\n", "", "poll", "push");
  ModeResult poll = RunMode(/*framed=*/false);
  ModeResult push = RunMode(/*framed=*/true);
  std::printf("%-22s %14s %14s\n", "mean change latency",
              poll.mean_latency.ToString().c_str(),
              push.mean_latency.ToString().c_str());
  std::printf("%-22s %14s %14s\n", "worst change latency",
              poll.worst_latency.ToString().c_str(),
              push.worst_latency.ToString().c_str());
  std::printf("%-22s %14.0f %14.0f\n", "idle requests/min",
              poll.idle_requests_per_minute, push.idle_requests_per_minute);
  std::printf("%-22s %14llu %14llu\n", "idle bytes/min",
              static_cast<unsigned long long>(poll.idle_bytes_per_minute),
              static_cast<unsigned long long>(push.idle_bytes_per_minute));
  std::printf("%-22s %14s %14s\n", "recovers after drop",
              poll.recovered_after_drop ? "yes" : "NO",
              push.recovered_after_drop ? "yes" : "NO");

  obs::BenchReport report = MakeReport("ablation_push", "lan",
                                       /*cache_mode=*/true, /*repetitions=*/1);
  report.SetConfig("site", "google.com");
  report.SetConfig("mutations", "24");
  struct { const char* prefix; const ModeResult* mode; } rows[] = {
      {"poll_", &poll}, {"push_", &push}};
  for (const auto& row : rows) {
    std::string prefix = row.prefix;
    report.AddValue(prefix + "mean_latency_us", "us", obs::Provenance::kSim,
                    static_cast<double>(row.mode->mean_latency.micros()));
    report.AddValue(prefix + "worst_latency_us", "us", obs::Provenance::kSim,
                    static_cast<double>(row.mode->worst_latency.micros()));
    report.AddValue(prefix + "idle_requests_per_minute", "requests",
                    obs::Provenance::kSim, row.mode->idle_requests_per_minute);
    report.AddValue(prefix + "idle_bytes_per_minute", "bytes",
                    obs::Provenance::kSim,
                    static_cast<double>(row.mode->idle_bytes_per_minute));
    report.AddValue(prefix + "recovered_after_drop", "bool",
                    obs::Provenance::kSim,
                    row.mode->recovered_after_drop ? 1 : 0);
  }
  WriteReport(report);
  PrintRule();
  std::printf("shape check: push (framed streaming, DESIGN.md §15) removes "
              "the tick-wait latency and the idle\ntraffic; the heartbeat + "
              "signed-resume ladder restores the reliability that made the "
              "paper ship polling.\n");
  if (!poll.recovered_after_drop || !push.recovered_after_drop) {
    std::printf("SHAPE CHECK FAILED: a mode did not recover after the drop\n");
    return 1;
  }
  return 0;
}
