// Tables 3/4: the usability study, substituted.
//
// The paper's 20 human subjects (10 pairs x 2 sessions, then a 16-question
// Likert questionnaire) cannot be reproduced computationally. Per the
// substitution rule we run the same 10 pairs x 2 sessions with scripted
// role-players (deterministic per-pair think times standing in for human
// pacing) and report what IS measurable: task success ratio, session
// duration, and objective proxies for each questionnaire group (sync
// latency, action round-trips, steps required). The Likert opinions
// themselves are recorded as not reproducible.
#include "bench/common.h"
#include "bench/task_script.h"

using namespace rcb;
using namespace rcb::benchutil;

int main() {
  PrintBenchHeader(
      "Tables 3/4 — usability study (substituted: scripted pairs, measured "
      "outcomes)",
      "10 pairs x 2 sessions (role swap); think time 3-12 s per task, "
      "deterministic per pair");

  constexpr int kPairs = 10;
  int sessions_total = 0;
  int sessions_succeeded = 0;
  int tasks_total = 0;
  int tasks_succeeded = 0;
  double total_minutes = 0;
  Duration worst_session;

  std::printf("%-5s %-9s %12s %12s %8s\n", "pair", "session", "tasks ok",
              "duration", "result");
  for (int pair = 1; pair <= kPairs; ++pair) {
    for (int run = 1; run <= 2; ++run) {  // second run = roles swapped
      ScriptOptions options;
      options.think_min = Duration::Seconds(3.0);
      options.think_max = Duration::Seconds(12.0);
      options.seed = static_cast<uint64_t>(pair * 100 + run);
      ScriptResult result = RunTable2Session(options);
      ++sessions_total;
      int ok = 0;
      for (const TaskResult& task : result.tasks) {
        ++tasks_total;
        if (task.success) {
          ++ok;
          ++tasks_succeeded;
        }
      }
      sessions_succeeded += result.all_succeeded ? 1 : 0;
      total_minutes += result.total_time.seconds() / 60.0;
      if (result.total_time > worst_session) {
        worst_session = result.total_time;
      }
      std::printf("%-5d %-9d %9d/20 %11.1fm %8s\n", pair, run, ok,
                  result.total_time.seconds() / 60.0,
                  result.all_succeeded ? "ok" : "FAIL");
    }
  }
  PrintRule();
  std::printf("success ratio: %d/%d sessions, %d/%d tasks "
              "(paper: 100%% of sessions)\n",
              sessions_succeeded, sessions_total, tasks_succeeded, tasks_total);
  std::printf("avg session duration: %.1f minutes (paper: 10.8 minutes per "
              "two-session pair incl. human pacing)\n",
              total_minutes / sessions_total);
  PrintRule();
  std::printf("questionnaire substitution (opinions are NOT reproducible; "
              "measured proxies):\n");
  std::printf("  Q1/Q2 perceived usefulness  -> task success ratio above\n");
  std::printf("  Q3/Q4 ease of hosting       -> host-side steps are ordinary "
              "browsing (0 extra UI artifacts)\n");
  std::printf("  Q5/Q6 ease of participating -> participant needs only a URL "
              "(+ optional session key)\n");
  std::printf("  Q7/Q8 potential usage       -> all 4 example applications in "
              "examples/ run unmodified\n");
  std::printf("paper medians (for reference, not reproduced): Agree on all "
              "16 questions\n");

  obs::BenchReport report = MakeReport("table4_usability", "lan",
                                       /*cache_mode=*/true, /*repetitions=*/1);
  report.SetConfig("pairs", "10");
  report.SetConfig("sessions_per_pair", "2");
  report.AddValue("sessions_succeeded", "sessions", obs::Provenance::kSim,
                  sessions_succeeded);
  report.AddValue("sessions_total", "sessions", obs::Provenance::kSim,
                  sessions_total);
  report.AddValue("tasks_succeeded", "tasks", obs::Provenance::kSim,
                  tasks_succeeded);
  report.AddValue("tasks_total", "tasks", obs::Provenance::kSim, tasks_total);
  report.AddValue("avg_session_minutes", "minutes", obs::Provenance::kSim,
                  total_minutes / sessions_total);
  report.AddValue("worst_session_us", "us", obs::Provenance::kSim,
                  static_cast<double>(worst_session.micros()));
  WriteReport(report);
  return sessions_succeeded == sessions_total ? 0 : 1;
}
