// Recovery: crash-safe durability cost and restart behavior (DESIGN.md §13).
//
// Sweeps session count x 2 signed pollers on one persisted RcbHost, kills
// the process mid WAL stream, restarts over the same directory, and
// reports, per point:
//   * recovery wall time (real time for the full scan-decode-replay-restart
//     pass) total and per session,
//   * checkpoint overhead: wall time and bytes per checkpointed session,
//   * resync cost: content bytes served after recovery until every poller
//     has reconnected (signed resume) and resynced, per participant,
//   * the recovery proof: every session recovered, every poller resumed
//     with zero fresh joins.
//
// Env knobs (CI shrinks the sweep under sanitizers):
//   RCB_RECOVERY_MAX_SESSIONS  largest point to run (default 256)
//   RCB_RECOVERY_PARTICIPANTS  pollers per session (default 2)
#include <chrono>
#include <cstdlib>
#include <filesystem>

#include "bench/common.h"
#include "src/core/ajax_snippet.h"
#include "src/host/rcb_host.h"
#include "src/html/parser.h"
#include "src/net/fault_injector.h"
#include "src/util/strings.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

struct RecoveryPoint {
  size_t sessions = 0;
  size_t participants = 0;
  double recovery_wall_ms = 0;
  double recovery_wall_ms_per_session = 0;
  double checkpoint_wall_ms_per_session = 0;
  double checkpoint_bytes_per_session = 0;
  uint64_t wal_records = 0;
  double resync_bytes_per_participant = 0;
  uint64_t recovered = 0;
  uint64_t fresh_joins_after_recovery = 0;
  double wall_seconds = 0;
};

// Bounded wait: a bench must fail loudly, not spin, when convergence stalls
// (pollers keep the event queue non-empty forever).
template <typename Pred>
bool WaitFor(EventLoop* loop, Duration budget, Pred pred) {
  SimTime deadline = loop->now() + budget;
  while (loop->now() < deadline) {
    if (pred()) {
      return true;
    }
    loop->RunFor(Duration::Millis(100));
  }
  return pred();
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  long parsed = std::atol(value);
  return parsed <= 0 ? fallback : static_cast<size_t>(parsed);
}

StatusOr<RecoveryPoint> RunPoint(size_t sessions, size_t participants) {
  namespace fs = std::filesystem;
  auto wall_start = std::chrono::steady_clock::now();
  RecoveryPoint point;
  point.sessions = sessions;
  point.participants = participants;

  fs::path dir = fs::temp_directory_path() /
                 ("rcb_bench_recovery_" + std::to_string(sessions));
  fs::remove_all(dir);
  fs::create_directories(dir);

  EventLoop loop;
  Network network(&loop);
  network.AddHost("host-pc", {});
  for (size_t p = 0; p < participants; ++p) {
    std::string machine = "poller-pc-" + std::to_string(p + 1);
    network.AddHost(machine, {});
    network.SetLatency("host-pc", machine, Duration::Millis(1));
  }

  ProcessFaultInjector faults;
  auto make_config = [&] {
    HostConfig config;
    config.base_port = 3000;
    config.limits.metrics_sessions = 0;  // registry stays lean at scale
    config.limits.max_sessions = 0;
    config.agent_defaults.poll_interval = Duration::Millis(500);
    config.persist.dir = dir.string();
    config.process_faults = &faults;
    config.recovery_storm_window = Duration::Zero();
    return config;
  };
  auto host = std::make_unique<RcbHost>(&loop, &network, make_config());
  RCB_RETURN_IF_ERROR(host->Start());

  for (size_t s = 0; s < sessions; ++s) {
    AgentConfig agent_config;
    agent_config.session_key = "recovery-key-" + std::to_string(s);
    auto session = host->CreateSession("s" + std::to_string(s), agent_config);
    if (!session.ok()) {
      return session.status();
    }
    (*session)->browser->ReplaceDocument(
        ParseDocument(StrFormat(
            "<html><head><title>recovery %zu</title></head>"
            "<body><p id=\"status\">round 0</p>"
            "<ul><li>alpha</li><li>beta</li><li>gamma</li></ul>"
            "</body></html>", s)),
        Url::Make("http", "host-pc", (*session)->port, "/doc"));
  }

  struct Poller {
    std::unique_ptr<Browser> browser;
    std::unique_ptr<AjaxSnippet> snippet;
  };
  std::vector<Poller> pollers;
  pollers.reserve(sessions * participants);
  size_t joined = 0;
  for (size_t s = 0; s < sessions; ++s) {
    HostSession* session = host->FindSession("s" + std::to_string(s));
    for (size_t p = 0; p < participants; ++p) {
      Poller poller;
      poller.browser = std::make_unique<Browser>(
          &loop, &network, "poller-pc-" + std::to_string(p + 1));
      SnippetConfig snippet_config;
      snippet_config.session_key = "recovery-key-" + std::to_string(s);
      snippet_config.fetch_objects = false;
      // Timeout well under the downtime window below, so every poller sees
      // at least reconnect_after consecutive failures while the host is gone
      // (a lone timeout straddling the restart would otherwise resolve into
      // a plain successful poll and never exercise the resume path).
      snippet_config.poll_timeout = Duration::Millis(400);
      snippet_config.reconnect_after = 2;
      snippet_config.backoff_base = Duration::Millis(100);
      snippet_config.backoff_max = Duration::Millis(400);
      snippet_config.backoff_jitter = Duration::Millis(100);
      snippet_config.backoff_seed = 0x5EED + s * 64 + p;
      poller.snippet = std::make_unique<AjaxSnippet>(poller.browser.get(),
                                                     snippet_config);
      poller.snippet->Join(session->agent->AgentUrl(), [&joined](Status status) {
        if (status.ok()) {
          ++joined;
        }
      });
      pollers.push_back(std::move(poller));
    }
  }
  if (!WaitFor(&loop, Duration::Seconds(30.0),
               [&] { return joined == sessions * participants; })) {
    return InternalError(StrFormat("only %zu/%zu pollers joined", joined,
                                   sessions * participants));
  }
  if (!WaitFor(&loop, Duration::Seconds(30.0), [&] {
        for (const Poller& poller : pollers) {
          if (poller.snippet->metrics().content_updates < 1) {
            return false;
          }
        }
        return true;
      })) {
    return InternalError("pollers never converged on the initial document");
  }

  // Checkpoint overhead: one full checkpoint-and-truncate pass.
  auto checkpoint_start = std::chrono::steady_clock::now();
  host->CheckpointAllSessions();
  point.checkpoint_wall_ms_per_session =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - checkpoint_start)
          .count() /
      static_cast<double>(sessions);
  point.checkpoint_bytes_per_session =
      static_cast<double>(host->persist_counters().checkpoint_bytes) /
      static_cast<double>(host->persist_counters().checkpoints_written);

  // Kill the process mid WAL stream (the signed pollers' seq advances are
  // appending continuously), then model the dead image.
  faults.Arm({CrashPoint::kAfterWalAppend, 0, ""});
  if (!WaitFor(&loop, Duration::Seconds(30.0),
               [&] { return faults.crashed(); })) {
    return InternalError("crash point never fired");
  }
  host.reset();
  // Downtime long enough for every poller to rack up reconnect_after
  // consecutive failures and start hammering the (dead) resume endpoint.
  loop.RunFor(Duration::Seconds(2.0));

  // Recovery wall time: everything from scanning the directory to every
  // session listening again happens inside Start().
  faults.Reset();
  auto recovery_start = std::chrono::steady_clock::now();
  host = std::make_unique<RcbHost>(&loop, &network, make_config());
  RCB_RETURN_IF_ERROR(host->Start());
  point.recovery_wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - recovery_start)
                               .count();
  point.recovery_wall_ms_per_session =
      point.recovery_wall_ms / static_cast<double>(sessions);
  point.recovered = host->metrics().sessions_recovered;
  point.wal_records = host->persist_counters().wal_records;

  // Resync cost: content bytes served until every poller is back (signed
  // resume + full snapshot), which is exactly the restart storm's bill.
  if (!WaitFor(&loop, Duration::Seconds(60.0), [&] {
        for (const Poller& poller : pollers) {
          const SnippetMetrics& m = poller.snippet->metrics();
          if (m.reconnects < 1 || m.resyncs < 1) {
            return false;
          }
        }
        return true;
      })) {
    return InternalError("pollers never resumed after recovery");
  }
  uint64_t resync_bytes = 0;
  for (size_t s = 0; s < sessions; ++s) {
    HostSession* session = host->FindSession("s" + std::to_string(s));
    if (session == nullptr) {
      return InternalError(StrFormat("session s%zu not recovered", s));
    }
    resync_bytes += session->agent->metrics().content_bytes_sent;
    point.fresh_joins_after_recovery +=
        session->agent->metrics().new_connections;
  }
  point.resync_bytes_per_participant =
      static_cast<double>(resync_bytes) /
      static_cast<double>(sessions * participants);
  point.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  host.reset();  // shutdown checkpoint must land before the dir goes away
  fs::remove_all(dir);
  return point;
}

}  // namespace

int main() {
  const size_t max_sessions = EnvSize("RCB_RECOVERY_MAX_SESSIONS", 256);
  const size_t participants = EnvSize("RCB_RECOVERY_PARTICIPANTS", 2);
  PrintBenchHeader(
      "Recovery — checkpoint/WAL durability, crash restart, signed resume",
      StrFormat("sessions x %zu signed pollers, LAN, crash at "
                "after_wal_append; RCB_RECOVERY_MAX_SESSIONS=%zu",
                participants, max_sessions));

  obs::BenchReport report = MakeReport("recovery", "lan", /*cache_mode=*/true,
                                       /*repetitions=*/1);
  report.SetConfig("participants_per_session", std::to_string(participants));
  report.SetConfig("max_sessions", std::to_string(max_sessions));
  report.SetConfig("crash_point", "after_wal_append");

  std::printf("%-9s %12s %14s %14s %14s %12s %12s %10s\n", "sessions",
              "recover ms", "ms/session", "ckpt ms/sess", "ckpt B/sess",
              "resync B/p", "recovered", "wall s");
  bool shape_ok = true;
  for (size_t sessions : {4ul, 16ul, 64ul, 256ul}) {
    if (sessions > max_sessions) {
      continue;
    }
    auto point = RunPoint(sessions, participants);
    if (!point.ok()) {
      std::printf("%-9zu failed: %s\n", sessions,
                  point.status().ToString().c_str());
      shape_ok = false;
      continue;
    }
    std::printf("%-9zu %12.2f %14.3f %14.3f %14.0f %12.0f %12llu %10.2f\n",
                sessions, point->recovery_wall_ms,
                point->recovery_wall_ms_per_session,
                point->checkpoint_wall_ms_per_session,
                point->checkpoint_bytes_per_session,
                point->resync_bytes_per_participant,
                static_cast<unsigned long long>(point->recovered),
                point->wall_seconds);
    // The recovery proof must hold at every point: every session restored,
    // every poller back via signed resume, zero fresh joins.
    if (point->recovered != sessions ||
        point->fresh_joins_after_recovery != 0) {
      shape_ok = false;
    }

    std::string prefix = StrFormat("n%zu_", sessions);
    report.AddValue(prefix + "recovery_wall_ms", "ms", obs::Provenance::kWall,
                    point->recovery_wall_ms);
    report.AddValue(prefix + "recovery_wall_ms_per_session", "ms",
                    obs::Provenance::kWall,
                    point->recovery_wall_ms_per_session);
    report.AddValue(prefix + "checkpoint_wall_ms_per_session", "ms",
                    obs::Provenance::kWall,
                    point->checkpoint_wall_ms_per_session);
    report.AddValue(prefix + "checkpoint_bytes_per_session", "bytes",
                    obs::Provenance::kSim,
                    point->checkpoint_bytes_per_session);
    report.AddValue(prefix + "wal_records", "records", obs::Provenance::kSim,
                    static_cast<double>(point->wal_records));
    report.AddValue(prefix + "resync_bytes_per_participant", "bytes",
                    obs::Provenance::kSim,
                    point->resync_bytes_per_participant);
    report.AddValue(prefix + "sessions_recovered", "sessions",
                    obs::Provenance::kSim,
                    static_cast<double>(point->recovered));
    report.AddValue(prefix + "fresh_joins_after_recovery", "joins",
                    obs::Provenance::kSim,
                    static_cast<double>(point->fresh_joins_after_recovery));
  }
  WriteReport(report);
  PrintRule();
  std::printf("shape check: every session recovered and every poller resumed "
              "signed\n(zero fresh joins); recovery wall time ~linear in "
              "sessions, resync bytes\n~flat per participant.\n");
  if (!shape_ok) {
    std::printf("SHAPE CHECK FAILED\n");
    return 1;
  }
  return 0;
}
