// Figure 8: cache-mode performance gain in the LAN environment.
//
// For each site, M3 is the participant's supplementary-object download time
// in non-cache mode (objects fetched from the origin servers) and M4 the
// same in cache mode (objects fetched from the host browser's cache over the
// LAN). Paper result: M4 < M3 for all 20 sites. A WAN column shows the gain
// persisting, smaller, on slow home links (the paper notes this in prose).
#include "bench/common.h"

using namespace rcb;
using namespace rcb::benchutil;

int main() {
  PrintBenchHeader(
      "Figure 8 — cache mode performance gain (M3 non-cache vs M4 cache)",
      "LAN columns reproduce the figure; WAN columns reproduce the §5.1.2 "
      "remark\nthat the gain persists but shrinks on residential links");

  std::printf("%-3s %-15s %9s %9s %6s   %9s %9s %6s\n", "#", "site",
              "M3lan(s)", "M4lan(s)", "gain", "M3wan(s)", "M4wan(s)", "gain");
  int lan_faster = 0;
  int wan_faster = 0;
  double lan_gain_sum = 0;
  double wan_gain_sum = 0;
  std::vector<double> lan_m3_us, lan_m4_us, wan_m3_us, wan_m4_us;
  NetworkProfile lan = LanProfile();
  NetworkProfile wan = WanProfile();
  for (const SiteSpec& spec : Table1Sites()) {
    auto lan_m3 = MeasureSite(spec, lan, /*cache_mode=*/false, /*repetitions=*/1);
    auto lan_m4 = MeasureSite(spec, lan, /*cache_mode=*/true, /*repetitions=*/1);
    auto wan_m3 = MeasureSite(spec, wan, /*cache_mode=*/false, /*repetitions=*/1);
    auto wan_m4 = MeasureSite(spec, wan, /*cache_mode=*/true, /*repetitions=*/1);
    if (!lan_m3.ok() || !lan_m4.ok() || !wan_m3.ok() || !wan_m4.ok()) {
      std::printf("%-3d %-15s measurement failed\n", spec.index, spec.name.c_str());
      continue;
    }
    double lan_gain = lan_m3->m3_or_m4.seconds() / lan_m4->m3_or_m4.seconds();
    double wan_gain = wan_m3->m3_or_m4.seconds() / wan_m4->m3_or_m4.seconds();
    lan_faster += lan_m4->m3_or_m4 < lan_m3->m3_or_m4 ? 1 : 0;
    wan_faster += wan_m4->m3_or_m4 < wan_m3->m3_or_m4 ? 1 : 0;
    lan_gain_sum += lan_gain;
    wan_gain_sum += wan_gain;
    lan_m3_us.push_back(static_cast<double>(lan_m3->m3_or_m4.micros()));
    lan_m4_us.push_back(static_cast<double>(lan_m4->m3_or_m4.micros()));
    wan_m3_us.push_back(static_cast<double>(wan_m3->m3_or_m4.micros()));
    wan_m4_us.push_back(static_cast<double>(wan_m4->m3_or_m4.micros()));
    std::printf("%-3d %-15s %9s %9s %5.1fx   %9s %9s %5.1fx\n", spec.index,
                spec.name.c_str(), Sec(lan_m3->m3_or_m4).c_str(),
                Sec(lan_m4->m3_or_m4).c_str(), lan_gain,
                Sec(wan_m3->m3_or_m4).c_str(), Sec(wan_m4->m3_or_m4).c_str(),
                wan_gain);
  }
  PrintRule();
  std::printf("shape check: LAN M4 < M3 on %d/20 sites (paper: 20/20); "
              "mean gain %.1fx\n",
              lan_faster, lan_gain_sum / 20.0);
  std::printf("shape check: WAN gain persists on %d/20 sites and is smaller "
              "than LAN gain (mean %.1fx)\n",
              wan_faster, wan_gain_sum / 20.0);

  obs::BenchReport report = MakeReport("fig8_cache", "lan+wan",
                                       /*cache_mode=*/true, /*repetitions=*/1);
  report.AddDistribution("m3_noncache_lan_us", "us", obs::Provenance::kSim,
                         lan_m3_us);
  report.AddDistribution("m4_cache_lan_us", "us", obs::Provenance::kSim,
                         lan_m4_us);
  report.AddDistribution("m3_noncache_wan_us", "us", obs::Provenance::kSim,
                         wan_m3_us);
  report.AddDistribution("m4_cache_wan_us", "us", obs::Provenance::kSim,
                         wan_m4_us);
  report.AddValue("lan_cache_faster_sites", "sites", obs::Provenance::kSim,
                  lan_faster);
  report.AddValue("wan_cache_faster_sites", "sites", obs::Provenance::kSim,
                  wan_faster);
  report.AddValue("lan_mean_gain", "ratio", obs::Provenance::kSim,
                  lan_gain_sum / 20.0);
  report.AddValue("wan_mean_gain", "ratio", obs::Provenance::kSim,
                  wan_gain_sum / 20.0);
  WriteReport(report);
  return 0;
}
