// Fault recovery: injected network faults vs re-convergence latency.
//
// The paper argues the poll model recovers from transient failures by
// construction (§3.2.3) but never measures how long recovery takes. This
// bench drops each FaultInjector primitive onto the host<->participant link
// mid-session while the host navigates, and reports the time from the fault
// start until the participant has re-converged on the new page, plus the
// recovery machinery's counters (poll timeouts, reconnects, resyncs).
#include "bench/common.h"
#include "src/net/fault_injector.h"
#include "src/sites/site_server.h"

using namespace rcb;
using namespace rcb::benchutil;

namespace {

struct FaultRun {
  bool converged = false;
  Duration recovery;  // fault start -> participant shows the new page
  uint64_t polls_used = 0;
  uint64_t poll_timeouts = 0;
  uint64_t reconnects = 0;
  uint64_t resyncs = 0;
};

const char* KindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kJitter:
      return "jitter";
    case FaultEvent::Kind::kLoss:
      return "loss";
    case FaultEvent::Kind::kBandwidthFlap:
      return "bw-flap";
    case FaultEvent::Kind::kReset:
      return "reset";
    case FaultEvent::Kind::kPartition:
      return "partition";
  }
  return "?";
}

FaultRun RunFault(const NetworkProfile& profile, FaultEvent::Kind kind,
                  Duration fault_duration) {
  EventLoop loop;
  Network network(&loop);
  network.AddHost("www.site.test", {});
  SiteServer site(&loop, &network, "www.site.test");
  site.ServeStatic("/", "text/html",
                   "<html><head><title>A</title></head>"
                   "<body><p id=\"p\">one</p></body></html>");
  site.ServeStatic("/two", "text/html",
                   "<html><head><title>B</title></head>"
                   "<body><p id=\"p\">two</p></body></html>");

  SessionOptions options;
  options.profile = profile;
  options.enable_auth = true;
  options.poll_interval = Duration::Millis(250);
  options.poll_timeout = Duration::Seconds(1.0);
  options.reconnect_after = 2;
  options.backoff_base = Duration::Millis(250);
  options.backoff_max = Duration::Seconds(2.0);
  options.backoff_jitter = Duration::Millis(100);
  ApplyTraceEnv(&options);
  CoBrowsingSession session(&loop, &network, options);

  FaultRun run;
  if (!session.Start().ok()) {
    return run;
  }
  bool loaded = false;
  session.host_browser()->Navigate(Url::Make("http", "www.site.test", 80, "/"),
                                   [&](const Status& status,
                                       const PageLoadStats&) {
                                     loaded = status.ok();
                                   });
  loop.RunUntilCondition([&] { return loaded; });
  if (!loaded || !session.WaitForSync().ok()) {
    return run;
  }

  FaultInjector injector(&network, /*seed=*/97);
  SimTime fault_start = loop.now() + Duration::Millis(100);
  injector.Install(FaultPlan{
      "host-pc", "participant-pc-1",
      {ChaosEvent(profile, kind, fault_start, fault_duration)}});

  uint64_t polls_before = session.snippet(0)->metrics().polls_sent;
  loop.Schedule(Duration::Millis(500), [&] {
    session.host_browser()->Navigate(
        Url::Make("http", "www.site.test", 80, "/two"),
        [](const Status&, const PageLoadStats&) {});
  });

  SimTime deadline = loop.now() + Duration::Seconds(60.0);
  while (loop.now() < deadline &&
         session.participant_browser(0)->document()->Title() != "B") {
    loop.RunFor(Duration::Millis(50));
  }
  const SnippetMetrics& snippet = session.snippet(0)->metrics();
  run.converged = session.participant_browser(0)->document()->Title() == "B";
  run.recovery = loop.now() - fault_start;
  run.polls_used = snippet.polls_sent - polls_before;
  run.poll_timeouts = snippet.poll_timeouts;
  run.reconnects = snippet.reconnects;
  run.resyncs = snippet.resyncs;
  DumpSessionTraces(&session);
  return run;
}

}  // namespace

int main() {
  SetTraceBenchName("faults");
  PrintBenchHeader(
      "Fault recovery — injected faults vs re-convergence latency (§3.2.3)",
      "host navigates mid-fault; poll timeout 1 s, backoff 250 ms..2 s, "
      "reconnect after 2 failures");

  std::printf("%-8s %-10s %10s %12s %8s %9s %11s %8s\n", "profile", "fault",
              "duration", "recovery", "polls", "timeouts", "reconnects",
              "resyncs");
  struct Profile {
    const char* name;
    NetworkProfile profile;
  };
  const Profile kProfiles[] = {{"LAN", LanProfile()}, {"WAN", WanProfile()}};
  const FaultEvent::Kind kKinds[] = {
      FaultEvent::Kind::kJitter, FaultEvent::Kind::kLoss,
      FaultEvent::Kind::kBandwidthFlap, FaultEvent::Kind::kReset,
      FaultEvent::Kind::kPartition};
  obs::BenchReport report = MakeReport("faults", "lan+wan",
                                       /*cache_mode=*/true, /*repetitions=*/1);
  report.SetConfig("fault_seed", "97");
  for (const Profile& profile : kProfiles) {
    for (FaultEvent::Kind kind : kKinds) {
      Duration fault_duration = kind == FaultEvent::Kind::kPartition
                                    ? Duration::Seconds(5.0)
                                    : Duration::Seconds(15.0);
      FaultRun run = RunFault(profile.profile, kind, fault_duration);
      std::printf("%-8s %-10s %10s %12s %8llu %9llu %11llu %8llu\n",
                  profile.name, KindName(kind),
                  fault_duration.ToString().c_str(),
                  run.converged ? run.recovery.ToString().c_str() : "timeout",
                  static_cast<unsigned long long>(run.polls_used),
                  static_cast<unsigned long long>(run.poll_timeouts),
                  static_cast<unsigned long long>(run.reconnects),
                  static_cast<unsigned long long>(run.resyncs));
      std::string prefix = std::string(profile.name[0] == 'L' ? "lan_"
                                                             : "wan_") +
                           KindName(kind) + "_";
      report.AddValue(prefix + "converged", "bool", obs::Provenance::kSim,
                      run.converged ? 1 : 0);
      report.AddValue(prefix + "recovery_us", "us", obs::Provenance::kSim,
                      static_cast<double>(run.recovery.micros()));
      report.AddValue(prefix + "polls_used", "polls", obs::Provenance::kSim,
                      static_cast<double>(run.polls_used));
      report.AddValue(prefix + "reconnects", "reconnects",
                      obs::Provenance::kSim,
                      static_cast<double>(run.reconnects));
      report.AddValue(prefix + "resyncs", "resyncs", obs::Provenance::kSim,
                      static_cast<double>(run.resyncs));
    }
  }
  WriteReport(report);
  PrintRule();
  std::printf("recovery after a partition ~ blackout remainder + backoff + "
              "one resync poll;\nloss/jitter only stretch in-flight polls, so "
              "recovery tracks the fault's tail.\n");
  return 0;
}
