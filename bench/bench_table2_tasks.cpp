// Table 2: the 20 tasks of a combined Google-Maps + co-shopping session.
//
// Executes the exact task list with scripted Bob/Alice role-players over the
// full RCB stack and reports per-task success and simulated duration. The
// paper's human subjects completed all sessions; the reproduction must show
// every task mechanically completable.
#include "bench/common.h"
#include "bench/task_script.h"

using namespace rcb;
using namespace rcb::benchutil;

int main() {
  PrintBenchHeader(
      "Table 2 — the 20 co-browsing tasks (scripted role-players)",
      "LAN profile, poll interval 1 s, no think time (mechanics only)");

  ScriptOptions options;
  ScriptResult result = RunTable2Session(options);

  std::printf("%-7s %-62s %6s %10s\n", "task", "description", "ok", "time(s)");
  for (const TaskResult& task : result.tasks) {
    std::printf("%-7s %-62s %6s %10s\n", task.id.c_str(),
                task.description.c_str(), task.success ? "yes" : "FAIL",
                Sec(task.sim_time).c_str());
  }
  PrintRule();
  std::printf("session outcome: %s; mechanical time %s; %llu polls, "
              "%llu participant actions applied\n",
              result.all_succeeded ? "all 20 tasks completed" : "FAILURES",
              Sec(result.total_time).c_str(),
              static_cast<unsigned long long>(result.polls),
              static_cast<unsigned long long>(result.actions_applied));
  std::printf("shape check vs paper: 100%% task completion (paper: 10/10 "
              "pairs completed all sessions)\n");

  obs::BenchReport report = MakeReport("table2_tasks", "lan",
                                       /*cache_mode=*/true, /*repetitions=*/1);
  std::vector<double> task_times_us;
  double succeeded = 0;
  for (const TaskResult& task : result.tasks) {
    task_times_us.push_back(static_cast<double>(task.sim_time.micros()));
    succeeded += task.success ? 1 : 0;
  }
  report.AddDistribution("task_time_us", "us", obs::Provenance::kSim,
                         task_times_us);
  report.AddValue("tasks_succeeded", "tasks", obs::Provenance::kSim, succeeded);
  report.AddValue("tasks_total", "tasks", obs::Provenance::kSim,
                  static_cast<double>(result.tasks.size()));
  report.AddValue("session_time_us", "us", obs::Provenance::kSim,
                  static_cast<double>(result.total_time.micros()));
  report.AddValue("polls", "polls", obs::Provenance::kSim,
                  static_cast<double>(result.polls));
  report.AddValue("actions_applied", "actions", obs::Provenance::kSim,
                  static_cast<double>(result.actions_applied));
  WriteReport(report);
  return result.all_succeeded ? 0 : 1;
}
