// Table 2: the 20 tasks of a combined Google-Maps + co-shopping session.
//
// Executes the exact task list with scripted Bob/Alice role-players over the
// full RCB stack and reports per-task success and simulated duration. The
// paper's human subjects completed all sessions; the reproduction must show
// every task mechanically completable.
#include "bench/common.h"
#include "bench/task_script.h"

using namespace rcb;
using namespace rcb::benchutil;

int main() {
  PrintBenchHeader(
      "Table 2 — the 20 co-browsing tasks (scripted role-players)",
      "LAN profile, poll interval 1 s, no think time (mechanics only)");

  ScriptOptions options;
  ScriptResult result = RunTable2Session(options);

  std::printf("%-7s %-62s %6s %10s\n", "task", "description", "ok", "time(s)");
  for (const TaskResult& task : result.tasks) {
    std::printf("%-7s %-62s %6s %10s\n", task.id.c_str(),
                task.description.c_str(), task.success ? "yes" : "FAIL",
                Sec(task.sim_time).c_str());
  }
  PrintRule();
  std::printf("session outcome: %s; mechanical time %s; %llu polls, "
              "%llu participant actions applied\n",
              result.all_succeeded ? "all 20 tasks completed" : "FAILURES",
              Sec(result.total_time).c_str(),
              static_cast<unsigned long long>(result.polls),
              static_cast<unsigned long long>(result.actions_applied));
  std::printf("shape check vs paper: 100%% task completion (paper: 10/10 "
              "pairs completed all sessions)\n");
  return result.all_succeeded ? 0 : 1;
}
